//! E10 — Backup vs Overcollection (taxonomy of \[14\], recalled in §2.2 and
//! §3.3): validity, message cost and completion latency across the fault
//! presumption range.

use edgelet_bench::{emit, survey_spec, sweep};
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let trials = 15;
    let mut table = Table::new(
        format!("E10 — strategy trade-offs ({trials} trials/point, crashes at launch)"),
        &[
            "p",
            "strategy",
            "valid",
            "mean msgs",
            "mean bytes",
            "mean t (s)",
        ],
    );
    for &p_fail in &[0.05f64, 0.15, 0.25] {
        for strategy in [Strategy::Overcollection, Strategy::Backup] {
            let point = sweep(trials, |seed| {
                let mut p = Platform::build(PlatformConfig {
                    seed: seed * 3 + 11,
                    contributors: 3_500,
                    processors: 300,
                    network: NetworkProfile::Internet,
                    processor_crash_probability: p_fail,
                    crash_at_start: true,
                    ..PlatformConfig::default()
                });
                let spec = survey_spec(&mut p, 300);
                p.run_query(
                    &spec,
                    &PrivacyConfig::none().with_max_tuples(50),
                    &ResilienceConfig {
                        strategy,
                        failure_probability: p_fail,
                        target_validity: 0.99,
                        ..ResilienceConfig::default()
                    },
                )
                .expect("run")
            });
            table.row(&[
                fnum(p_fail),
                strategy.name().to_string(),
                format!("{}/{}", point.valid, point.trials),
                fnum(point.mean_messages),
                fnum(point.mean_bytes),
                fnum(point.mean_completion_secs),
            ]);
        }
    }
    emit(&table);
    println!(
        "Paper claim ([14] via §2.2/§3.3): both strategies meet the resiliency\n\
         target; Overcollection is the performance choice (no takeover\n\
         timeouts, fewer duplicated messages), Backup pays replication and\n\
         failure-detection latency for strict validity on non-distributive\n\
         workloads."
    );
}
