//! E1 / Figure 2 — vertically and horizontally partitioned QEPs.
//!
//! Sweeps the two privacy knobs the demo exposes (max raw tuples per
//! edgelet, attribute pairs to separate) and reports the resulting plan
//! shape: partitions `n`, vertical groups, operator counts.

use edgelet_bench::emit;
use edgelet_core::prelude::*;
use edgelet_core::query::OperatorRole;
use edgelet_core::util::table::Table;

fn main() {
    let mut platform = Platform::build(PlatformConfig {
        seed: 1,
        contributors: 4_000,
        processors: 400,
        network: NetworkProfile::Reliable,
        ..PlatformConfig::default()
    });
    // Figure 2's query: several statistics crossed over one sample.
    let spec = platform.grouping_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        2_000,
        &[&["sex"], &["gir"], &[]],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggKind::Avg, "age"),
            AggSpec::over(AggKind::Avg, "bmi"),
            AggSpec::over(AggKind::Avg, "systolic_bp"),
        ],
    );
    let resilience = ResilienceConfig {
        strategy: Strategy::Naive, // isolate the privacy knobs
        ..ResilienceConfig::default()
    };

    let mut table = Table::new(
        "Fig.2 — QEP shape vs privacy parameters (C = 2000)",
        &[
            "max tuples",
            "separated pairs",
            "n",
            "quota",
            "v-groups",
            "builders",
            "computers",
            "operators",
        ],
    );

    type Config = (Option<usize>, Vec<(&'static str, &'static str)>);
    let configs: Vec<Config> = vec![
        (None, vec![]),
        (Some(1_000), vec![]),
        (Some(500), vec![]),
        (Some(500), vec![("bmi", "systolic_bp")]),
        (Some(250), vec![("bmi", "systolic_bp")]),
        (Some(250), vec![("bmi", "systolic_bp"), ("age", "bmi")]),
    ];

    for (cap, pairs) in configs {
        let mut privacy = PrivacyConfig::none();
        if let Some(cap) = cap {
            privacy = privacy.with_max_tuples(cap);
        }
        for (a, b) in &pairs {
            privacy = privacy.separate(a, b);
        }
        let plan = platform
            .plan_query(&spec, &privacy, &resilience)
            .expect("plan");
        let builders = plan
            .operators_where(|r| matches!(r, OperatorRole::SnapshotBuilder { .. }))
            .len();
        let computers = plan
            .operators_where(|r| matches!(r, OperatorRole::Computer { .. }))
            .len();
        table.row(&[
            cap.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            pairs
                .iter()
                .map(|(a, b)| format!("{a}|{b}"))
                .collect::<Vec<_>>()
                .join(" "),
            plan.n.to_string(),
            plan.partition_quota.to_string(),
            plan.attr_groups.len().to_string(),
            builders.to_string(),
            computers.to_string(),
            plan.operators.len().to_string(),
        ]);
    }
    emit(&table);
    println!(
        "Paper claim (Fig. 2): lowering the per-edgelet raw-data cap multiplies\n\
         horizontal partitions; separating attribute pairs multiplies Computers\n\
         per partition. Both reshape the QEP without touching the query."
    );
}
