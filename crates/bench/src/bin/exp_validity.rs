//! E7 — the Validity property (§1, §2.2).
//!
//! Scripted failures: power off the builders of exactly f partitions of
//! an Overcollection plan. Validity must hold for every f <= m and break
//! for f > m, and the delivered COUNT(*) must equal C whenever valid.

use edgelet_bench::emit;
use edgelet_core::exec::driver::{enroll_crowd, execute_plan};
use edgelet_core::exec::ExecConfig;
use edgelet_core::ml::grouping::GroupingQuery;
use edgelet_core::prelude::*;
use edgelet_core::query::plan::build_plan;
use edgelet_core::query::OperatorRole;
use edgelet_core::sim::{DeviceConfig, Duration, NetworkModel, SimConfig, SimTime, Simulation};
use edgelet_core::store::synth::health_schema;
use edgelet_core::tee::Directory;
use edgelet_core::util::rng::DetRng;
use edgelet_core::util::table::Table;
use std::collections::BTreeMap;

fn run_with_failures(failures: usize) -> (u64, u64, bool, Option<i64>) {
    let mut sim = Simulation::new(
        SimConfig {
            network: NetworkModel::reliable(Duration::from_millis(20)),
            ..SimConfig::default()
        },
        77,
    );
    let mut directory = Directory::new();
    let mut rng = DetRng::new(42);
    let (stores, _) = enroll_crowd(
        &mut directory,
        &mut sim,
        2_000,
        200,
        DeviceClass::SgxPc,
        1,
        &mut rng,
    );
    let querier = sim.add_device(DeviceConfig::default());
    let spec = QuerySpec {
        id: QueryId::new(1),
        filter: Predicate::True,
        snapshot_cardinality: 200,
        kind: QueryKind::GroupingSets(GroupingQuery::new(
            &[&[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
        )),
        deadline_secs: 600.0,
    };
    let plan = build_plan(
        &spec,
        &health_schema(),
        &PrivacyConfig::none().with_max_tuples(50),
        &ResilienceConfig {
            strategy: Strategy::Overcollection,
            failure_probability: 0.2,
            target_validity: 0.99,
            ..ResilienceConfig::default()
        },
        &directory,
        querier,
        &mut rng,
    )
    .expect("plan");

    let builders: Vec<DeviceId> = plan
        .operators
        .iter()
        .filter(|o| matches!(o.role, OperatorRole::SnapshotBuilder { .. }))
        .map(|o| o.device)
        .collect();
    for &b in builders.iter().take(failures) {
        sim.crash_at(b, SimTime::from_micros(1));
    }

    let report = execute_plan(
        &plan,
        &health_schema(),
        &stores,
        &BTreeMap::new(),
        &mut sim,
        &ExecConfig::fast(),
        [0u8; 32],
    )
    .expect("execute");

    let count = match &report.outcome {
        Some(QueryOutcome::Grouping(t)) => t.rows[0].aggregates[0].as_i64(),
        _ => None,
    };
    (plan.n, plan.m, report.valid, count)
}

fn main() {
    let (n, m, _, _) = run_with_failures(0);
    let mut table = Table::new(
        format!("E7 — validity vs scripted partition failures (n = {n}, m = {m})"),
        &["failures f", "valid", "COUNT(*)", "expected"],
    );
    for f in 0..=(m as usize + 2) {
        let (n, _, valid, count) = run_with_failures(f);
        let expectation = if f <= m as usize {
            "valid, COUNT = C"
        } else {
            "invalid"
        };
        let _ = n;
        table.row(&[
            f.to_string(),
            valid.to_string(),
            count.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            expectation.to_string(),
        ]);
    }
    emit(&table);
    println!(
        "Paper claim (§2.2): validity is preserved as long as fewer than m\n\
         partitions are lost — the merged result is then EXACTLY a snapshot of\n\
         cardinality C (COUNT(*) = C); past m the execution degrades to an\n\
         explicit invalid/approximate result."
    );
}
