//! E6 — "Is privacy protected whatever the attack?" (§3.3).
//!
//! Sealed-glass compromise trials against plans with varying horizontal
//! caps and vertical separation: measures the exposed snapshot fraction
//! and the quasi-identifier co-exposure rate.

use edgelet_bench::emit;
use edgelet_core::prelude::*;
use edgelet_core::util::rng::DetRng;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let pair = vec![("bmi".to_string(), "systolic_bp".to_string())];
    let trials = 2_000;
    let mut table = Table::new(
        format!("E6 — sealed-glass adversary, k compromised devices ({trials} trials)"),
        &[
            "cap",
            "separate bmi|bp",
            "k",
            "mean exposed %",
            "max exposed %",
            "pair co-exposure %",
        ],
    );

    let platform = Platform::build(PlatformConfig {
        seed: 3,
        contributors: 4_000,
        processors: 400,
        network: NetworkProfile::Reliable,
        ..PlatformConfig::default()
    });
    let mut p = platform;
    let spec = p.grouping_query(
        Predicate::True,
        1_000,
        &[&["sex"], &[]],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggKind::Avg, "bmi"),
            AggSpec::over(AggKind::Avg, "systolic_bp"),
        ],
    );
    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.1,
        ..ResilienceConfig::default()
    };

    for &(cap, separate) in &[
        (None::<usize>, false),
        (Some(500), false),
        (Some(200), false),
        (Some(100), false),
        (Some(100), true),
        (Some(50), true),
    ] {
        let mut privacy = PrivacyConfig::none();
        if let Some(c) = cap {
            privacy = privacy.with_max_tuples(c);
        }
        if separate {
            privacy = privacy.separate("bmi", "systolic_bp");
        }
        let plan = p.plan_query(&spec, &privacy, &resilience).expect("plan");
        let exposure = edgelet_core::privacy::analyze_plan(&plan);
        for &k in &[1usize, 3] {
            let mut rng = DetRng::new(1000 + k as u64);
            let sweep =
                edgelet_core::privacy::compromise_sweep(&exposure, k, &pair, trials, &mut rng);
            table.row(&[
                cap.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
                separate.to_string(),
                k.to_string(),
                fnum(100.0 * sweep.snapshot_fraction.mean()),
                fnum(100.0 * sweep.snapshot_fraction.max()),
                fnum(100.0 * sweep.pair_co_exposure_rate),
            ]);
        }
    }
    emit(&table);
    println!(
        "Paper claim (§3.3): horizontal partitioning bounds what one\n\
         compromised enclave exposes to C/n tuples; vertical partitioning\n\
         keeps quasi-identifier pairs from ever co-residing on a Computer\n\
         (residual co-exposure comes from Snapshot Builders, which hold\n\
         full rows of their partition)."
    );
}
