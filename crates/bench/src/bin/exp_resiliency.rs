//! E3 — "Can a query always proceed despite the failures?" (§3.3).
//!
//! Sweeps the real crash rate and measures completion/validity rates per
//! strategy, with the fault presumption matched to the crash rate.

use edgelet_bench::{emit, survey_spec, sweep};
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn main() {
    let trials = 20;
    let mut table = Table::new(
        format!("E3 — completion & validity vs crash rate ({trials} trials/point)"),
        &[
            "crash p",
            "strategy",
            "mean m",
            "completed",
            "valid",
            "mean msgs",
            "mean t (s)",
        ],
    );

    for &crash_p in &[0.0f64, 0.1, 0.2, 0.3] {
        for strategy in [Strategy::Overcollection, Strategy::Backup, Strategy::Naive] {
            let point = sweep(trials, |seed| {
                let mut p = Platform::build(PlatformConfig {
                    seed: seed * 7 + 1,
                    contributors: 3_500,
                    processors: 260,
                    network: NetworkProfile::Reliable,
                    processor_crash_probability: crash_p,
                    crash_at_start: true,
                    ..PlatformConfig::default()
                });
                let spec = survey_spec(&mut p, 300);
                p.run_query(
                    &spec,
                    &PrivacyConfig::none().with_max_tuples(50),
                    &ResilienceConfig {
                        strategy,
                        failure_probability: crash_p.max(0.01),
                        target_validity: 0.999,
                        ..ResilienceConfig::default()
                    },
                )
                .expect("run")
            });
            table.row(&[
                fnum(crash_p),
                strategy.name().to_string(),
                fnum(point.mean_m),
                format!("{}/{}", point.completed, point.trials),
                format!("{}/{}", point.valid, point.trials),
                fnum(point.mean_messages),
                fnum(point.mean_completion_secs),
            ]);
        }
    }
    emit(&table);
    println!(
        "Paper claim (§3.3): Overcollection (and Backup) keep the query valid\n\
         under the presumed failure rate; the naive baseline collapses as soon\n\
         as failures are real. Backup pays in messages and takeover latency."
    );
}
