//! E4 — result accuracy vs number of heartbeats (§3.3).
//!
//! Distributed K-Means under message loss: more heartbeats give the
//! Computers more synchronization rounds; loss degrades what each round
//! can achieve. Accuracy = inertia of the combined centroids evaluated on
//! the full eligible population, relative to a centralized fit.

use edgelet_bench::emit;
use edgelet_core::ml::gen::rows_to_points;
use edgelet_core::ml::kmeans::inertia;
use edgelet_core::prelude::*;
use edgelet_core::util::table::{fnum, Table};

fn one_run(seed: u64, heartbeats: usize, drop_p: f64) -> Option<f64> {
    let mut p = Platform::build(PlatformConfig {
        seed,
        contributors: 2_500,
        processors: 80,
        network: if drop_p > 0.0 {
            NetworkProfile::Lossy {
                drop_probability: drop_p,
            }
        } else {
            NetworkProfile::Reliable
        },
        ..PlatformConfig::default()
    });
    let spec = p.kmeans_query(
        Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
        400,
        3,
        &["age", "systolic_bp"],
        heartbeats,
        vec![],
    );
    let run = p
        .run_query(
            &spec,
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy: Strategy::Overcollection,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
        )
        .ok()?;
    let QueryOutcome::KMeans { centroids, .. } = run.report.outcome? else {
        return None;
    };
    let columns = spec.kind.referenced_columns();
    let rows = p.matching_rows(&spec.filter, &columns).ok()?;
    let names: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let sub = p.schema().project(&names).ok()?;
    let points = rows_to_points(&sub, &rows, &["age", "systolic_bp"]).ok()?;
    let distributed = inertia(&centroids.centroids, &points);
    let central = p.centralized_kmeans(&spec).ok()?.inertia;
    Some(distributed / central)
}

fn main() {
    let seeds = 5u64;
    let mut table = Table::new(
        format!("E4 — K-Means inertia ratio vs heartbeats ({seeds} seeds/point)"),
        &["loss p", "heartbeats", "mean inertia ratio", "completed"],
    );
    for &drop_p in &[0.0f64, 0.15, 0.30] {
        for &heartbeats in &[1usize, 2, 4, 8] {
            let mut ratios = Vec::new();
            for seed in 0..seeds {
                if let Some(r) = one_run(seed * 13 + 5, heartbeats, drop_p) {
                    ratios.push(r);
                }
            }
            let mean = if ratios.is_empty() {
                f64::NAN
            } else {
                ratios.iter().sum::<f64>() / ratios.len() as f64
            };
            table.row(&[
                fnum(drop_p),
                heartbeats.to_string(),
                fnum(mean),
                format!("{}/{}", ratios.len(), seeds),
            ]);
        }
    }
    emit(&table);
    println!(
        "Paper claim (§3.3): the Heartbeat keeps the iteration advancing under\n\
         loss; accuracy improves with the number of heartbeats and degrades\n\
         gracefully (not catastrophically) as the loss rate rises. Ratio 1.0 =\n\
         centralized quality."
    );
}
