//! Static exposure analysis of a query plan.

use edgelet_query::{OperatorRole, QueryPlan};
use edgelet_util::ids::DeviceId;
use std::collections::{BTreeMap, BTreeSet};

/// What one device would expose if its TEE went sealed-glass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceExposure {
    /// Attribute names present in cleartext on the device.
    pub columns: BTreeSet<String>,
    /// Raw (pre-aggregation) tuples present in cleartext.
    pub raw_tuples: u64,
    /// Role labels hosted (for reporting).
    pub roles: Vec<String>,
}

impl DeviceExposure {
    /// Whether both attributes of a pair are co-exposed here.
    pub fn co_exposes(&self, a: &str, b: &str) -> bool {
        self.raw_tuples > 0 && self.columns.contains(a) && self.columns.contains(b)
    }

    /// Raw-tuple exposure as a fraction of the snapshot cardinality.
    pub fn raw_tuples_seen_fraction(&self, snapshot_cardinality: u64) -> f64 {
        if snapshot_cardinality == 0 {
            0.0
        } else {
            self.raw_tuples as f64 / snapshot_cardinality as f64
        }
    }
}

/// Exposure of every Data Processor device in a plan.
#[derive(Debug, Clone, Default)]
pub struct PlanExposure {
    /// Per-device exposure.
    pub per_device: BTreeMap<DeviceId, DeviceExposure>,
    /// The snapshot cardinality `C` (denominator for fractions).
    pub snapshot_cardinality: u64,
}

impl PlanExposure {
    /// Devices analyzed.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.per_device.keys().copied().collect()
    }

    /// Largest raw-tuple exposure of any single device.
    pub fn max_raw_tuples(&self) -> u64 {
        self.per_device
            .values()
            .map(|e| e.raw_tuples)
            .max()
            .unwrap_or(0)
    }

    /// Largest fraction of the snapshot any single device exposes.
    pub fn max_snapshot_fraction(&self) -> f64 {
        if self.snapshot_cardinality == 0 {
            0.0
        } else {
            self.max_raw_tuples() as f64 / self.snapshot_cardinality as f64
        }
    }

    /// Whether any single device co-exposes the given attribute pair.
    pub fn any_co_exposure(&self, a: &str, b: &str) -> bool {
        self.per_device.values().any(|e| e.co_exposes(a, b))
    }
}

/// Computes the worst-case exposure each device incurs by hosting its
/// operators in `plan`.
///
/// Builders hold the full column union of their partition; Computers hold
/// their vertical slice; Combiners and the Querier only ever see
/// aggregated data, so their raw-tuple exposure is zero (the paper's
/// "only the results of the computations ... are sent to the successor
/// operators").
pub fn analyze_plan(plan: &QueryPlan) -> PlanExposure {
    let mut per_device: BTreeMap<DeviceId, DeviceExposure> = BTreeMap::new();
    let quota = plan.partition_quota as u64;
    let all_columns: BTreeSet<String> = plan.attr_groups.iter().flatten().cloned().collect();

    for op in &plan.operators {
        let (columns, raw): (BTreeSet<String>, u64) = match &op.role {
            OperatorRole::SnapshotBuilder { .. } => (all_columns.clone(), quota),
            OperatorRole::Computer { attr_group, .. } => (
                plan.attr_groups[*attr_group as usize]
                    .iter()
                    .cloned()
                    .collect(),
                quota,
            ),
            OperatorRole::Combiner { .. } | OperatorRole::Querier => (BTreeSet::new(), 0),
        };
        for dev in std::iter::once(op.device).chain(op.backups.iter().copied()) {
            let entry = per_device.entry(dev).or_default();
            entry.columns.extend(columns.iter().cloned());
            entry.raw_tuples += raw;
            entry.roles.push(op.role.label());
        }
    }

    PlanExposure {
        per_device,
        snapshot_cardinality: plan.spec.snapshot_cardinality as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_ml::grouping::GroupingQuery;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_query::plan::build_plan;
    use edgelet_query::{PrivacyConfig, QueryKind, QuerySpec, ResilienceConfig, Strategy};
    use edgelet_store::synth::health_schema;
    use edgelet_store::Predicate;
    use edgelet_tee::{DeviceClass, Directory};
    use edgelet_util::ids::QueryId;
    use edgelet_util::rng::DetRng;

    fn make_plan(privacy: PrivacyConfig, c: usize) -> QueryPlan {
        let mut dir = Directory::new();
        let mut rng = DetRng::new(11);
        for i in 0..600u64 {
            dir.enroll(
                DeviceId::new(i),
                DeviceClass::SgxPc,
                i < 300,
                i >= 300,
                &mut rng,
            );
        }
        let spec = QuerySpec {
            id: QueryId::new(1),
            filter: Predicate::True,
            snapshot_cardinality: c,
            kind: QueryKind::GroupingSets(GroupingQuery::new(
                &[&["sex"]],
                vec![
                    AggSpec::count_star(),
                    AggSpec::over(AggKind::Avg, "bmi"),
                    AggSpec::over(AggKind::Avg, "systolic_bp"),
                ],
            )),
            deadline_secs: 600.0,
        };
        build_plan(
            &spec,
            &health_schema(),
            &privacy,
            &ResilienceConfig {
                strategy: Strategy::Naive,
                ..ResilienceConfig::default()
            },
            &dir,
            DeviceId::new(0),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn horizontal_cap_bounds_exposure() {
        let loose = analyze_plan(&make_plan(PrivacyConfig::none(), 1000));
        assert_eq!(loose.max_raw_tuples(), 1000);
        assert_eq!(loose.max_snapshot_fraction(), 1.0);

        let tight = analyze_plan(&make_plan(PrivacyConfig::none().with_max_tuples(100), 1000));
        assert_eq!(tight.max_raw_tuples(), 100);
        assert!((tight.max_snapshot_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn vertical_separation_prevents_co_exposure_on_computers() {
        let plan = make_plan(
            PrivacyConfig::none()
                .with_max_tuples(250)
                .separate("bmi", "systolic_bp"),
            1000,
        );
        let exposure = analyze_plan(&plan);
        // Computers never co-expose the pair...
        for op in plan
            .operators
            .iter()
            .filter(|o| matches!(o.role, OperatorRole::Computer { .. }))
        {
            let e = &exposure.per_device[&op.device];
            assert!(!e.co_exposes("bmi", "systolic_bp"), "{:?}", e);
        }
        // ...but snapshot builders still hold the full rows (the paper's
        // residual exposure: partitioning helps at the computing stage).
        assert!(exposure.any_co_exposure("bmi", "systolic_bp"));
    }

    #[test]
    fn combiner_and_querier_have_zero_raw_exposure() {
        let plan = make_plan(PrivacyConfig::none().with_max_tuples(100), 400);
        let exposure = analyze_plan(&plan);
        for op in &plan.operators {
            if matches!(
                op.role,
                OperatorRole::Combiner { .. } | OperatorRole::Querier
            ) {
                let e = &exposure.per_device[&op.device];
                assert_eq!(e.raw_tuples, 0, "{:?}", op.role);
                assert!(e.columns.is_empty());
            }
        }
    }

    #[test]
    fn every_processor_is_analyzed() {
        let plan = make_plan(PrivacyConfig::none().with_max_tuples(100), 400);
        let exposure = analyze_plan(&plan);
        assert_eq!(
            exposure.devices().len(),
            plan.processor_devices().len() + 1 // + querier
        );
    }
}
