//! Monte-Carlo compromise trials: sealed-glass adversary corrupting `k`
//! random Data Processor devices.

use crate::exposure::PlanExposure;
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::stats::OnlineStats;

/// Outcome of one compromise trial.
#[derive(Debug, Clone, PartialEq)]
pub struct CompromiseOutcome {
    /// The corrupted devices.
    pub compromised: Vec<DeviceId>,
    /// Raw tuples the adversary reads across all corrupted enclaves.
    pub raw_tuples_exposed: u64,
    /// Fraction of the snapshot cardinality that represents (can exceed
    /// 1.0 with overcollection duplicates).
    pub snapshot_fraction: f64,
    /// Separated pairs co-exposed *on a single device* (index into the
    /// pair list given to the trial).
    pub co_exposed_pairs: Vec<usize>,
}

/// Aggregated results over many trials.
#[derive(Debug, Clone)]
pub struct CompromiseSummary {
    /// Devices corrupted per trial.
    pub k: usize,
    /// Trials run.
    pub trials: usize,
    /// Distribution of exposed snapshot fraction.
    pub snapshot_fraction: OnlineStats,
    /// Probability that at least one separated pair was co-exposed on one
    /// device.
    pub pair_co_exposure_rate: f64,
}

/// Runs one trial: corrupt `k` devices drawn uniformly from the plan's
/// processors and measure what leaks.
pub fn compromise_trial(
    exposure: &PlanExposure,
    k: usize,
    pairs: &[(String, String)],
    rng: &mut DetRng,
) -> CompromiseOutcome {
    let devices = exposure.devices();
    let picked = rng.sample_indices(devices.len(), k);
    let compromised: Vec<DeviceId> = picked.into_iter().map(|i| devices[i]).collect();

    let mut raw = 0u64;
    let mut co_exposed: Vec<usize> = Vec::new();
    for dev in &compromised {
        let e = &exposure.per_device[dev];
        raw += e.raw_tuples;
        for (i, (a, b)) in pairs.iter().enumerate() {
            if e.co_exposes(a, b) && !co_exposed.contains(&i) {
                co_exposed.push(i);
            }
        }
    }
    let fraction = if exposure.snapshot_cardinality == 0 {
        0.0
    } else {
        raw as f64 / exposure.snapshot_cardinality as f64
    };
    CompromiseOutcome {
        compromised,
        raw_tuples_exposed: raw,
        snapshot_fraction: fraction,
        co_exposed_pairs: co_exposed,
    }
}

/// Runs `trials` compromise trials and summarizes.
pub fn compromise_sweep(
    exposure: &PlanExposure,
    k: usize,
    pairs: &[(String, String)],
    trials: usize,
    rng: &mut DetRng,
) -> CompromiseSummary {
    let mut fraction = OnlineStats::new();
    let mut pair_hits = 0usize;
    for t in 0..trials {
        let mut trial_rng = rng.fork_indexed("compromise-trial", t as u64);
        let outcome = compromise_trial(exposure, k, pairs, &mut trial_rng);
        fraction.push(outcome.snapshot_fraction);
        if !outcome.co_exposed_pairs.is_empty() {
            pair_hits += 1;
        }
    }
    CompromiseSummary {
        k,
        trials,
        snapshot_fraction: fraction,
        pair_co_exposure_rate: if trials == 0 {
            0.0
        } else {
            pair_hits as f64 / trials as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exposure::analyze_plan;
    use edgelet_ml::grouping::GroupingQuery;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_query::plan::build_plan;
    use edgelet_query::{
        PrivacyConfig, QueryKind, QueryPlan, QuerySpec, ResilienceConfig, Strategy,
    };
    use edgelet_store::synth::health_schema;
    use edgelet_store::Predicate;
    use edgelet_tee::{DeviceClass, Directory};
    use edgelet_util::ids::QueryId;

    fn make_plan(privacy: PrivacyConfig) -> QueryPlan {
        let mut dir = Directory::new();
        let mut rng = DetRng::new(21);
        for i in 0..600u64 {
            dir.enroll(
                DeviceId::new(i),
                DeviceClass::SgxPc,
                i < 300,
                i >= 300,
                &mut rng,
            );
        }
        let spec = QuerySpec {
            id: QueryId::new(1),
            filter: Predicate::True,
            snapshot_cardinality: 1000,
            kind: QueryKind::GroupingSets(GroupingQuery::new(
                &[&["sex"]],
                vec![
                    AggSpec::over(AggKind::Avg, "bmi"),
                    AggSpec::over(AggKind::Avg, "systolic_bp"),
                ],
            )),
            deadline_secs: 600.0,
        };
        build_plan(
            &spec,
            &health_schema(),
            &privacy,
            &ResilienceConfig {
                strategy: Strategy::Naive,
                ..ResilienceConfig::default()
            },
            &dir,
            DeviceId::new(0),
            &mut rng,
        )
        .unwrap()
    }

    fn pair() -> Vec<(String, String)> {
        vec![("bmi".to_string(), "systolic_bp".to_string())]
    }

    #[test]
    fn trial_is_deterministic_and_bounded() {
        let exposure = analyze_plan(&make_plan(PrivacyConfig::none().with_max_tuples(100)));
        let a = compromise_trial(&exposure, 3, &pair(), &mut DetRng::new(5));
        let b = compromise_trial(&exposure, 3, &pair(), &mut DetRng::new(5));
        assert_eq!(a, b);
        assert_eq!(a.compromised.len(), 3);
        // Each device exposes at most its quota (100) and a builder+computer
        // both corrupted expose at most 2 * quota * 3 devices.
        assert!(a.raw_tuples_exposed <= 300);
    }

    #[test]
    fn horizontal_partitioning_shrinks_exposure() {
        // One device holds everything vs. ten devices holding 10% each.
        let coarse = analyze_plan(&make_plan(PrivacyConfig::none()));
        let fine = analyze_plan(&make_plan(PrivacyConfig::none().with_max_tuples(100)));
        let mut rng = DetRng::new(7);
        let sc = compromise_sweep(&coarse, 1, &[], 300, &mut rng);
        let sf = compromise_sweep(&fine, 1, &[], 300, &mut rng);
        assert!(
            sc.snapshot_fraction.mean() > 4.0 * sf.snapshot_fraction.mean(),
            "coarse {} vs fine {}",
            sc.snapshot_fraction.mean(),
            sf.snapshot_fraction.mean()
        );
    }

    #[test]
    fn vertical_partitioning_lowers_pair_co_exposure() {
        let merged = analyze_plan(&make_plan(PrivacyConfig::none().with_max_tuples(100)));
        let separated = analyze_plan(&make_plan(
            PrivacyConfig::none()
                .with_max_tuples(100)
                .separate("bmi", "systolic_bp"),
        ));
        let mut rng = DetRng::new(9);
        let sm = compromise_sweep(&merged, 2, &pair(), 400, &mut rng);
        let ss = compromise_sweep(&separated, 2, &pair(), 400, &mut rng);
        assert!(
            sm.pair_co_exposure_rate > ss.pair_co_exposure_rate,
            "merged {} vs separated {}",
            sm.pair_co_exposure_rate,
            ss.pair_co_exposure_rate
        );
    }

    #[test]
    fn more_compromise_more_exposure() {
        let exposure = analyze_plan(&make_plan(PrivacyConfig::none().with_max_tuples(100)));
        let mut rng = DetRng::new(13);
        let s1 = compromise_sweep(&exposure, 1, &[], 200, &mut rng);
        let s5 = compromise_sweep(&exposure, 5, &[], 200, &mut rng);
        assert!(s5.snapshot_fraction.mean() > s1.snapshot_fraction.mean());
        assert_eq!(s1.trials, 200);
        assert_eq!(s5.k, 5);
    }

    #[test]
    fn monte_carlo_matches_analytic_expectation() {
        // E[exposed fraction | k=1] = mean over devices of (exposure / C).
        let exposure = analyze_plan(&make_plan(PrivacyConfig::none().with_max_tuples(100)));
        let devices = exposure.devices();
        let analytic: f64 = devices
            .iter()
            .map(|d| exposure.per_device[d].raw_tuples_seen_fraction(exposure.snapshot_cardinality))
            .sum::<f64>()
            / devices.len() as f64;
        let mut rng = DetRng::new(99);
        let sweep = compromise_sweep(&exposure, 1, &[], 4_000, &mut rng);
        let measured = sweep.snapshot_fraction.mean();
        assert!(
            (measured - analytic).abs() < 0.01,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn empty_sweep_is_safe() {
        let exposure = analyze_plan(&make_plan(PrivacyConfig::none().with_max_tuples(100)));
        let mut rng = DetRng::new(1);
        let s = compromise_sweep(&exposure, 1, &[], 0, &mut rng);
        assert_eq!(s.pair_co_exposure_rate, 0.0);
        assert_eq!(s.snapshot_fraction.count(), 0);
    }
}
