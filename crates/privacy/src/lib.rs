//! Privacy exposure analysis under TEE compromise.
//!
//! The paper's threat model (§2.1, §3.3) assumes side-channel attacks can
//! place a TEE in "sealed glass" mode: the attacker reads whatever data is
//! present in the compromised enclave, while integrity (and thus results)
//! is preserved. The QEP-level counter-measures are horizontal and
//! vertical partitioning; this crate quantifies their benefit:
//!
//! * [`exposure`] — static analysis of a plan: which columns and how many
//!   raw tuples each device would expose if compromised;
//! * [`adversary`] — Monte-Carlo compromise trials: an adversary corrupts
//!   `k` random Data Processor devices; we measure the exposed fraction of
//!   the snapshot and whether any separated quasi-identifier pair was
//!   co-exposed on a single device.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod exposure;

pub use adversary::{compromise_sweep, compromise_trial, CompromiseOutcome, CompromiseSummary};
pub use exposure::{analyze_plan, DeviceExposure, PlanExposure};
