//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

use crate::chacha20::{chacha20_block, chacha20_xor};
use crate::poly1305::Poly1305;
use edgelet_util::{Error, Result};

/// Authenticated encryption with associated data, as specified in RFC 8439.
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; 32],
}

impl ChaCha20Poly1305 {
    /// Creates a cipher for the given 256-bit key.
    pub fn new(key: [u8; 32]) -> Self {
        Self { key }
    }

    /// Encrypts `plaintext`, returning `ciphertext || 16-byte tag`.
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        chacha20_xor(&self.key, 1, nonce, &mut out);
        let tag = self.compute_tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts `ciphertext || tag`.
    pub fn open(&self, nonce: &[u8; 12], aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>> {
        if sealed.len() < 16 {
            return Err(Error::Crypto("sealed message shorter than tag".into()));
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - 16);
        let expected = self.compute_tag(nonce, aad, ciphertext);
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(Error::Crypto("AEAD tag mismatch".into()));
        }
        let mut out = ciphertext.to_vec();
        chacha20_xor(&self.key, 1, nonce, &mut out);
        Ok(out)
    }

    fn compute_tag(&self, nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        // One-time Poly1305 key = first 32 bytes of block 0.
        let block0 = chacha20_block(&self.key, 0, nonce);
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);

        let mut mac = Poly1305::new(&otk);
        mac.update(aad);
        mac.update(&zero_pad(aad.len()));
        mac.update(ciphertext);
        mac.update(&zero_pad(ciphertext.len()));
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finish()
    }
}

fn zero_pad(len: usize) -> Vec<u8> {
    vec![0u8; (16 - len % 16) % 16]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn rfc8439_setup() -> (ChaCha20Poly1305, [u8; 12], Vec<u8>, Vec<u8>) {
        let key_bytes = unhex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let nonce_bytes = unhex("070000004041424344454647");
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&nonce_bytes);
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        (ChaCha20Poly1305::new(key), nonce, aad, plaintext)
    }

    #[test]
    fn rfc8439_seal_vector() {
        let (aead, nonce, aad, plaintext) = rfc8439_setup();
        let sealed = aead.seal(&nonce, &aad, &plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(
            hex(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
    }

    #[test]
    fn rfc8439_open_vector() {
        let (aead, nonce, aad, plaintext) = rfc8439_setup();
        let sealed = aead.seal(&nonce, &aad, &plaintext);
        let opened = aead.open(&nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tampering_is_rejected() {
        let (aead, nonce, aad, plaintext) = rfc8439_setup();
        let sealed = aead.seal(&nonce, &aad, &plaintext);
        for i in [0usize, sealed.len() / 2, sealed.len() - 1] {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(aead.open(&nonce, &aad, &bad).is_err(), "flip at {i}");
        }
        // Wrong AAD.
        assert!(aead.open(&nonce, b"different aad", &sealed).is_err());
        // Wrong nonce.
        let mut nonce2 = nonce;
        nonce2[0] ^= 1;
        assert!(aead.open(&nonce2, &aad, &sealed).is_err());
        // Too short.
        assert!(aead.open(&nonce, &aad, &sealed[..8]).is_err());
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let aead = ChaCha20Poly1305::new([9u8; 32]);
        let nonce = [1u8; 12];
        let sealed = aead.seal(&nonce, &[], &[]);
        assert_eq!(sealed.len(), 16);
        assert_eq!(aead.open(&nonce, &[], &sealed).unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn prop_seal_open_roundtrip(
            key in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            aad in prop::collection::vec(any::<u8>(), 0..64),
            plaintext in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            let aead = ChaCha20Poly1305::new(key);
            let sealed = aead.seal(&nonce, &aad, &plaintext);
            prop_assert_eq!(sealed.len(), plaintext.len() + 16);
            let opened = aead.open(&nonce, &aad, &sealed).unwrap();
            prop_assert_eq!(opened, plaintext);
        }
    }
}
