//! Simulated remote attestation.
//!
//! In the real deployments the paper targets, each device class carries its
//! own attestation machinery (SGX quoting enclaves, TPM quotes signed by an
//! endorsement hierarchy, TrustZone equivalents). For the simulator we model
//! the *guarantee*, not the mechanism: a [`TrustAnchor`] stands in for the
//! manufacturer/PKI root, issues per-device attestation keys, and verifies
//! [`AttestationQuote`]s — MACs binding a device identity, the enclave code
//! *measurement* and a verifier-chosen nonce.
//!
//! A device whose TEE is compromised in "sealed glass" mode (integrity kept,
//! confidentiality lost — §2.1 of the paper) still produces valid quotes;
//! a device whose *integrity* is compromised cannot, and the directory
//! refuses to schedule operators on it.

use crate::hmac::{hmac_sha256, mac_eq};
use crate::sha256::sha256;
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Result};
use std::collections::BTreeMap;

/// A 32-byte code measurement (hash of the operator code an enclave runs).
pub type Measurement = [u8; 32];

/// Computes a measurement for a code blob (here: the operator identifier).
pub fn measure(code: &[u8]) -> Measurement {
    sha256(code)
}

/// A quote proving that `device` runs code with `measurement` inside a TEE,
/// freshly bound to `nonce`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationQuote {
    /// The attested device.
    pub device: DeviceId,
    /// The code measurement the TEE reports.
    pub measurement: Measurement,
    /// Verifier-supplied anti-replay nonce.
    pub nonce: [u8; 32],
    /// MAC by the device's attestation key.
    pub mac: [u8; 32],
}

impl AttestationQuote {
    fn message(device: DeviceId, measurement: &Measurement, nonce: &[u8; 32]) -> Vec<u8> {
        let mut msg = Vec::with_capacity(8 + 32 + 32 + 16);
        msg.extend_from_slice(b"edgelet-quote-v1");
        msg.extend_from_slice(&device.raw().to_le_bytes());
        msg.extend_from_slice(measurement);
        msg.extend_from_slice(nonce);
        msg
    }
}

/// The simulated manufacturer root that provisions attestation keys and
/// verifies quotes. One per simulated world.
#[derive(Debug, Clone)]
pub struct TrustAnchor {
    root_key: [u8; 32],
    /// Devices whose integrity has been revoked (fully compromised TEEs).
    revoked: BTreeMap<DeviceId, ()>,
}

impl TrustAnchor {
    /// Creates a trust anchor from a root secret.
    pub fn new(root_key: [u8; 32]) -> Self {
        Self {
            root_key,
            revoked: BTreeMap::new(),
        }
    }

    /// Derives the attestation key provisioned into `device` at manufacture.
    pub fn provision_device_key(&self, device: DeviceId) -> [u8; 32] {
        let mut info = Vec::with_capacity(24);
        info.extend_from_slice(b"attest-key");
        info.extend_from_slice(&device.raw().to_le_bytes());
        hmac_sha256(&self.root_key, &info)
    }

    /// Produces a quote on behalf of a device (what the device's TEE would
    /// compute locally with its provisioned key).
    pub fn quote(
        &self,
        device: DeviceId,
        measurement: Measurement,
        nonce: [u8; 32],
    ) -> AttestationQuote {
        let key = self.provision_device_key(device);
        let msg = AttestationQuote::message(device, &measurement, &nonce);
        AttestationQuote {
            device,
            measurement,
            nonce,
            mac: hmac_sha256(&key, &msg),
        }
    }

    /// Marks a device's TEE integrity as broken; its quotes stop verifying.
    pub fn revoke(&mut self, device: DeviceId) {
        self.revoked.insert(device, ());
    }

    /// True if the device has been revoked.
    pub fn is_revoked(&self, device: DeviceId) -> bool {
        self.revoked.contains_key(&device)
    }

    /// Verifies a quote against an expected measurement and nonce.
    pub fn verify(
        &self,
        quote: &AttestationQuote,
        expected_measurement: &Measurement,
        expected_nonce: &[u8; 32],
    ) -> Result<()> {
        if self.is_revoked(quote.device) {
            return Err(Error::Crypto(format!(
                "device {} attestation revoked",
                quote.device
            )));
        }
        if &quote.measurement != expected_measurement {
            return Err(Error::Crypto("measurement mismatch".into()));
        }
        if &quote.nonce != expected_nonce {
            return Err(Error::Crypto("stale attestation nonce".into()));
        }
        let key = self.provision_device_key(quote.device);
        let msg = AttestationQuote::message(quote.device, &quote.measurement, &quote.nonce);
        let expected = hmac_sha256(&key, &msg);
        if !mac_eq(&expected, &quote.mac) {
            return Err(Error::Crypto("quote MAC invalid".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor() -> TrustAnchor {
        TrustAnchor::new([0x42u8; 32])
    }

    #[test]
    fn quote_verifies() {
        let ta = anchor();
        let m = measure(b"snapshot-builder-v1");
        let nonce = [7u8; 32];
        let q = ta.quote(DeviceId::new(3), m, nonce);
        ta.verify(&q, &m, &nonce).unwrap();
    }

    #[test]
    fn wrong_measurement_rejected() {
        let ta = anchor();
        let m = measure(b"computer-v1");
        let nonce = [1u8; 32];
        let q = ta.quote(DeviceId::new(1), m, nonce);
        let other = measure(b"evil-code");
        assert!(ta.verify(&q, &other, &nonce).is_err());
    }

    #[test]
    fn replayed_nonce_rejected() {
        let ta = anchor();
        let m = measure(b"combiner-v1");
        let q = ta.quote(DeviceId::new(2), m, [9u8; 32]);
        assert!(ta.verify(&q, &m, &[8u8; 32]).is_err());
    }

    #[test]
    fn forged_mac_rejected() {
        let ta = anchor();
        let m = measure(b"code");
        let nonce = [5u8; 32];
        let mut q = ta.quote(DeviceId::new(4), m, nonce);
        q.mac[0] ^= 1;
        assert!(ta.verify(&q, &m, &nonce).is_err());
        // A quote minted under a different root also fails.
        let other_root = TrustAnchor::new([0x43u8; 32]);
        let q2 = other_root.quote(DeviceId::new(4), m, nonce);
        assert!(ta.verify(&q2, &m, &nonce).is_err());
    }

    #[test]
    fn quote_is_device_bound() {
        let ta = anchor();
        let m = measure(b"code");
        let nonce = [5u8; 32];
        let mut q = ta.quote(DeviceId::new(4), m, nonce);
        q.device = DeviceId::new(5);
        assert!(ta.verify(&q, &m, &nonce).is_err());
    }

    #[test]
    fn revocation_blocks_verification() {
        let mut ta = anchor();
        let m = measure(b"code");
        let nonce = [5u8; 32];
        let q = ta.quote(DeviceId::new(6), m, nonce);
        ta.verify(&q, &m, &nonce).unwrap();
        ta.revoke(DeviceId::new(6));
        assert!(ta.is_revoked(DeviceId::new(6)));
        assert!(ta.verify(&q, &m, &nonce).is_err());
    }

    #[test]
    fn device_keys_are_distinct() {
        let ta = anchor();
        assert_ne!(
            ta.provision_device_key(DeviceId::new(0)),
            ta.provision_device_key(DeviceId::new(1))
        );
    }
}
