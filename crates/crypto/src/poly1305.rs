//! Poly1305 one-time authenticator (RFC 8439), 26-bit limb implementation.

/// Computes the Poly1305 tag of `message` under a 32-byte one-time key.
pub fn poly1305(key: &[u8; 32], message: &[u8]) -> [u8; 16] {
    let mut p = Poly1305::new(key);
    p.update(message);
    p.finish()
}

/// Incremental Poly1305 state.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buffer: [u8; 16],
    buffered: usize,
}

impl Poly1305 {
    /// Initializes from the 32-byte one-time key `(r || s)`.
    pub fn new(key: &[u8; 32]) -> Self {
        let mut r = [0u32; 5];
        // Load r and clamp per the spec.
        let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);
        r[0] = t0 & 0x03ffffff;
        r[1] = ((t0 >> 26) | (t1 << 6)) & 0x03ffff03;
        r[2] = ((t1 >> 20) | (t2 << 12)) & 0x03ffc0ff;
        r[3] = ((t2 >> 14) | (t3 << 18)) & 0x03f03fff;
        r[4] = (t3 >> 8) & 0x000fffff;

        let pad = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];

        Self {
            r,
            h: [0u32; 5],
            pad,
            buffer: [0u8; 16],
            buffered: 0,
        }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffered > 0 {
            let take = (16 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 16 {
                let block = self.buffer;
                self.block(&block, false);
                self.buffered = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes and returns the 16-byte tag.
    pub fn finish(mut self) -> [u8; 16] {
        if self.buffered > 0 {
            // Final partial block: append 0x01 then zero-pad, without the
            // usual 2^128 high bit.
            let mut block = [0u8; 16];
            block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
            block[self.buffered] = 0x01;
            self.block(&block, true);
        }

        let mut h = self.h;
        // Full carry propagation.
        let mut c;
        c = h[1] >> 26;
        h[1] &= 0x03ffffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x03ffffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x03ffffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x03ffffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x03ffffff;
        h[1] += c;

        // Compute h + -p and select.
        let mut g = [0u32; 5];
        g[0] = h[0].wrapping_add(5);
        c = g[0] >> 26;
        g[0] &= 0x03ffffff;
        g[1] = h[1].wrapping_add(c);
        c = g[1] >> 26;
        g[1] &= 0x03ffffff;
        g[2] = h[2].wrapping_add(c);
        c = g[2] >> 26;
        g[2] &= 0x03ffffff;
        g[3] = h[3].wrapping_add(c);
        c = g[3] >> 26;
        g[3] &= 0x03ffffff;
        g[4] = h[4].wrapping_add(c).wrapping_sub(1 << 26);

        // If g[4] underflowed, keep h; else take g.
        let mask = (g[4] >> 31).wrapping_sub(1); // all-ones if g >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize to 128 bits.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        // Add s (the pad) modulo 2^128.
        let mut acc = u64::from(h0) + u64::from(self.pad[0]);
        let t0 = acc as u32;
        acc = u64::from(h1) + u64::from(self.pad[1]) + (acc >> 32);
        let t1 = acc as u32;
        acc = u64::from(h2) + u64::from(self.pad[2]) + (acc >> 32);
        let t2 = acc as u32;
        acc = u64::from(h3) + u64::from(self.pad[3]) + (acc >> 32);
        let t3 = acc as u32;

        let mut tag = [0u8; 16];
        tag[0..4].copy_from_slice(&t0.to_le_bytes());
        tag[4..8].copy_from_slice(&t1.to_le_bytes());
        tag[8..12].copy_from_slice(&t2.to_le_bytes());
        tag[12..16].copy_from_slice(&t3.to_le_bytes());
        tag
    }

    fn block(&mut self, block: &[u8; 16], is_final_partial: bool) {
        let hibit: u32 = if is_final_partial { 0 } else { 1 << 24 };

        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);

        // h += m
        self.h[0] += t0 & 0x03ffffff;
        self.h[1] += ((t0 >> 26) | (t1 << 6)) & 0x03ffffff;
        self.h[2] += ((t1 >> 20) | (t2 << 12)) & 0x03ffffff;
        self.h[3] += ((t2 >> 14) | (t3 << 18)) & 0x03ffffff;
        self.h[4] += (t3 >> 8) | hibit;

        // h *= r (mod 2^130 - 5)
        let r = &self.r;
        let s1 = r[1] * 5;
        let s2 = r[2] * 5;
        let s3 = r[3] * 5;
        let s4 = r[4] * 5;
        let h = &self.h;

        let d0: u64 = u64::from(h[0]) * u64::from(r[0])
            + u64::from(h[1]) * u64::from(s4)
            + u64::from(h[2]) * u64::from(s3)
            + u64::from(h[3]) * u64::from(s2)
            + u64::from(h[4]) * u64::from(s1);
        let d1: u64 = u64::from(h[0]) * u64::from(r[1])
            + u64::from(h[1]) * u64::from(r[0])
            + u64::from(h[2]) * u64::from(s4)
            + u64::from(h[3]) * u64::from(s3)
            + u64::from(h[4]) * u64::from(s2);
        let d2: u64 = u64::from(h[0]) * u64::from(r[2])
            + u64::from(h[1]) * u64::from(r[1])
            + u64::from(h[2]) * u64::from(r[0])
            + u64::from(h[3]) * u64::from(s4)
            + u64::from(h[4]) * u64::from(s3);
        let d3: u64 = u64::from(h[0]) * u64::from(r[3])
            + u64::from(h[1]) * u64::from(r[2])
            + u64::from(h[2]) * u64::from(r[1])
            + u64::from(h[3]) * u64::from(r[0])
            + u64::from(h[4]) * u64::from(s4);
        let d4: u64 = u64::from(h[0]) * u64::from(r[4])
            + u64::from(h[1]) * u64::from(r[3])
            + u64::from(h[2]) * u64::from(r[2])
            + u64::from(h[3]) * u64::from(r[1])
            + u64::from(h[4]) * u64::from(r[0]);

        // Partial carry propagation.
        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;
        c = d0 >> 26;
        self.h[0] = (d0 as u32) & 0x03ffffff;
        d1 += c;
        c = d1 >> 26;
        self.h[1] = (d1 as u32) & 0x03ffffff;
        d2 += c;
        c = d2 >> 26;
        self.h[2] = (d2 as u32) & 0x03ffffff;
        d3 += c;
        c = d3 >> 26;
        self.h[3] = (d3 as u32) & 0x03ffffff;
        d4 += c;
        c = d4 >> 26;
        self.h[4] = (d4 as u32) & 0x03ffffff;
        d0 = u64::from(self.h[0]) + c * 5;
        c = d0 >> 26;
        self.h[0] = (d0 as u32) & 0x03ffffff;
        self.h[1] += c as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key_bytes = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key = [0u8; 32];
        key.copy_from_slice(&key_bytes);
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn zero_key_gives_s_pad() {
        // With r = 0 the accumulator stays 0 and the tag equals s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xAB; 16]);
        let tag = poly1305(&key, b"whatever message");
        assert_eq!(tag, [0xAB; 16]);
    }

    #[test]
    fn block_boundary_lengths() {
        let mut key = [3u8; 32];
        key[0] = 1;
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 64, 100] {
            let msg = vec![0x42u8; len];
            let oneshot = poly1305(&key, &msg);
            let mut inc = Poly1305::new(&key);
            for chunk in msg.chunks(7) {
                inc.update(chunk);
            }
            assert_eq!(inc.finish(), oneshot, "len {len}");
        }
    }

    proptest! {
        #[test]
        fn prop_incremental_equals_oneshot(
            key in any::<[u8; 32]>(),
            msg in prop::collection::vec(any::<u8>(), 0..256),
            chunk_size in 1usize..32,
        ) {
            let oneshot = poly1305(&key, &msg);
            let mut inc = Poly1305::new(&key);
            for chunk in msg.chunks(chunk_size) {
                inc.update(chunk);
            }
            prop_assert_eq!(inc.finish(), oneshot);
        }

        #[test]
        fn prop_message_tamper_changes_tag(
            key in any::<[u8; 32]>(),
            msg in prop::collection::vec(any::<u8>(), 1..128),
            pos in any::<prop::sample::Index>(),
        ) {
            // r = 0 (after clamping) would make the tag independent of the
            // message; skip degenerate keys.
            prop_assume!(key[..16].iter().any(|&b| b != 0));
            let idx = pos.index(msg.len());
            let mut tampered = msg.clone();
            tampered[idx] ^= 0x01;
            // Tag collision for single-bit flip is cryptographically
            // negligible; treat as failure if observed.
            prop_assert_ne!(poly1305(&key, &msg), poly1305(&key, &tampered));
        }
    }
}
