//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finish();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finish()
}

/// Constant-shape comparison of two MACs.
///
/// The simulator doesn't need true constant-time behaviour, but writing the
/// comparison this way documents the intent and avoids early-exit habits.
pub fn mac_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand producing `len` bytes (`len <= 255 * 32`).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "hkdf output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        t = block.to_vec();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        counter = counter.wrapping_add(1);
    }
    out
}

/// Convenience: HKDF extract-then-expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let prk = hkdf_extract(&[], &ikm);
        let okm = hkdf_expand(&prk, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn hkdf_multi_block_lengths() {
        let okm = hkdf(b"salt", b"ikm", b"info", 100);
        assert_eq!(okm.len(), 100);
        // Prefix property: shorter output is a prefix of longer output.
        let short = hkdf(b"salt", b"ikm", b"info", 31);
        assert_eq!(&okm[..31], &short[..]);
        assert!(hkdf(b"s", b"i", b"x", 0).is_empty());
    }

    #[test]
    fn mac_eq_behaviour() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(mac_eq(&a, &b));
        b[31] ^= 1;
        assert!(!mac_eq(&a, &b));
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
