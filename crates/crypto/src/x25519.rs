//! X25519 Diffie–Hellman (RFC 7748) over Curve25519.
//!
//! Field arithmetic modulo `p = 2^255 - 19` uses five 51-bit limbs in `u64`
//! with `u128` intermediate products; scalar multiplication uses the
//! Montgomery ladder with a constant-shape conditional swap.

// Limb arithmetic reads better with explicit indices.
#![allow(clippy::needless_range_loop)]

/// The standard base point (u = 9).
pub const X25519_BASEPOINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

const MASK51: u64 = (1 << 51) - 1;

/// Field element in 5 × 51-bit limbs, little-endian limb order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |i: usize| -> u64 {
            let mut v = 0u64;
            for j in (0..8).rev() {
                v = (v << 8) | u64::from(bytes[i + j]);
            }
            v
        };
        // RFC 7748: the top bit of the u-coordinate is masked off.
        let l0 = load(0) & MASK51;
        let l1 = (load(6) >> 3) & MASK51;
        let l2 = (load(12) >> 6) & MASK51;
        let l3 = (load(19) >> 1) & MASK51;
        let l4 = (load(24) >> 12) & MASK51;
        Fe([l0, l1, l2, l3, l4])
    }

    fn to_bytes(self) -> [u8; 32] {
        // Fully reduce mod p first (two weak passes bound every limb by
        // 2^51 - 1, after which the q-trick below finishes the reduction).
        let mut t = self.reduce_weak().reduce_weak();
        // t may still be in [p, 2^255): subtract p once via add 19 trick.
        let mut q = (t.0[0].wrapping_add(19)) >> 51;
        q = (t.0[1].wrapping_add(q)) >> 51;
        q = (t.0[2].wrapping_add(q)) >> 51;
        q = (t.0[3].wrapping_add(q)) >> 51;
        q = (t.0[4].wrapping_add(q)) >> 51;
        t.0[0] = t.0[0].wrapping_add(19u64.wrapping_mul(q));
        let mut carry = t.0[0] >> 51;
        t.0[0] &= MASK51;
        t.0[1] = t.0[1].wrapping_add(carry);
        carry = t.0[1] >> 51;
        t.0[1] &= MASK51;
        t.0[2] = t.0[2].wrapping_add(carry);
        carry = t.0[2] >> 51;
        t.0[2] &= MASK51;
        t.0[3] = t.0[3].wrapping_add(carry);
        carry = t.0[3] >> 51;
        t.0[3] &= MASK51;
        t.0[4] = t.0[4].wrapping_add(carry);
        t.0[4] &= MASK51;

        let mut out = [0u8; 32];
        let limbs = t.0;
        // Pack 5 × 51 bits = 255 bits little-endian.
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for &limb in &limbs {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 && idx < 32 {
                out[idx] = (acc & 0xFF) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        while idx < 32 {
            out[idx] = (acc & 0xFF) as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    /// Carries limbs so each fits in 52 bits (enough headroom for add/sub).
    fn reduce_weak(self) -> Fe {
        let mut l = self.0;
        let c0 = l[0] >> 51;
        l[0] &= MASK51;
        l[1] += c0;
        let c1 = l[1] >> 51;
        l[1] &= MASK51;
        l[2] += c1;
        let c2 = l[2] >> 51;
        l[2] &= MASK51;
        l[3] += c2;
        let c3 = l[3] >> 51;
        l[3] &= MASK51;
        l[4] += c3;
        let c4 = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += c4 * 19;
        Fe(l)
    }

    fn add(self, rhs: Fe) -> Fe {
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + rhs.0[i];
        }
        Fe(out).reduce_weak()
    }

    fn sub(self, rhs: Fe) -> Fe {
        // Add 2p to keep limbs positive before subtracting.
        let two_p0 = 2 * (MASK51 - 18); // 2*(2^51 - 19)
        let two_p_rest = 2 * MASK51; // 2*(2^51 - 1)
        let mut out = [0u64; 5];
        out[0] = self.0[0] + two_p0 - rhs.0[0];
        for i in 1..5 {
            out[i] = self.0[i] + two_p_rest - rhs.0[i];
        }
        Fe(out).reduce_weak()
    }

    fn mul(self, rhs: Fe) -> Fe {
        let a = self.0;
        let b = rhs.0;
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;

        let mut t0 =
            m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let mut t1 =
            m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let mut t2 =
            m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let mut t3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let mut t4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        let mut out = [0u64; 5];
        let mut carry: u128;
        carry = t0 >> 51;
        out[0] = (t0 as u64) & MASK51;
        t1 += carry;
        carry = t1 >> 51;
        out[1] = (t1 as u64) & MASK51;
        t2 += carry;
        carry = t2 >> 51;
        out[2] = (t2 as u64) & MASK51;
        t3 += carry;
        carry = t3 >> 51;
        out[3] = (t3 as u64) & MASK51;
        t4 += carry;
        carry = t4 >> 51;
        out[4] = (t4 as u64) & MASK51;
        t0 = (out[0] as u128) + carry * 19;
        out[0] = (t0 as u64) & MASK51;
        out[1] += (t0 >> 51) as u64;
        Fe(out)
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, k: u64) -> Fe {
        let mut t = [0u128; 5];
        for i in 0..5 {
            t[i] = (self.0[i] as u128) * (k as u128);
        }
        let mut out = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = t[i] + carry;
            out[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        let t0 = (out[0] as u128) + carry * 19;
        out[0] = (t0 as u64) & MASK51;
        out[1] += (t0 >> 51) as u64;
        Fe(out)
    }

    /// Multiplicative inverse via Fermat: `a^(p-2)`.
    fn invert(self) -> Fe {
        // Addition chain from curve25519 reference implementations.
        let z2 = self.square();
        let z8 = z2.square().square();
        let z9 = self.mul(z8);
        let z11 = z2.mul(z9);
        let z22 = z11.square();
        let z_5_0 = z9.mul(z22); // 2^5 - 2^0
        let mut t = z_5_0;
        for _ in 0..5 {
            t = t.square();
        }
        let z_10_0 = t.mul(z_5_0);
        t = z_10_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_20_0 = t.mul(z_10_0);
        t = z_20_0;
        for _ in 0..20 {
            t = t.square();
        }
        let z_40_0 = t.mul(z_20_0);
        t = z_40_0;
        for _ in 0..10 {
            t = t.square();
        }
        let z_50_0 = t.mul(z_10_0);
        t = z_50_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_100_0 = t.mul(z_50_0);
        t = z_100_0;
        for _ in 0..100 {
            t = t.square();
        }
        let z_200_0 = t.mul(z_100_0);
        t = z_200_0;
        for _ in 0..50 {
            t = t.square();
        }
        let z_250_0 = t.mul(z_50_0);
        t = z_250_0;
        for _ in 0..5 {
            t = t.square();
        }
        t.mul(z11) // 2^255 - 21 = p - 2
    }

    /// Conditional swap driven by a bit (constant shape).
    fn cswap(a: &mut Fe, b: &mut Fe, swap: u64) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let x = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= x;
            b.0[i] ^= x;
        }
    }
}

/// Clamps a 32-byte scalar per RFC 7748.
fn clamp(scalar: &[u8; 32]) -> [u8; 32] {
    let mut s = *scalar;
    s[0] &= 248;
    s[31] &= 127;
    s[31] |= 64;
    s
}

/// Computes `scalar * u` on Curve25519 (the X25519 function of RFC 7748).
pub fn x25519(scalar: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp(scalar);
    let x1 = Fe::from_bytes(u);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(&mut x2, &mut x3, swap);
        Fe::cswap(&mut z2, &mut z3, swap);
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }

    Fe::cswap(&mut x2, &mut x3, swap);
    Fe::cswap(&mut z2, &mut z3, swap);
    x2.mul(z2.invert()).to_bytes()
}

/// Derives the public key for a secret scalar.
pub fn x25519_public(scalar: &[u8; 32]) -> [u8; 32] {
    x25519(scalar, &X25519_BASEPOINT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).unwrap();
        }
        out
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        assert_eq!(
            hex(&x25519(&scalar, &u)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_iterated_1_and_1000() {
        let mut k = X25519_BASEPOINT;
        let mut u = X25519_BASEPOINT;
        // 1 iteration.
        let r = x25519(&k, &u);
        u = k;
        k = r;
        assert_eq!(
            hex(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
        // Continue to 1000 iterations.
        for _ in 1..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn diffie_hellman_agreement() {
        let alice_sk = [0x11u8; 32];
        let bob_sk = [0x22u8; 32];
        let alice_pk = x25519_public(&alice_sk);
        let bob_pk = x25519_public(&bob_sk);
        let s1 = x25519(&alice_sk, &bob_pk);
        let s2 = x25519(&bob_sk, &alice_pk);
        assert_eq!(s1, s2);
        assert_ne!(s1, [0u8; 32]);
        // A third party gets a different secret.
        let eve_sk = [0x33u8; 32];
        assert_ne!(x25519(&eve_sk, &bob_pk), s1);
    }

    #[test]
    fn high_bit_of_u_is_ignored() {
        let scalar = [0x55u8; 32];
        let mut u = [0x10u8; 32];
        let a = x25519(&scalar, &u);
        u[31] |= 0x80;
        let b = x25519(&scalar, &u);
        assert_eq!(a, b);
    }

    #[test]
    fn field_roundtrip_via_bytes() {
        let vals = [
            [0u8; 32],
            {
                let mut v = [0u8; 32];
                v[0] = 1;
                v
            },
            unhex32("edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f"),
        ];
        for v in vals {
            let fe = Fe::from_bytes(&v);
            let back = fe.to_bytes();
            // Values >= p reduce; check canonical ones roundtrip.
            let fe2 = Fe::from_bytes(&back);
            assert_eq!(fe2.to_bytes(), back);
        }
    }
}
