//! Cryptographic primitives for the simulated TEE substrate.
//!
//! Everything here is implemented from scratch and validated against the
//! published test vectors:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256;
//! * [`mod@hmac`] — RFC 2104 HMAC-SHA256 and RFC 5869 HKDF;
//! * [`chacha20`] — RFC 8439 ChaCha20 stream cipher;
//! * [`poly1305`] — RFC 8439 Poly1305 one-time authenticator;
//! * [`aead`] — RFC 8439 ChaCha20-Poly1305 AEAD construction;
//! * [`mod@x25519`] — RFC 7748 Curve25519 Diffie–Hellman;
//! * [`attest`] — the *simulated* attestation layer: quotes are MACs keyed
//!   by a manufacturer root held by a [`attest::TrustAnchor`] registry. This
//!   stands in for SGX/TPM attestation infrastructure (see DESIGN.md §2);
//!   it is a simulation device, **not** a hardened PKI.
//!
//! # Scope warning
//!
//! This crate exists so the Edgelet protocols can exercise realistic
//! attestation/secure-channel flows **inside a simulator**. It makes no
//! constant-time or side-channel claims and must not be reused as a
//! general-purpose cryptography library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod attest;
pub mod chacha20;
pub mod hmac;
pub mod poly1305;
pub mod sha256;
pub mod x25519;

pub use aead::ChaCha20Poly1305;
pub use attest::{AttestationQuote, TrustAnchor};
pub use hmac::{hkdf_expand, hkdf_extract, hmac_sha256};
pub use sha256::{sha256, Sha256};
pub use x25519::{x25519, X25519_BASEPOINT};
