//! Scenario presets matching the paper's motivating use cases (§1).

use crate::config::{DeviceMix, NetworkProfile, PlatformConfig};
use edgelet_exec::ExecConfig;
use edgelet_sim::{Availability, Duration};
use edgelet_tee::DeviceClass;

/// Named crowd scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// "Data altruism": a health survey over DomYcile-style home boxes
    /// visited opportunistically by caregivers — long delays, long
    /// disconnections, small devices.
    DataAltruism,
    /// "Opportunistic polling": a large venue full of TrustZone
    /// smartphones — short-lived connectivity, churny, but low latency.
    OpportunisticPolling,
    /// A laboratory baseline: reliable network, homogeneous PCs.
    Laboratory,
}

impl Scenario {
    /// Builds the platform configuration for the scenario.
    pub fn config(self, seed: u64) -> PlatformConfig {
        match self {
            Scenario::DataAltruism => PlatformConfig {
                seed,
                contributors: 4_000,
                rows_per_contributor: 1,
                processors: 120,
                device_mix: DeviceMix {
                    sgx_pc: 0.2,
                    trustzone_phone: 0.0,
                    tpm_home_box: 0.8,
                },
                network: NetworkProfile::Opportunistic {
                    median_delay_secs: 600,
                    drop_probability: 0.05,
                },
                processor_availability: Availability::Intermittent {
                    mean_up: Duration::from_secs(4 * 3_600),
                    mean_down: Duration::from_secs(3_600),
                    start_up: true,
                },
                contributor_availability: Availability::Intermittent {
                    mean_up: Duration::from_secs(2 * 3_600),
                    mean_down: Duration::from_secs(2 * 3_600),
                    start_up: true,
                },
                processor_crash_probability: 0.05,
                contributor_crash_probability: 0.02,
                crash_at_start: false,
                exec: ExecConfig::opportunistic(),
                fault_plan: None,
                trace_capacity: 0,
                shards: 1,
            },
            Scenario::OpportunisticPolling => PlatformConfig {
                seed,
                contributors: 4_000,
                rows_per_contributor: 1,
                processors: 150,
                device_mix: DeviceMix {
                    sgx_pc: 0.1,
                    trustzone_phone: 0.9,
                    tpm_home_box: 0.0,
                },
                network: NetworkProfile::Lossy {
                    drop_probability: 0.08,
                },
                processor_availability: Availability::Intermittent {
                    mean_up: Duration::from_secs(600),
                    mean_down: Duration::from_secs(120),
                    start_up: true,
                },
                contributor_availability: Availability::Intermittent {
                    mean_up: Duration::from_secs(600),
                    mean_down: Duration::from_secs(120),
                    start_up: true,
                },
                processor_crash_probability: 0.1,
                contributor_crash_probability: 0.05,
                crash_at_start: false,
                exec: ExecConfig::default(),
                fault_plan: None,
                trace_capacity: 0,
                shards: 1,
            },
            Scenario::Laboratory => PlatformConfig {
                seed,
                contributors: 600,
                processors: 80,
                device_mix: DeviceMix::only(DeviceClass::SgxPc),
                network: NetworkProfile::Reliable,
                ..PlatformConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_differ_meaningfully() {
        let altruism = Scenario::DataAltruism.config(1);
        let polling = Scenario::OpportunisticPolling.config(1);
        let lab = Scenario::Laboratory.config(1);
        assert!(altruism.device_mix.tpm_home_box > 0.5);
        assert!(polling.device_mix.trustzone_phone > 0.5);
        assert_eq!(lab.processor_crash_probability, 0.0);
        assert!(matches!(
            altruism.network,
            NetworkProfile::Opportunistic { .. }
        ));
        assert!(matches!(polling.network, NetworkProfile::Lossy { .. }));
        assert_eq!(altruism.contributors, 4_000);
    }
}
