//! Platform configuration: crowd composition, network, fault model.

use edgelet_exec::ExecConfig;
use edgelet_sim::{Availability, Duration, NetworkModel};
use edgelet_tee::DeviceClass;

/// Network environment presets.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkProfile {
    /// Fixed low latency, no loss (validity baselines).
    Reliable,
    /// Uniform 20–120 ms latency, no loss (well-connected internet).
    Internet,
    /// Internet latency plus independent message loss.
    Lossy {
        /// Per-message drop probability.
        drop_probability: f64,
    },
    /// Opportunistic store-and-forward: heavy-tailed delays around the
    /// given median, plus loss.
    Opportunistic {
        /// Median one-way delay, seconds.
        median_delay_secs: u64,
        /// Per-message drop probability.
        drop_probability: f64,
    },
}

impl NetworkProfile {
    /// Materializes the simulator's network model.
    pub fn to_model(&self) -> NetworkModel {
        match *self {
            NetworkProfile::Reliable => NetworkModel::reliable(Duration::from_millis(10)),
            NetworkProfile::Internet => NetworkModel::default(),
            NetworkProfile::Lossy { drop_probability } => NetworkModel::lossy(
                Duration::from_millis(20),
                Duration::from_millis(120),
                drop_probability,
            ),
            NetworkProfile::Opportunistic {
                median_delay_secs,
                drop_probability,
            } => NetworkModel::opportunistic(
                Duration::from_secs(median_delay_secs),
                drop_probability,
            ),
        }
    }
}

/// Hardware mix of the processor crowd (fractions normalize themselves).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMix {
    /// Weight of SGX PCs.
    pub sgx_pc: f64,
    /// Weight of TrustZone phones.
    pub trustzone_phone: f64,
    /// Weight of TPM home boxes.
    pub tpm_home_box: f64,
}

impl Default for DeviceMix {
    fn default() -> Self {
        // The demo platform's population: mostly phones, some PCs, the
        // DomYcile boxes.
        Self {
            sgx_pc: 0.2,
            trustzone_phone: 0.5,
            tpm_home_box: 0.3,
        }
    }
}

impl DeviceMix {
    /// A homogeneous mix.
    pub fn only(class: DeviceClass) -> Self {
        Self {
            sgx_pc: f64::from(u8::from(class == DeviceClass::SgxPc)),
            trustzone_phone: f64::from(u8::from(class == DeviceClass::TrustZonePhone)),
            tpm_home_box: f64::from(u8::from(class == DeviceClass::TpmHomeBox)),
        }
    }

    /// Picks a class for the `i`-th processor (deterministic round-robin
    /// proportional to the weights).
    pub fn class_for(&self, i: usize) -> DeviceClass {
        let total = self.sgx_pc + self.trustzone_phone + self.tpm_home_box;
        if total <= 0.0 {
            return DeviceClass::SgxPc;
        }
        // Stratified assignment with a 10-device cycle: proportions hold
        // in every window of ten processors.
        let pos = ((i % 10) as f64 + 0.5) / 10.0 * total;
        if pos < self.sgx_pc {
            DeviceClass::SgxPc
        } else if pos < self.sgx_pc + self.trustzone_phone {
            DeviceClass::TrustZonePhone
        } else {
            DeviceClass::TpmHomeBox
        }
    }
}

/// Full platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Root seed: every random choice in the world derives from it.
    pub seed: u64,
    /// Number of Data Contributor devices.
    pub contributors: usize,
    /// Records per contributor store (1 = one personal record).
    pub rows_per_contributor: usize,
    /// Number of volunteer Data Processor devices.
    pub processors: usize,
    /// Hardware mix of the processors.
    pub device_mix: DeviceMix,
    /// Network environment.
    pub network: NetworkProfile,
    /// Availability model for processor devices.
    pub processor_availability: Availability,
    /// Availability model for contributor devices.
    pub contributor_availability: Availability,
    /// Probability that a processor crash-stops during the query window
    /// (the fault presumption rate the resiliency planner must absorb).
    pub processor_crash_probability: f64,
    /// Probability that a contributor crash-stops during the window.
    pub contributor_crash_probability: f64,
    /// When true, crash-fated devices fail at query launch instead of at
    /// a uniform instant within the deadline window. Launch-time crashes
    /// are the harshest realization of the fault presumption (a fast
    /// query on a reliable network can otherwise outrun its failures);
    /// the resiliency experiments use this mode.
    pub crash_at_start: bool,
    /// Execution knobs.
    pub exec: ExecConfig,
    /// Protocol-aware fault plan injected into every query run (see
    /// [`edgelet_sim::FaultPlan`]). When set, the platform also installs
    /// the exec message classifier so kind-targeted rules can fire and
    /// the trace records per-message protocol kinds. `Some(empty plan)`
    /// enables classification without injecting anything.
    pub fault_plan: Option<edgelet_sim::FaultPlan>,
    /// Simulator trace ring-buffer capacity for query runs (0 = tracing
    /// off, the default: untraced runs skip event construction
    /// entirely). When non-zero, [`crate::platform::RunResult`] carries
    /// the trace digest of the execution.
    pub trace_capacity: usize,
    /// Simulator shard count (see [`edgelet_sim::SimConfig::shards`]).
    /// Results are bit-identical for every value; > 1 runs event windows
    /// on worker threads.
    pub shards: usize,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            seed: 0xED6E1E7,
            contributors: 500,
            rows_per_contributor: 1,
            processors: 60,
            device_mix: DeviceMix::only(DeviceClass::SgxPc),
            network: NetworkProfile::Reliable,
            processor_availability: Availability::AlwaysUp,
            contributor_availability: Availability::AlwaysUp,
            processor_crash_probability: 0.0,
            contributor_crash_probability: 0.0,
            crash_at_start: false,
            exec: ExecConfig::fast(),
            fault_plan: None,
            trace_capacity: 0,
            shards: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_sim::network::LatencyModel;

    #[test]
    fn network_profiles_materialize() {
        assert_eq!(NetworkProfile::Reliable.to_model().drop_probability, 0.0);
        let lossy = NetworkProfile::Lossy {
            drop_probability: 0.3,
        }
        .to_model();
        assert_eq!(lossy.drop_probability, 0.3);
        let opp = NetworkProfile::Opportunistic {
            median_delay_secs: 120,
            drop_probability: 0.1,
        }
        .to_model();
        assert!(matches!(opp.latency, LatencyModel::LogNormal { .. }));
    }

    #[test]
    fn device_mix_proportions() {
        let mix = DeviceMix::default();
        let classes: Vec<DeviceClass> = (0..100).map(|i| mix.class_for(i)).collect();
        let pcs = classes.iter().filter(|c| **c == DeviceClass::SgxPc).count();
        let phones = classes
            .iter()
            .filter(|c| **c == DeviceClass::TrustZonePhone)
            .count();
        let boxes = classes
            .iter()
            .filter(|c| **c == DeviceClass::TpmHomeBox)
            .count();
        assert_eq!(pcs + phones + boxes, 100);
        assert!((15..=25).contains(&pcs), "pcs {pcs}");
        assert!((45..=55).contains(&phones), "phones {phones}");
        assert!((25..=35).contains(&boxes), "boxes {boxes}");
    }

    #[test]
    fn homogeneous_mix() {
        let mix = DeviceMix::only(DeviceClass::TpmHomeBox);
        assert!((0..50).all(|i| mix.class_for(i) == DeviceClass::TpmHomeBox));
        let zero = DeviceMix {
            sgx_pc: 0.0,
            trustzone_phone: 0.0,
            tpm_home_box: 0.0,
        };
        assert_eq!(zero.class_for(3), DeviceClass::SgxPc);
    }
}
