//! The Edgelet platform: a simulated crowd ready to run queries.

use crate::config::PlatformConfig;
use edgelet_exec::centralized;
use edgelet_exec::driver::{execute_plan, ExecutionReport};
use edgelet_ml::grouping::{GroupingQuery, ResultTable};
use edgelet_ml::AggSpec;
use edgelet_privacy::{analyze_plan, PlanExposure};
use edgelet_query::plan::build_plan;
use edgelet_query::render;
use edgelet_query::{PrivacyConfig, QueryKind, QueryPlan, QuerySpec, ResilienceConfig};
use edgelet_sim::{CrashPlan, DeviceConfig, Duration, SimConfig, Simulation};
use edgelet_store::synth;
use edgelet_store::{DataStore, Predicate, Row, Schema};
use edgelet_tee::{DeviceClass, Directory};
use edgelet_util::ids::{DeviceId, QueryId};
use edgelet_util::rng::DetRng;
use edgelet_util::Result;
use std::collections::BTreeMap;

/// Everything one query execution produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The plan that executed.
    pub plan: QueryPlan,
    /// The execution report (completion, validity, costs, liability).
    pub report: ExecutionReport,
    /// Static exposure analysis of the plan.
    pub exposure: PlanExposure,
    /// Digest of the simulator event trace, when the platform ran with
    /// `trace_capacity > 0` (see [`crate::PlatformConfig`]). Equal seeds
    /// and configs produce equal digests — the reproducibility receipt.
    pub trace_digest: Option<u64>,
    /// The retained trace records themselves (empty when tracing is
    /// off). Post-run oracles replay these to machine-check protocol
    /// invariants: no post-crash sends, single active replica, and so
    /// on — see `edgelet-chaos`.
    pub trace: Vec<edgelet_sim::TraceRecord>,
}

/// A simulated crowd of TEE-enabled personal devices.
pub struct Platform {
    config: PlatformConfig,
    schema: Schema,
    directory: Directory,
    stores: BTreeMap<DeviceId, DataStore>,
    device_classes: BTreeMap<DeviceId, DeviceClass>,
    querier: DeviceId,
    next_query: u64,
    rng: DetRng,
}

impl Platform {
    /// Builds the crowd: contributors (with synthetic health stores),
    /// volunteer processors, and one querier device.
    ///
    /// Device ids are assigned in enrollment order: contributors first,
    /// then processors, then the querier.
    pub fn build(config: PlatformConfig) -> Platform {
        let root = DetRng::new(config.seed);
        let mut enroll_rng = root.fork("enroll");
        let mut directory = Directory::new();
        let mut stores = BTreeMap::new();
        let mut device_classes = BTreeMap::new();
        let schema = synth::health_schema();

        let mut next_id = 0u64;
        for _ in 0..config.contributors {
            let dev = DeviceId::new(next_id);
            next_id += 1;
            directory.enroll(dev, DeviceClass::TpmHomeBox, true, false, &mut enroll_rng);
            device_classes.insert(dev, DeviceClass::TpmHomeBox);
            let mut store_rng = root.fork_indexed("store", dev.raw());
            stores.insert(
                dev,
                synth::health_store(config.rows_per_contributor, &mut store_rng),
            );
        }
        for i in 0..config.processors {
            let dev = DeviceId::new(next_id);
            next_id += 1;
            let class = config.device_mix.class_for(i);
            directory.enroll(dev, class, false, true, &mut enroll_rng);
            device_classes.insert(dev, class);
        }
        let querier = DeviceId::new(next_id);
        device_classes.insert(querier, DeviceClass::SgxPc);

        Platform {
            config,
            schema,
            directory,
            stores,
            device_classes,
            querier,
            next_query: 1,
            rng: root.fork("platform"),
        }
    }

    /// The configuration the platform was built from.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// The shared database schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The device directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The querier's device id.
    pub fn querier(&self) -> DeviceId {
        self.querier
    }

    /// Read access to a contributor's store.
    pub fn store(&self, device: DeviceId) -> Option<&DataStore> {
        self.stores.get(&device)
    }

    /// All contributor data stores, keyed by device.
    pub fn stores(&self) -> &BTreeMap<DeviceId, DataStore> {
        &self.stores
    }

    /// Hardware class of every enrolled device (querier included).
    pub fn device_classes(&self) -> &BTreeMap<DeviceId, DeviceClass> {
        &self.device_classes
    }

    /// The engine seed [`Platform::run_query`] seeds the simulated world
    /// with for `spec`. Exposed so alternative hosts (the live runtime)
    /// can derive the identical per-device randomness and stay
    /// bit-equivalent with the simulator.
    pub fn sim_seed(&self, spec: &QuerySpec) -> u64 {
        DetRng::new(self.config.seed)
            .fork_indexed("sim", spec.id.raw())
            .next_u64()
    }

    /// The per-query root sealing secret — the same derivation
    /// [`Platform::run_query`] uses, so an alternative host produces
    /// byte-identical sealed frames.
    pub fn root_secret(&self, spec: &QuerySpec) -> [u8; 32] {
        let mut root_secret = [0u8; 32];
        let mut secret_rng = self.rng.fork_indexed("root-secret", spec.id.raw());
        for chunk in root_secret.chunks_mut(8) {
            chunk.copy_from_slice(&secret_rng.next_u64().to_le_bytes());
        }
        root_secret
    }

    /// Convenience: builds a Grouping-Sets query spec with a fresh id and
    /// a deadline derived from the exec profile.
    pub fn grouping_query(
        &mut self,
        filter: Predicate,
        snapshot_cardinality: usize,
        sets: &[&[&str]],
        aggregates: Vec<AggSpec>,
    ) -> QuerySpec {
        let id = QueryId::new(self.next_query);
        self.next_query += 1;
        QuerySpec {
            id,
            filter,
            snapshot_cardinality,
            kind: QueryKind::GroupingSets(GroupingQuery::new(sets, aggregates)),
            deadline_secs: self.default_deadline_secs(),
        }
    }

    /// Convenience: builds a K-Means query spec.
    pub fn kmeans_query(
        &mut self,
        filter: Predicate,
        snapshot_cardinality: usize,
        k: usize,
        features: &[&str],
        heartbeats: usize,
        per_cluster_aggregates: Vec<AggSpec>,
    ) -> QuerySpec {
        let id = QueryId::new(self.next_query);
        self.next_query += 1;
        QuerySpec {
            id,
            filter,
            snapshot_cardinality,
            kind: QueryKind::KMeans {
                k,
                features: features.iter().map(|s| s.to_string()).collect(),
                heartbeats,
                per_cluster_aggregates,
            },
            deadline_secs: self.default_deadline_secs(),
        }
    }

    fn default_deadline_secs(&self) -> f64 {
        // Collection + combination windows plus slack for compute and
        // heartbeats.
        (self.config.exec.collection_timeout.as_secs_f64()
            + self.config.exec.combine_timeout.as_secs_f64())
            * 1.5
    }

    /// Plans a query without executing it (Part 1 of the demo scenario:
    /// inspect how privacy/resiliency knobs reshape the QEP).
    pub fn plan_query(
        &self,
        spec: &QuerySpec,
        privacy: &PrivacyConfig,
        resilience: &ResilienceConfig,
    ) -> Result<QueryPlan> {
        let mut plan_rng = DetRng::new(self.config.seed).fork_indexed("plan", spec.id.raw());
        build_plan(
            spec,
            &self.schema,
            privacy,
            resilience,
            &self.directory,
            self.querier,
            &mut plan_rng,
        )
    }

    /// Renders a plan the way the demo GUI displays it.
    pub fn render_plan(&self, plan: &QueryPlan) -> String {
        render::render_ascii(plan)
    }

    /// Renders a plan as Graphviz DOT.
    pub fn render_plan_dot(&self, plan: &QueryPlan) -> String {
        render::render_dot(plan)
    }

    /// Plans and executes a query on a fresh simulation of the crowd
    /// (Part 2 of the demo scenario). Each call builds an identical world
    /// from the platform seed, so repeated runs are comparable; the query
    /// id salts the failure draw so different queries see different fates.
    pub fn run_query(
        &mut self,
        spec: &QuerySpec,
        privacy: &PrivacyConfig,
        resilience: &ResilienceConfig,
    ) -> Result<RunResult> {
        let plan = self.plan_query(spec, privacy, resilience)?;
        let exposure = analyze_plan(&plan);
        let mut sim = self.build_simulation(spec);
        let root_secret = self.root_secret(spec);
        let report = execute_plan(
            &plan,
            &self.schema,
            &self.stores,
            &self.device_classes,
            &mut sim,
            &self.config.exec,
            root_secret,
        )?;
        let trace_digest = sim.trace().enabled().then(|| sim.trace().digest());
        let trace = sim.trace().records().cloned().collect();
        Ok(RunResult {
            plan,
            report,
            exposure,
            trace_digest,
            trace,
        })
    }

    /// Builds the simulated world for one query: every enrolled device
    /// plus the querier, with the configured churn and crash draws.
    fn build_simulation(&self, spec: &QuerySpec) -> Simulation {
        let sim_seed = self.sim_seed(spec);
        let mut sim = Simulation::new(
            SimConfig {
                network: self.config.network.to_model(),
                trace_capacity: self.config.trace_capacity,
                shards: self.config.shards.max(1),
                ..SimConfig::default()
            },
            sim_seed,
        );
        let window = if self.config.crash_at_start {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(spec.deadline_secs)
        };
        for entry in self.directory.entries() {
            let (availability, crash_p) = if entry.contributes_data {
                (
                    self.config.contributor_availability.clone(),
                    self.config.contributor_crash_probability,
                )
            } else {
                (
                    self.config.processor_availability.clone(),
                    self.config.processor_crash_probability,
                )
            };
            let dev = sim.add_device(DeviceConfig {
                availability,
                crash: CrashPlan::Bernoulli { p: crash_p, window },
            });
            debug_assert_eq!(dev, entry.device, "device ids must match enrollment");
        }
        let q = sim.add_device(DeviceConfig::default());
        debug_assert_eq!(q, self.querier);
        if let Some(plan) = &self.config.fault_plan {
            // Protocol-position targeting needs the exec classifier;
            // organic (fault-plan-less) runs skip both, keeping their
            // traces and digests unchanged.
            sim.set_classifier(Box::new(edgelet_exec::messages::classify_payload));
            sim.set_fault_plan(plan.clone());
        }
        sim
    }

    /// Centralized reference over *all* matching rows, for validity and
    /// accuracy comparisons (the demo's verification step).
    pub fn centralized_grouping(&self, spec: &QuerySpec) -> Result<ResultTable> {
        let QueryKind::GroupingSets(q) = &spec.kind else {
            return Err(edgelet_util::Error::InvalidQuery(
                "not a grouping query".into(),
            ));
        };
        let columns = spec.kind.referenced_columns();
        let rows = centralized::eligible_rows(&self.stores, &spec.filter, &columns)?;
        centralized::run_grouping(&self.schema, &columns, &rows, q)
    }

    /// Centralized K-Means reference over all matching rows.
    pub fn centralized_kmeans(&self, spec: &QuerySpec) -> Result<centralized::CentralKMeans> {
        let QueryKind::KMeans {
            k,
            features,
            per_cluster_aggregates,
            ..
        } = &spec.kind
        else {
            return Err(edgelet_util::Error::InvalidQuery(
                "not a k-means query".into(),
            ));
        };
        let columns = spec.kind.referenced_columns();
        let rows = centralized::eligible_rows(&self.stores, &spec.filter, &columns)?;
        let mut rng = DetRng::new(self.config.seed).fork("central-kmeans");
        centralized::run_kmeans(
            &self.schema,
            &columns,
            &rows,
            *k,
            features,
            per_cluster_aggregates,
            &mut rng,
        )
    }

    /// All rows matching a filter across the crowd (for test assertions).
    pub fn matching_rows(&self, filter: &Predicate, columns: &[String]) -> Result<Vec<Row>> {
        centralized::eligible_rows(&self.stores, filter, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkProfile;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_query::Strategy;
    use edgelet_store::{CmpOp, Value};

    fn platform(seed: u64) -> Platform {
        Platform::build(PlatformConfig {
            seed,
            contributors: 800,
            processors: 60,
            network: NetworkProfile::Reliable,
            ..PlatformConfig::default()
        })
    }

    #[test]
    fn build_enrolls_everyone() {
        let p = platform(1);
        assert_eq!(p.directory().len(), 860);
        assert_eq!(p.directory().contributors().len(), 800);
        assert_eq!(p.directory().processors().len(), 60);
        assert_eq!(p.querier(), DeviceId::new(860));
        assert!(p.store(DeviceId::new(0)).is_some());
        assert!(p.store(DeviceId::new(800)).is_none());
    }

    #[test]
    fn grouping_run_end_to_end_is_valid_and_matches_central_totals() {
        let mut p = platform(2);
        let spec = p.grouping_query(
            Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            200,
            &[&["sex"], &[]],
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
        );
        let run = p
            .run_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(50),
                &ResilienceConfig {
                    strategy: Strategy::Overcollection,
                    failure_probability: 0.05,
                    ..ResilienceConfig::default()
                },
            )
            .unwrap();
        assert!(run.report.completed);
        assert!(run.report.valid);
        assert_eq!(run.plan.n, 4);
        assert!(run.plan.m >= 1);
        // Exposure respects the horizontal cap.
        assert!(run.exposure.max_raw_tuples() <= 50);
        let Some(edgelet_exec::QueryOutcome::Grouping(table)) = &run.report.outcome else {
            panic!("grouping outcome expected");
        };
        let total = table.rows.iter().find(|r| r.set_index == 1).unwrap();
        assert_eq!(total.aggregates[0], Value::Int(200));
    }

    #[test]
    fn runs_are_reproducible() {
        let run = |seed| {
            let mut p = platform(seed);
            // Reference a data column so different crowds produce
            // different bytes and results.
            let spec = p.grouping_query(
                Predicate::True,
                100,
                &[&[]],
                vec![AggSpec::over(AggKind::Avg, "bmi")],
            );
            let r = p
                .run_query(
                    &spec,
                    &PrivacyConfig::none().with_max_tuples(25),
                    &ResilienceConfig::default(),
                )
                .unwrap();
            let avg_bmi = match &r.report.outcome {
                Some(edgelet_exec::QueryOutcome::Grouping(t)) => {
                    t.rows[0].aggregates[0].as_f64().unwrap()
                }
                _ => panic!("expected grouping outcome"),
            };
            (
                r.report.messages_sent,
                r.report.bytes_sent,
                avg_bmi.to_bits(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn plan_without_run_renders() {
        let mut p = platform(3);
        let spec = p.grouping_query(
            Predicate::True,
            100,
            &[&["gir"]],
            vec![AggSpec::count_star()],
        );
        let plan = p
            .plan_query(
                &spec,
                &PrivacyConfig::none().with_max_tuples(50),
                &ResilienceConfig::default(),
            )
            .unwrap();
        let ascii = p.render_plan(&plan);
        assert!(ascii.contains("QEP"));
        let dot = p.render_plan_dot(&plan);
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn centralized_references_work() {
        let mut p = platform(4);
        let g = p.grouping_query(
            Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            100,
            &[&[]],
            vec![AggSpec::count_star()],
        );
        let table = p.centralized_grouping(&g).unwrap();
        let count = table.rows[0].aggregates[0].as_i64().unwrap();
        let matching = p
            .matching_rows(
                &Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
                &["age".to_string()],
            )
            .unwrap()
            .len();
        assert_eq!(count as usize, matching);

        let km = p.kmeans_query(Predicate::True, 100, 3, &["age", "bmi"], 3, vec![]);
        let central = p.centralized_kmeans(&km).unwrap();
        assert_eq!(central.model.centroids.len(), 3);
        // Wrong-kind errors.
        assert!(p.centralized_kmeans(&g).is_err());
        assert!(p.centralized_grouping(&km).is_err());
    }
}
