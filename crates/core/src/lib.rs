//! Edgelet computing: resilient, privacy-preserving query processing on
//! personal devices.
//!
//! This crate is the public facade of the reproduction of *"Pushing Edge
//! Computing one Step Further: Resilient and Privacy-Preserving Processing
//! on Personal Devices"* (EDBT 2023). It assembles the substrates —
//! simulated TEE devices, an uncertain network, per-device personal data
//! stores — into a [`Platform`] on which Edgelet queries execute:
//!
//! ```
//! use edgelet_core::prelude::*;
//!
//! // A crowd: 600 contributors with one health record each, 80 volunteer
//! // processors, lossy network, 10% fault presumption.
//! let config = PlatformConfig {
//!     contributors: 600,
//!     processors: 80,
//!     network: NetworkProfile::Lossy { drop_probability: 0.05 },
//!     ..PlatformConfig::default()
//! };
//! let mut platform = Platform::build(config);
//!
//! // "How many people over 65, by sex?" over a snapshot of 200.
//! let spec = platform.grouping_query(
//!     Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
//!     200,
//!     &[&["sex"], &[]],
//!     vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
//! );
//! let run = platform
//!     .run_query(
//!         &spec,
//!         &PrivacyConfig::none().with_max_tuples(50),
//!         &ResilienceConfig::default(),
//!     )
//!     .unwrap();
//! assert!(run.report.completed);
//! ```
//!
//! The per-subsystem crates remain available under their own names and are
//! re-exported here for convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod platform;
pub mod scenario;

pub use config::{DeviceMix, NetworkProfile, PlatformConfig};
pub use platform::{Platform, RunResult};
pub use scenario::Scenario;

pub use edgelet_crypto as crypto;
pub use edgelet_exec as exec;
pub use edgelet_ml as ml;
pub use edgelet_privacy as privacy;
pub use edgelet_query as query;
pub use edgelet_sim as sim;
pub use edgelet_store as store;
pub use edgelet_tee as tee;
pub use edgelet_util as util;
pub use edgelet_wire as wire;

/// Convenience imports for applications.
pub mod prelude {
    pub use crate::config::{DeviceMix, NetworkProfile, PlatformConfig};
    pub use crate::platform::{Platform, RunResult};
    pub use crate::scenario::Scenario;
    pub use edgelet_exec::{ExecConfig, ExecutionReport, QueryOutcome};
    pub use edgelet_ml::{AggKind, AggSpec};
    pub use edgelet_query::{PrivacyConfig, QueryKind, QuerySpec, ResilienceConfig, Strategy};
    pub use edgelet_store::{CmpOp, Predicate, Value};
    pub use edgelet_tee::DeviceClass;
    pub use edgelet_util::ids::{DeviceId, QueryId};
}
