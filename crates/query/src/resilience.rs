//! Resiliency planning: choosing the Overcollection degree `m` and the
//! Backup degree `b`.
//!
//! **Overcollection.** With `n + m` partitions and i.i.d. failure
//! probability `p` per partition pipeline, the query remains valid when at
//! least `n` partitions survive:
//! `P[valid] = P[Binomial(n+m, 1-p) >= n]`. The planner returns the
//! smallest `m` achieving the target validity.
//!
//! **Backup.** Each of the `ops` Data Processors is replicated `b` times;
//! an operator survives when at least one of its `1 + b` replicas does,
//! so `P[valid] = (1 - p^(1+b))^ops`. The planner returns the smallest `b`.

use edgelet_util::binom::{overcollection_validity, overcollection_validity_normal_approx};
use edgelet_util::{Error, Result};

/// Smallest `m` such that `P[>= n of n+m partitions survive] >= target`.
pub fn plan_overcollection(n: u64, p: f64, target: f64, max_m: u64) -> Result<u64> {
    validate_inputs(n, p, target)?;
    if p == 0.0 {
        return Ok(0);
    }
    for m in 0..=max_m {
        if overcollection_validity(n, m, p) >= target {
            return Ok(m);
        }
    }
    Err(Error::Unsatisfiable(format!(
        "no m <= {max_m} reaches validity {target} with n={n}, p={p}"
    )))
}

/// Variant using the normal approximation of the binomial tail — O(1) per
/// candidate instead of O(n+m); the ablation bench compares both.
pub fn plan_overcollection_approx(n: u64, p: f64, target: f64, max_m: u64) -> Result<u64> {
    validate_inputs(n, p, target)?;
    if p == 0.0 {
        return Ok(0);
    }
    for m in 0..=max_m {
        if overcollection_validity_normal_approx(n, m, p) >= target {
            return Ok(m);
        }
    }
    Err(Error::Unsatisfiable(format!(
        "no m <= {max_m} reaches validity {target} with n={n}, p={p} (approx)"
    )))
}

/// Smallest backup degree `b` such that every one of `ops` operators keeps
/// at least one live replica with overall probability `target`.
pub fn plan_backup_degree(ops: u64, p: f64, target: f64, max_b: u64) -> Result<u64> {
    validate_inputs(ops.max(1), p, target)?;
    if p == 0.0 || ops == 0 {
        return Ok(0);
    }
    for b in 0..=max_b {
        let per_op = 1.0 - p.powi((b + 1) as i32);
        let overall = per_op.powi(ops as i32);
        if overall >= target {
            return Ok(b);
        }
    }
    Err(Error::Unsatisfiable(format!(
        "no b <= {max_b} reaches validity {target} with {ops} operators, p={p}"
    )))
}

fn validate_inputs(n: u64, p: f64, target: f64) -> Result<()> {
    if n == 0 {
        return Err(Error::InvalidConfig("n must be positive".into()));
    }
    if !(0.0..1.0).contains(&p) {
        return Err(Error::InvalidConfig(format!(
            "failure probability {p} outside [0, 1)"
        )));
    }
    if !(0.0..1.0).contains(&target) {
        return Err(Error::InvalidConfig(format!(
            "target validity {target} outside [0, 1)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_failure_needs_no_overcollection() {
        assert_eq!(plan_overcollection(10, 0.0, 0.999, 100).unwrap(), 0);
        assert_eq!(plan_backup_degree(10, 0.0, 0.999, 10).unwrap(), 0);
    }

    #[test]
    fn m_is_minimal() {
        let n = 10;
        let p = 0.2;
        let target = 0.999;
        let m = plan_overcollection(n, p, target, 100).unwrap();
        assert!(overcollection_validity(n, m, p) >= target);
        if m > 0 {
            assert!(overcollection_validity(n, m - 1, p) < target);
        }
    }

    #[test]
    fn m_grows_with_p_and_target() {
        let m_low_p = plan_overcollection(10, 0.05, 0.999, 100).unwrap();
        let m_high_p = plan_overcollection(10, 0.3, 0.999, 100).unwrap();
        assert!(m_high_p > m_low_p);
        let m_low_t = plan_overcollection(10, 0.2, 0.9, 100).unwrap();
        let m_high_t = plan_overcollection(10, 0.2, 0.99999, 100).unwrap();
        assert!(m_high_t > m_low_t);
    }

    #[test]
    fn relative_overcollection_shrinks_with_n() {
        // Law of large numbers: m/n decreases as n grows at fixed p, target.
        let m10 = plan_overcollection(10, 0.1, 0.999, 1000).unwrap() as f64 / 10.0;
        let m1000 = plan_overcollection(1000, 0.1, 0.999, 1000).unwrap() as f64 / 1000.0;
        assert!(m1000 < m10, "m/n at n=10: {m10}, at n=1000: {m1000}");
    }

    #[test]
    fn unsatisfiable_when_capped() {
        assert!(plan_overcollection(10, 0.5, 0.999999, 2).is_err());
        assert!(plan_backup_degree(10, 0.9, 0.99999, 1).is_err());
    }

    #[test]
    fn invalid_inputs() {
        assert!(plan_overcollection(0, 0.1, 0.9, 10).is_err());
        assert!(plan_overcollection(5, 1.0, 0.9, 10).is_err());
        assert!(plan_overcollection(5, -0.1, 0.9, 10).is_err());
        assert!(plan_overcollection(5, 0.1, 1.0, 10).is_err());
        assert!(plan_backup_degree(5, 1.5, 0.9, 10).is_err());
    }

    #[test]
    fn backup_degree_is_minimal_and_monotone() {
        let b = plan_backup_degree(20, 0.2, 0.999, 50).unwrap();
        let per_op = |b: u64| (1.0 - 0.2f64.powi((b + 1) as i32)).powi(20);
        assert!(per_op(b) >= 0.999);
        if b > 0 {
            assert!(per_op(b - 1) < 0.999);
        }
        // More operators need at least as many backups.
        let b_more = plan_backup_degree(200, 0.2, 0.999, 50).unwrap();
        assert!(b_more >= b);
    }

    #[test]
    fn approx_matches_exact_at_scale() {
        for &(n, p) in &[(50u64, 0.1), (200, 0.15), (500, 0.05)] {
            let exact = plan_overcollection(n, p, 0.999, 2000).unwrap();
            let approx = plan_overcollection_approx(n, p, 0.999, 2000).unwrap();
            let diff = exact.abs_diff(approx);
            assert!(diff <= 2, "n={n} p={p}: exact {exact}, approx {approx}");
        }
    }

    proptest! {
        #[test]
        fn prop_planned_m_meets_target(
            n in 1u64..200,
            p in 0.0f64..0.6,
            target in 0.5f64..0.9999,
        ) {
            if let Ok(m) = plan_overcollection(n, p, target, 4096) {
                prop_assert!(overcollection_validity(n, m, p) >= target);
            }
        }
    }
}
