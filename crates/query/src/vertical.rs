//! Vertical partitioning: separating quasi-identifier attribute pairs.
//!
//! Attributes referenced by a query form the vertices of a *conflict
//! graph*; each separated pair is an edge. A valid vertical partitioning
//! is a proper coloring: no edge inside one group. Each color class
//! becomes one Computer slice in the QEP, so fewer colors = fewer extra
//! operators. Greedy coloring in degree order stays within Δ+1 groups,
//! ample for the handful of attributes real queries carry.

use edgelet_util::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Splits `attributes` into groups such that no `separated` pair shares a
/// group. Attribute names in `separated` that the query does not reference
/// are ignored. Group order (and content order) is deterministic.
pub fn partition_attributes(
    attributes: &[String],
    separated: &[(String, String)],
) -> Result<Vec<Vec<String>>> {
    let attr_set: BTreeSet<&str> = attributes.iter().map(|s| s.as_str()).collect();
    if attr_set.len() != attributes.len() {
        return Err(Error::InvalidConfig("duplicate attribute names".into()));
    }
    // Build adjacency among referenced attributes only.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for a in &attr_set {
        adj.insert(a, BTreeSet::new());
    }
    for (a, b) in separated {
        if a == b {
            return Err(Error::InvalidConfig(format!(
                "cannot separate `{a}` from itself"
            )));
        }
        if attr_set.contains(a.as_str()) && attr_set.contains(b.as_str()) {
            adj.get_mut(a.as_str()).expect("present").insert(b);
            adj.get_mut(b.as_str()).expect("present").insert(a);
        }
    }

    // Greedy coloring, highest degree first (ties broken by name for
    // determinism).
    let mut order: Vec<&str> = attr_set.iter().copied().collect();
    order.sort_by_key(|a| (usize::MAX - adj[a].len(), *a));

    let mut color: BTreeMap<&str, usize> = BTreeMap::new();
    let mut n_colors = 0usize;
    for a in order {
        let neighbor_colors: BTreeSet<usize> = adj[a]
            .iter()
            .filter_map(|n| color.get(n).copied())
            .collect();
        let mut c = 0;
        while neighbor_colors.contains(&c) {
            c += 1;
        }
        color.insert(a, c);
        n_colors = n_colors.max(c + 1);
    }

    let mut groups: Vec<Vec<String>> = vec![Vec::new(); n_colors.max(1)];
    for a in attributes {
        let c = color.get(a.as_str()).copied().unwrap_or(0);
        groups[c].push(a.clone());
    }
    groups.retain(|g| !g.is_empty());
    if groups.is_empty() {
        groups.push(Vec::new());
    }
    Ok(groups)
}

/// Verifies that a grouping separates every pair (used in tests and by the
/// privacy auditor).
pub fn verify_separation(groups: &[Vec<String>], separated: &[(String, String)]) -> bool {
    for group in groups {
        let set: BTreeSet<&str> = group.iter().map(|s| s.as_str()).collect();
        for (a, b) in separated {
            if set.contains(a.as_str()) && set.contains(b.as_str()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn pairs(v: &[(&str, &str)]) -> Vec<(String, String)> {
        v.iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn no_conflicts_single_group() {
        let groups = partition_attributes(&s(&["age", "bmi", "gir"]), &[]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], s(&["age", "bmi", "gir"]));
    }

    #[test]
    fn one_pair_two_groups() {
        let groups =
            partition_attributes(&s(&["age", "region", "bmi"]), &pairs(&[("age", "region")]))
                .unwrap();
        assert_eq!(groups.len(), 2);
        assert!(verify_separation(&groups, &pairs(&[("age", "region")])));
        // All attributes survive.
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn triangle_needs_three_groups() {
        let seps = pairs(&[("a", "b"), ("b", "c"), ("a", "c")]);
        let groups = partition_attributes(&s(&["a", "b", "c"]), &seps).unwrap();
        assert_eq!(groups.len(), 3);
        assert!(verify_separation(&groups, &seps));
    }

    #[test]
    fn unreferenced_pairs_ignored() {
        let groups = partition_attributes(
            &s(&["age"]),
            &pairs(&[("height", "weight"), ("age", "shoe_size")]),
        )
        .unwrap();
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn self_pair_and_duplicates_fail() {
        assert!(partition_attributes(&s(&["a"]), &pairs(&[("a", "a")])).is_err());
        assert!(partition_attributes(&s(&["a", "a"]), &[]).is_err());
    }

    #[test]
    fn deterministic() {
        let attrs = s(&["age", "bmi", "gir", "region", "sex"]);
        let seps = pairs(&[("age", "region"), ("sex", "region"), ("age", "gir")]);
        let a = partition_attributes(&attrs, &seps).unwrap();
        let b = partition_attributes(&attrs, &seps).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_attributes() {
        let groups = partition_attributes(&[], &[]).unwrap();
        assert_eq!(groups.len(), 1);
        assert!(groups[0].is_empty());
    }

    proptest! {
        #[test]
        fn prop_grouping_always_separates(
            n_attrs in 1usize..10,
            edges in prop::collection::vec((0usize..10, 0usize..10), 0..20),
        ) {
            let attrs: Vec<String> = (0..n_attrs).map(|i| format!("a{i}")).collect();
            let seps: Vec<(String, String)> = edges
                .into_iter()
                .filter(|(a, b)| a != b && *a < n_attrs && *b < n_attrs)
                .map(|(a, b)| (format!("a{a}"), format!("a{b}")))
                .collect();
            let groups = partition_attributes(&attrs, &seps).unwrap();
            prop_assert!(verify_separation(&groups, &seps));
            let total: usize = groups.iter().map(|g| g.len()).sum();
            prop_assert_eq!(total, n_attrs);
        }
    }
}
