//! The configuration knobs the demo exposes (§3.2, part 1).

use edgelet_util::{Error, Result};

/// Privacy parameters controlling QEP partitioning.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PrivacyConfig {
    /// Maximum raw tuples a single edgelet may see in cleartext
    /// (horizontal partitioning knob). `None` disables the cap.
    pub max_tuples_per_edgelet: Option<usize>,
    /// Attribute pairs that must never be exposed on the same edgelet
    /// (vertical partitioning knob; quasi-identifier protection).
    pub separated_attribute_pairs: Vec<(String, String)>,
}

impl PrivacyConfig {
    /// No privacy constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Caps raw tuples per edgelet.
    pub fn with_max_tuples(mut self, cap: usize) -> Self {
        self.max_tuples_per_edgelet = Some(cap);
        self
    }

    /// Adds an attribute pair to separate.
    pub fn separate(mut self, a: &str, b: &str) -> Self {
        self.separated_attribute_pairs
            .push((a.to_string(), b.to_string()));
        self
    }

    /// Validates basic sanity.
    pub fn validate(&self) -> Result<()> {
        if let Some(0) = self.max_tuples_per_edgelet {
            return Err(Error::InvalidConfig(
                "max tuples per edgelet cannot be zero".into(),
            ));
        }
        for (a, b) in &self.separated_attribute_pairs {
            if a == b {
                return Err(Error::InvalidConfig(format!(
                    "cannot separate attribute `{a}` from itself"
                )));
            }
        }
        Ok(())
    }
}

/// The execution strategy (taxonomy of \[14\], recalled in §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Split work over `n + m` partitions; valid while at most `m` are
    /// lost. Best for distributive/approximate workloads.
    Overcollection,
    /// Replicate each Data Processor on backups that take over on presumed
    /// failure. Strict validity at higher cost.
    Backup,
    /// No resiliency mechanism (baseline: single point of failure
    /// everywhere).
    Naive,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 3] = [Strategy::Overcollection, Strategy::Backup, Strategy::Naive];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Overcollection => "overcollection",
            Strategy::Backup => "backup",
            Strategy::Naive => "naive",
        }
    }
}

/// Resiliency parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Fault presumption rate: probability that a participating edgelet
    /// fails (or stays unreachable) during the query window.
    pub failure_probability: f64,
    /// Required probability that the query completes with a valid result.
    pub target_validity: f64,
    /// Strategy to plan for.
    pub strategy: Strategy,
    /// Upper bound on the overcollection degree `m` (cost cap).
    pub max_overcollection: u64,
    /// Upper bound on per-operator backups for the Backup strategy.
    pub max_backups: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            failure_probability: 0.1,
            target_validity: 0.999,
            strategy: Strategy::Overcollection,
            max_overcollection: 512,
            max_backups: 16,
        }
    }
}

impl ResilienceConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.failure_probability) {
            return Err(Error::InvalidConfig(format!(
                "failure probability {} outside [0, 1)",
                self.failure_probability
            )));
        }
        if !(0.0..1.0).contains(&self.target_validity) {
            return Err(Error::InvalidConfig(format!(
                "target validity {} outside [0, 1)",
                self.target_validity
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_builder() {
        let p = PrivacyConfig::none()
            .with_max_tuples(500)
            .separate("age", "region");
        assert_eq!(p.max_tuples_per_edgelet, Some(500));
        assert_eq!(p.separated_attribute_pairs.len(), 1);
        p.validate().unwrap();
    }

    #[test]
    fn privacy_validation() {
        assert!(PrivacyConfig::none().with_max_tuples(0).validate().is_err());
        assert!(PrivacyConfig::none().separate("a", "a").validate().is_err());
        PrivacyConfig::none().validate().unwrap();
    }

    #[test]
    fn resilience_validation() {
        ResilienceConfig::default().validate().unwrap();
        let r = ResilienceConfig {
            failure_probability: 1.0,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
        let r = ResilienceConfig {
            failure_probability: -0.1,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
        let r = ResilienceConfig {
            target_validity: 1.0,
            ..ResilienceConfig::default()
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Overcollection.name(), "overcollection");
        assert_eq!(Strategy::Backup.name(), "backup");
        assert_eq!(Strategy::Naive.name(), "naive");
        assert_eq!(Strategy::ALL.len(), 3);
    }
}
