//! Plan rendering: ASCII summary and Graphviz DOT.

use crate::plan::{OperatorRole, QueryPlan};
use std::fmt::Write as _;

/// Renders a compact ASCII summary of a plan (what the demo GUI shows).
pub fn render_ascii(plan: &QueryPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "QEP for {} ({}; strategy={})",
        plan.spec.id,
        plan.spec.kind.name(),
        plan.strategy.name()
    );
    let _ = writeln!(
        out,
        "  snapshot C={} | partitions n={} (+m={}) x quota {} | attr groups: {}",
        plan.spec.snapshot_cardinality,
        plan.n,
        plan.m,
        plan.partition_quota,
        plan.attr_groups.len()
    );
    for (g, attrs) in plan.attr_groups.iter().enumerate() {
        let _ = writeln!(out, "    group {g}: [{}]", attrs.join(", "));
    }
    let contributors: usize = plan.contributors.iter().map(|c| c.len()).sum();
    let _ = writeln!(out, "  contributors: {contributors}");
    for op in &plan.operators {
        let backups = if op.backups.is_empty() {
            String::new()
        } else {
            format!(
                " backups=[{}]",
                op.backups
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let _ = writeln!(out, "  {:<16} @ {}{}", op.role.label(), op.device, backups);
    }
    let _ = writeln!(out, "  edges: {}", plan.edges.len());
    out
}

/// Renders the dataflow graph in Graphviz DOT format.
pub fn render_dot(plan: &QueryPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph qep {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(
        out,
        "  label=\"{} / {} (n={}, m={})\";",
        plan.spec.id,
        plan.strategy.name(),
        plan.n,
        plan.m
    );
    let _ = writeln!(
        out,
        "  contributors [shape=box3d, label=\"{} Data Contributors\"];",
        plan.contributors.iter().map(|c| c.len()).sum::<usize>()
    );
    for op in &plan.operators {
        let shape = match op.role {
            OperatorRole::SnapshotBuilder { .. } => "box",
            OperatorRole::Computer { .. } => "ellipse",
            OperatorRole::Combiner { .. } => "hexagon",
            OperatorRole::Querier => "doublecircle",
        };
        let _ = writeln!(
            out,
            "  op{} [shape={shape}, label=\"{}\\n{}\"];",
            op.id.raw(),
            op.role.label(),
            op.device
        );
        if matches!(op.role, OperatorRole::SnapshotBuilder { .. }) {
            let _ = writeln!(out, "  contributors -> op{};", op.id.raw());
        }
    }
    for (a, b) in &plan.edges {
        let _ = writeln!(out, "  op{} -> op{};", a.raw(), b.raw());
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrivacyConfig, ResilienceConfig};
    use crate::plan::build_plan;
    use crate::spec::{QueryKind, QuerySpec};
    use edgelet_ml::grouping::GroupingQuery;
    use edgelet_ml::AggSpec;
    use edgelet_store::synth::health_schema;
    use edgelet_store::Predicate;
    use edgelet_tee::{DeviceClass, Directory};
    use edgelet_util::ids::{DeviceId, QueryId};
    use edgelet_util::rng::DetRng;

    fn plan() -> QueryPlan {
        let mut dir = Directory::new();
        let mut rng = DetRng::new(1);
        for i in 0..200u64 {
            dir.enroll(
                DeviceId::new(i),
                DeviceClass::SgxPc,
                i < 100,
                i >= 100,
                &mut rng,
            );
        }
        let spec = QuerySpec {
            id: QueryId::new(9),
            filter: Predicate::True,
            snapshot_cardinality: 400,
            kind: QueryKind::GroupingSets(GroupingQuery::new(
                &[&["sex"]],
                vec![AggSpec::count_star()],
            )),
            deadline_secs: 600.0,
        };
        build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig::default(),
            &dir,
            DeviceId::new(0),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn ascii_mentions_all_roles() {
        let text = render_ascii(&plan());
        assert!(text.contains("SB[part#0]"), "{text}");
        assert!(text.contains("CC"), "{text}");
        assert!(text.contains('Q'), "{text}");
        assert!(text.contains("contributors: 100"), "{text}");
    }

    #[test]
    fn dot_is_well_formed() {
        let p = plan();
        let dot = render_dot(&p);
        assert!(dot.starts_with("digraph qep {"));
        assert!(dot.trim_end().ends_with('}'));
        // One node line per operator plus the contributors pseudo-node.
        let nodes = dot.matches("[shape=").count();
        assert_eq!(nodes, p.operators.len() + 1);
        // Every edge rendered.
        let arrows = dot.matches("->").count();
        let builder_count = p
            .operators_where(|r| matches!(r, crate::plan::OperatorRole::SnapshotBuilder { .. }))
            .len();
        assert_eq!(arrows, p.edges.len() + builder_count);
    }
}
