//! QEP construction and device assignment.
//!
//! The planner realizes Figures 2 and 3 of the paper:
//!
//! * horizontal partitioning — the snapshot of cardinality `C` is split
//!   into `n` partitions of `C/n` tuples (`n` derived from the privacy cap
//!   on raw tuples per edgelet), overcollected to `n + m` partitions under
//!   the Overcollection strategy;
//! * vertical partitioning — the referenced attributes are colored into
//!   groups so that separated pairs never co-reside; each group gets its
//!   own Computer per partition;
//! * each partition gets one Snapshot Builder feeding its Computers;
//!   Computers feed the Computing Combiner, which runs with an Active
//!   Backup replica; the Combiner reports to the Querier;
//! * Data Contributors are assigned to partitions by hashing their
//!   identity keys; Data Processor operators are placed on randomly drawn
//!   volunteer devices (secure assignment).

use crate::config::{PrivacyConfig, ResilienceConfig, Strategy};
use crate::resilience::{plan_backup_degree, plan_overcollection};
use crate::spec::{QueryKind, QuerySpec};
use crate::vertical::partition_attributes;
use edgelet_store::Schema;
use edgelet_tee::Directory;
use edgelet_util::ids::{DeviceId, OperatorId, PartitionId};
use edgelet_util::rng::DetRng;
use edgelet_util::{Error, Result};

/// The role an operator plays in the QEP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperatorRole {
    /// Collects one partition's share of the snapshot.
    SnapshotBuilder {
        /// Partition handled.
        partition: PartitionId,
    },
    /// Computes over one partition and one vertical attribute group.
    Computer {
        /// Partition handled.
        partition: PartitionId,
        /// Index into [`QueryPlan::attr_groups`].
        attr_group: u32,
    },
    /// Combines Computer outputs. Replica 0 is the primary, higher
    /// replicas are Active Backups running in parallel (§2.2).
    Combiner {
        /// Replica index.
        replica: u32,
    },
    /// Receives the final result.
    Querier,
}

impl OperatorRole {
    /// Short label for rendering.
    pub fn label(&self) -> String {
        match self {
            OperatorRole::SnapshotBuilder { partition } => format!("SB[{partition}]"),
            OperatorRole::Computer {
                partition,
                attr_group,
            } => format!("C[{partition},g{attr_group}]"),
            OperatorRole::Combiner { replica } => {
                if *replica == 0 {
                    "CC".to_string()
                } else {
                    format!("CC-backup{replica}")
                }
            }
            OperatorRole::Querier => "Q".to_string(),
        }
    }

    /// Whether the role is a Data Processor (counts toward crowd
    /// liability and backup planning).
    pub fn is_data_processor(&self) -> bool {
        !matches!(self, OperatorRole::Querier)
    }
}

/// One planned operator instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedOperator {
    /// Operator id, unique within the plan.
    pub id: OperatorId,
    /// Role.
    pub role: OperatorRole,
    /// Primary hosting device.
    pub device: DeviceId,
    /// Backup devices (Backup strategy only; empty otherwise).
    pub backups: Vec<DeviceId>,
}

/// A fully planned query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The query being planned.
    pub spec: QuerySpec,
    /// Strategy realized by this plan.
    pub strategy: Strategy,
    /// Minimum number of partitions for validity.
    pub n: u64,
    /// Overcollection degree (0 unless Overcollection).
    pub m: u64,
    /// Per-operator backup degree (0 unless Backup).
    pub backup_degree: u64,
    /// Tuples each partition must collect (`ceil(C / n)`).
    pub partition_quota: usize,
    /// Vertical attribute groups (columns each Computer slice sees).
    pub attr_groups: Vec<Vec<String>>,
    /// For Grouping-Sets queries: indices into the spec's aggregate list
    /// evaluated by each vertical group (aligned with `attr_groups`).
    pub attr_group_aggregates: Vec<Vec<usize>>,
    /// All operators (Snapshot Builders, Computers, Combiners, Querier).
    pub operators: Vec<PlannedOperator>,
    /// Dataflow edges between operators.
    pub edges: Vec<(OperatorId, OperatorId)>,
    /// Data Contributors assigned to each partition (index = partition).
    pub contributors: Vec<Vec<DeviceId>>,
    /// Non-fatal planning caveats (e.g. partition quotas that the
    /// contributor pool may not be able to fill).
    pub warnings: Vec<String>,
}

impl QueryPlan {
    /// Total partitions (`n + m`).
    pub fn total_partitions(&self) -> u64 {
        self.n + self.m
    }

    /// Operators with a given predicate on the role.
    pub fn operators_where(
        &self,
        mut pred: impl FnMut(&OperatorRole) -> bool,
    ) -> Vec<&PlannedOperator> {
        self.operators.iter().filter(|o| pred(&o.role)).collect()
    }

    /// The primary Combiner.
    pub fn combiner(&self) -> &PlannedOperator {
        self.operators
            .iter()
            .find(|o| o.role == OperatorRole::Combiner { replica: 0 })
            .expect("plan always has a primary combiner")
    }

    /// All Combiner replicas (primary first).
    pub fn combiners(&self) -> Vec<&PlannedOperator> {
        let mut out = self.operators_where(|r| matches!(r, OperatorRole::Combiner { .. }));
        out.sort_by_key(|o| match o.role {
            OperatorRole::Combiner { replica } => replica,
            _ => u32::MAX,
        });
        out
    }

    /// The Querier operator.
    pub fn querier(&self) -> &PlannedOperator {
        self.operators
            .iter()
            .find(|o| o.role == OperatorRole::Querier)
            .expect("plan always has a querier")
    }

    /// Number of distinct devices hosting Data Processor operators.
    pub fn processor_devices(&self) -> Vec<DeviceId> {
        let mut out: Vec<DeviceId> = self
            .operators
            .iter()
            .filter(|o| o.role.is_data_processor())
            .flat_map(|o| std::iter::once(o.device).chain(o.backups.iter().copied()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Crowd-liability balance: the maximum number of Data Processor
    /// operators hosted by any single device. 1 = perfectly spread.
    pub fn max_operators_per_device(&self) -> usize {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<DeviceId, usize> = BTreeMap::new();
        for o in self.operators.iter().filter(|o| o.role.is_data_processor()) {
            *counts.entry(o.device).or_default() += 1;
            for b in &o.backups {
                *counts.entry(*b).or_default() += 1;
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

/// Builds the QEP for a query under the given privacy and resiliency
/// configurations, assigning devices from the directory.
///
/// `querier_device` hosts the Querier endpoint (it need not volunteer as a
/// processor).
pub fn build_plan(
    spec: &QuerySpec,
    schema: &Schema,
    privacy: &PrivacyConfig,
    resilience: &ResilienceConfig,
    directory: &Directory,
    querier_device: DeviceId,
    rng: &mut DetRng,
) -> Result<QueryPlan> {
    spec.validate(schema)?;
    privacy.validate()?;
    resilience.validate()?;

    // ---- horizontal partitioning: n from the raw-tuple cap ----
    let c = spec.snapshot_cardinality;
    let n: u64 = match privacy.max_tuples_per_edgelet {
        None => 1,
        Some(cap) => (c as u64).div_ceil(cap as u64).max(1),
    };
    let partition_quota = c.div_ceil(n as usize);

    // ---- vertical partitioning ----
    let (attr_groups, attr_group_aggregates) = plan_attr_groups(spec, privacy)?;

    // ---- resiliency ----
    let v = attr_groups.len() as u64;
    let combiner_replicas: u64 = match resilience.strategy {
        Strategy::Overcollection => {
            // §2.2 mandates at least one Active Backup; at higher fault
            // presumption more parallel replicas are needed for the
            // combination stage to meet the validity target at all:
            // 1 - p^r >= target  =>  r >= ln(1-target) / ln(p).
            let p = resilience.failure_probability;
            if p <= 0.0 {
                2
            } else {
                let needed = ((1.0 - resilience.target_validity).ln() / p.ln()).ceil();
                (needed as u64).clamp(2, 8)
            }
        }
        _ => 1,
    };
    let (m, backup_degree) = match resilience.strategy {
        Strategy::Overcollection => {
            // `failure_probability` presumes per-DEVICE faults; a partition
            // pipeline spans one Snapshot Builder plus `v` Computers and
            // survives only if all of them do.
            let p_dev = resilience.failure_probability;
            let p_partition = 1.0 - (1.0 - p_dev).powi((1 + v) as i32);
            // The Combiner pair must also survive; budget the validity
            // target across both events.
            let combiner_survival = 1.0 - p_dev.powi(combiner_replicas as i32);
            let adjusted_target = if combiner_survival <= resilience.target_validity {
                // Even a perfect partition supply cannot reach the target;
                // plan for the best achievable partition-side validity.
                0.999_999
            } else {
                (resilience.target_validity / combiner_survival).min(0.999_999)
            };
            (
                plan_overcollection(
                    n,
                    p_partition,
                    adjusted_target,
                    resilience.max_overcollection,
                )?,
                0,
            )
        }
        Strategy::Backup => {
            // Every Data Processor operator must survive: builders and
            // computers per partition, plus the combiner.
            let ops = n * (1 + v) + 1;
            (
                0,
                plan_backup_degree(
                    ops,
                    resilience.failure_probability,
                    resilience.target_validity,
                    resilience.max_backups,
                )?,
            )
        }
        Strategy::Naive => (0, 0),
    };
    let total_partitions = n + m;

    // ---- contributor assignment by identity-key hashing ----
    let contributors_by_partition = directory.assign_contributors(total_partitions as usize);
    let contributors: Vec<Vec<DeviceId>> = contributors_by_partition;
    if contributors.iter().all(|c| c.is_empty()) {
        return Err(Error::Unsatisfiable(
            "directory has no data contributors".into(),
        ));
    }
    let mut warnings: Vec<String> = Vec::new();
    let thin_buckets = contributors
        .iter()
        .filter(|c| c.len() < partition_quota)
        .count();
    if thin_buckets > 0 {
        warnings.push(format!(
            "{thin_buckets} of {total_partitions} partitions have fewer \
             contributors than their quota of {partition_quota} tuples; \
             those partitions cannot complete even with full eligibility"
        ));
    }

    // ---- processor selection ----
    // One builder per partition, one computer per (partition, group), the
    // combiner + one active backup (Overcollection; §2.2 requires it), and
    // `backup_degree` extra replicas per operator under Backup.
    let primary_ops = total_partitions * (1 + v) + combiner_replicas;
    let backup_ops = backup_degree * (n * (1 + v) + 1);
    let needed = primary_ops + backup_ops;
    let picked = directory.select_processors(needed as usize, rng)?;
    let mut pool = picked.into_iter();
    let mut next = || pool.next().expect("pool sized to demand");

    let mut operators: Vec<PlannedOperator> = Vec::with_capacity(needed as usize + 1);
    let mut edges: Vec<(OperatorId, OperatorId)> = Vec::new();
    let mut next_op_id = 0u64;
    let mut fresh_id = || {
        let id = OperatorId::new(next_op_id);
        next_op_id += 1;
        id
    };
    let backups_for = |pool_next: &mut dyn FnMut() -> DeviceId| -> Vec<DeviceId> {
        (0..backup_degree).map(|_| pool_next()).collect()
    };

    // Builders and computers per partition.
    let mut builder_ids = Vec::with_capacity(total_partitions as usize);
    let mut computer_ids: Vec<Vec<OperatorId>> = Vec::with_capacity(total_partitions as usize);
    for part in 0..total_partitions {
        let partition = PartitionId::new(part);
        let builder_id = fresh_id();
        operators.push(PlannedOperator {
            id: builder_id,
            role: OperatorRole::SnapshotBuilder { partition },
            device: next(),
            backups: backups_for(&mut next),
        });
        builder_ids.push(builder_id);
        let mut per_group = Vec::with_capacity(attr_groups.len());
        for g in 0..attr_groups.len() {
            let comp_id = fresh_id();
            operators.push(PlannedOperator {
                id: comp_id,
                role: OperatorRole::Computer {
                    partition,
                    attr_group: g as u32,
                },
                device: next(),
                backups: backups_for(&mut next),
            });
            edges.push((builder_id, comp_id));
            per_group.push(comp_id);
        }
        computer_ids.push(per_group);
    }

    // Combiner replicas.
    let mut combiner_ids = Vec::new();
    for replica in 0..combiner_replicas {
        let id = fresh_id();
        operators.push(PlannedOperator {
            id,
            role: OperatorRole::Combiner {
                replica: replica as u32,
            },
            device: next(),
            backups: if replica == 0 {
                backups_for(&mut next)
            } else {
                Vec::new()
            },
        });
        combiner_ids.push(id);
    }
    for per_group in &computer_ids {
        for &comp in per_group {
            for &comb in &combiner_ids {
                edges.push((comp, comb));
            }
        }
    }

    // Querier.
    let querier_id = fresh_id();
    operators.push(PlannedOperator {
        id: querier_id,
        role: OperatorRole::Querier,
        device: querier_device,
        backups: Vec::new(),
    });
    for &comb in &combiner_ids {
        edges.push((comb, querier_id));
    }

    Ok(QueryPlan {
        spec: spec.clone(),
        strategy: resilience.strategy,
        n,
        m,
        backup_degree,
        partition_quota,
        attr_groups,
        attr_group_aggregates,
        operators,
        edges,
        contributors,
        warnings,
    })
}

/// Per-group column sets plus, for Grouping-Sets queries, the aggregate
/// indices each group evaluates.
type AttrGrouping = (Vec<Vec<String>>, Vec<Vec<usize>>);

/// Splits the referenced attributes into vertical groups, respecting the
/// query kind's constraints. Returns the per-group column sets and, for
/// Grouping-Sets queries, the aggregate indices each group evaluates.
///
/// For Grouping-Sets (the paper's "each Computer manages a single
/// statistic, e.g., Age, BMI"), the grouping columns are replicated into
/// every slice (every statistic is broken down by the same groups) while
/// the *aggregate input columns* are what vertical partitioning
/// separates. A separation involving a grouping column is therefore
/// unsatisfiable, as is one between two K-Means features.
fn plan_attr_groups(spec: &QuerySpec, privacy: &PrivacyConfig) -> Result<AttrGrouping> {
    match &spec.kind {
        QueryKind::GroupingSets(q) => {
            let mut group_cols: Vec<String> = q.sets.iter().flatten().cloned().collect();
            group_cols.sort();
            group_cols.dedup();
            // Aggregate input columns not already replicated as grouping
            // columns are the separable ones.
            let mut agg_cols: Vec<String> = q
                .aggregates
                .iter()
                .filter_map(|a| a.column.clone())
                .filter(|c| !group_cols.contains(c))
                .collect();
            agg_cols.sort();
            agg_cols.dedup();

            for (a, b) in &privacy.separated_attribute_pairs {
                let a_grouping = group_cols.contains(a);
                let b_grouping = group_cols.contains(b);
                let a_used = a_grouping || agg_cols.contains(a);
                let b_used = b_grouping || agg_cols.contains(b);
                if a_used && b_used && (a_grouping || b_grouping) {
                    return Err(Error::Unsatisfiable(format!(
                        "cannot separate `{a}` from `{b}`: grouping columns \
                         are replicated into every computer slice"
                    )));
                }
            }

            let groups = partition_attributes(&agg_cols, &privacy.separated_attribute_pairs)?;
            // Assign each aggregate to the group holding its column;
            // COUNT(*) and aggregates over grouping columns go to group 0.
            let mut agg_assignment: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
            for (i, agg) in q.aggregates.iter().enumerate() {
                let g = match &agg.column {
                    Some(c) if !group_cols.contains(c) => groups
                        .iter()
                        .position(|grp| grp.contains(c))
                        .expect("aggregate column present in exactly one group"),
                    _ => 0,
                };
                agg_assignment[g].push(i);
            }
            // Each slice sees the grouping columns plus its aggregates'.
            let attr_groups: Vec<Vec<String>> = groups
                .iter()
                .map(|grp| {
                    let mut cols = group_cols.clone();
                    cols.extend(grp.iter().cloned());
                    cols
                })
                .collect();
            Ok((attr_groups, agg_assignment))
        }
        QueryKind::KMeans { .. } => {
            // Clustering needs all features on the same operator; a
            // separation constraint between two referenced columns cannot
            // be honored.
            let attrs = spec.kind.referenced_columns();
            for (a, b) in &privacy.separated_attribute_pairs {
                if attrs.contains(a) && attrs.contains(b) {
                    return Err(Error::Unsatisfiable(format!(
                        "k-means requires `{a}` and `{b}` on the same computer; \
                         drop the separation or the feature"
                    )));
                }
            }
            Ok((vec![attrs], vec![Vec::new()]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_ml::grouping::GroupingQuery;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_store::synth::health_schema;
    use edgelet_store::{CmpOp, Predicate, Value};
    use edgelet_tee::DeviceClass;
    use edgelet_util::ids::QueryId;

    fn directory(contributors: usize, processors: usize) -> Directory {
        let mut dir = Directory::new();
        let mut rng = DetRng::new(77);
        let mut id = 0u64;
        for _ in 0..contributors {
            dir.enroll(
                DeviceId::new(id),
                DeviceClass::TpmHomeBox,
                true,
                false,
                &mut rng,
            );
            id += 1;
        }
        for _ in 0..processors {
            dir.enroll(DeviceId::new(id), DeviceClass::SgxPc, false, true, &mut rng);
            id += 1;
        }
        dir
    }

    fn grouping_spec(c: usize) -> QuerySpec {
        QuerySpec {
            id: QueryId::new(1),
            filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            snapshot_cardinality: c,
            kind: QueryKind::GroupingSets(GroupingQuery::new(
                &[&["sex"], &["gir"], &[]],
                vec![
                    AggSpec::count_star(),
                    AggSpec::over(AggKind::Avg, "bmi"),
                    AggSpec::over(AggKind::Avg, "systolic_bp"),
                ],
            )),
            deadline_secs: 3600.0,
        }
    }

    fn kmeans_spec(c: usize) -> QuerySpec {
        QuerySpec {
            id: QueryId::new(2),
            filter: Predicate::True,
            snapshot_cardinality: c,
            kind: QueryKind::KMeans {
                k: 3,
                features: vec!["age".into(), "bmi".into()],
                heartbeats: 4,
                per_cluster_aggregates: vec![AggSpec::over(AggKind::Avg, "gir")],
            },
            deadline_secs: 3600.0,
        }
    }

    fn plan_with(
        spec: &QuerySpec,
        privacy: PrivacyConfig,
        resilience: ResilienceConfig,
    ) -> Result<QueryPlan> {
        let dir = directory(500, 300);
        let mut rng = DetRng::new(3);
        build_plan(
            spec,
            &health_schema(),
            &privacy,
            &resilience,
            &dir,
            DeviceId::new(0),
            &mut rng,
        )
    }

    #[test]
    fn figure2_shape_horizontal_and_vertical() {
        // C=2000, cap 500 -> n=4; one separated pair -> 2 attr groups.
        let spec = grouping_spec(2000);
        // Separating the two statistics' input columns (`bmi` and
        // `systolic_bp`) forces two vertical groups — each Computer
        // "manages a single statistic" as in Figure 2. The grouping
        // columns are replicated into both slices.
        let privacy = PrivacyConfig::none()
            .with_max_tuples(500)
            .separate("bmi", "systolic_bp");
        let resilience = ResilienceConfig {
            strategy: Strategy::Naive,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, privacy, resilience).unwrap();
        assert_eq!(plan.n, 4);
        assert_eq!(plan.m, 0);
        assert_eq!(plan.partition_quota, 500);
        assert_eq!(plan.attr_groups.len(), 2);
        let builders = plan.operators_where(|r| matches!(r, OperatorRole::SnapshotBuilder { .. }));
        assert_eq!(builders.len(), 4);
        let computers = plan.operators_where(|r| matches!(r, OperatorRole::Computer { .. }));
        assert_eq!(computers.len(), 8);
        assert_eq!(plan.combiners().len(), 1, "naive has no active backup");
        // Every edge references existing operators.
        let ids: std::collections::HashSet<_> = plan.operators.iter().map(|o| o.id).collect();
        for (a, b) in &plan.edges {
            assert!(ids.contains(a) && ids.contains(b));
        }
    }

    #[test]
    fn figure3_overcollection_adds_partitions_and_active_backup() {
        let spec = grouping_spec(2000);
        let privacy = PrivacyConfig::none().with_max_tuples(500);
        let resilience = ResilienceConfig {
            strategy: Strategy::Overcollection,
            failure_probability: 0.2,
            target_validity: 0.999,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, privacy, resilience).unwrap();
        assert_eq!(plan.n, 4);
        assert!(plan.m >= 2, "p=0.2 must force overcollection, m={}", plan.m);
        assert_eq!(plan.total_partitions(), plan.n + plan.m);
        assert!(plan.combiners().len() >= 2, "active backup present");
        let builders = plan.operators_where(|r| matches!(r, OperatorRole::SnapshotBuilder { .. }));
        assert_eq!(builders.len() as u64, plan.total_partitions());
        // Contributors are spread over all n+m partitions.
        assert_eq!(plan.contributors.len() as u64, plan.total_partitions());
        assert!(plan.contributors.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn backup_strategy_assigns_backups() {
        let spec = grouping_spec(1000);
        let privacy = PrivacyConfig::none().with_max_tuples(500);
        let resilience = ResilienceConfig {
            strategy: Strategy::Backup,
            failure_probability: 0.2,
            target_validity: 0.99,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, privacy, resilience).unwrap();
        assert_eq!(plan.m, 0);
        assert!(plan.backup_degree >= 1);
        for op in plan.operators.iter().filter(|o| o.role.is_data_processor()) {
            match op.role {
                OperatorRole::Combiner { replica } if replica > 0 => {}
                _ => assert_eq!(op.backups.len() as u64, plan.backup_degree, "{:?}", op.role),
            }
        }
        assert_eq!(plan.querier().backups.len(), 0);
    }

    #[test]
    fn operators_land_on_distinct_devices() {
        let spec = grouping_spec(2000);
        let privacy = PrivacyConfig::none().with_max_tuples(200);
        let plan = plan_with(&spec, privacy, ResilienceConfig::default()).unwrap();
        assert_eq!(plan.max_operators_per_device(), 1);
        let devices = plan.processor_devices();
        let processors: usize = plan
            .operators
            .iter()
            .filter(|o| o.role.is_data_processor())
            .map(|o| 1 + o.backups.len())
            .sum();
        assert_eq!(devices.len(), processors);
    }

    #[test]
    fn kmeans_keeps_features_together() {
        let spec = kmeans_spec(1000);
        let plan = plan_with(
            &spec,
            PrivacyConfig::none().with_max_tuples(250),
            ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.attr_groups.len(), 1);
        assert!(plan.attr_groups[0].contains(&"age".to_string()));
        assert!(plan.attr_groups[0].contains(&"gir".to_string()));

        // Separating two features is unsatisfiable.
        let err = plan_with(
            &spec,
            PrivacyConfig::none().separate("age", "bmi"),
            ResilienceConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn insufficient_processors_fail() {
        let spec = grouping_spec(2000);
        let dir = directory(100, 3);
        let mut rng = DetRng::new(5);
        let err = build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig::default(),
            &dir,
            DeviceId::new(0),
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn no_contributors_fail() {
        let spec = grouping_spec(100);
        let dir = directory(0, 50);
        let mut rng = DetRng::new(6);
        let err = build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none(),
            &ResilienceConfig::default(),
            &dir,
            DeviceId::new(0),
            &mut rng,
        );
        assert!(err.is_err());
    }

    #[test]
    fn querier_and_combiner_accessors() {
        let spec = grouping_spec(500);
        let plan = plan_with(
            &spec,
            PrivacyConfig::none().with_max_tuples(250),
            ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.querier().role, OperatorRole::Querier);
        assert_eq!(plan.combiner().role, OperatorRole::Combiner { replica: 0 });
        assert_eq!(plan.combiners()[0].id, plan.combiner().id);
        assert!(plan
            .operators
            .iter()
            .any(|o| o.role.label().starts_with("SB[")));
    }
}
