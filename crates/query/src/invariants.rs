//! Structural invariants every well-formed plan must satisfy.
//!
//! `build_plan` is tested against these, and the execution driver can
//! assert them before wiring actors — a malformed plan fails loudly
//! instead of producing a silently wrong distributed execution.

use crate::plan::{OperatorRole, QueryPlan};
use edgelet_util::{Error, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Checks all structural invariants; returns the first violation.
pub fn check_plan(plan: &QueryPlan) -> Result<()> {
    let total = plan.total_partitions();

    // 1. Exactly one builder per partition, covering 0..n+m.
    let mut builders: BTreeSet<u64> = BTreeSet::new();
    for op in &plan.operators {
        if let OperatorRole::SnapshotBuilder { partition } = op.role {
            if !builders.insert(partition.raw()) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate snapshot builder for partition {partition}"
                )));
            }
        }
    }
    if builders.len() as u64 != total || builders.last() != Some(&(total - 1)) {
        return Err(Error::InvalidConfig(format!(
            "builders cover {builders:?}, expected 0..{total}"
        )));
    }

    // 2. Exactly one computer per (partition, group), full grid.
    let groups = plan.attr_groups.len() as u32;
    let mut computers: BTreeSet<(u64, u32)> = BTreeSet::new();
    for op in &plan.operators {
        if let OperatorRole::Computer {
            partition,
            attr_group,
        } = op.role
        {
            if attr_group >= groups {
                return Err(Error::InvalidConfig(format!(
                    "computer references unknown attr group {attr_group}"
                )));
            }
            if !computers.insert((partition.raw(), attr_group)) {
                return Err(Error::InvalidConfig(format!(
                    "duplicate computer for ({partition}, g{attr_group})"
                )));
            }
        }
    }
    if computers.len() as u64 != total * u64::from(groups) {
        return Err(Error::InvalidConfig(format!(
            "computer grid has {} cells, expected {}",
            computers.len(),
            total * u64::from(groups)
        )));
    }

    // 3. At least one combiner, contiguous replica indices, one querier.
    let mut replicas: Vec<u32> = plan
        .operators
        .iter()
        .filter_map(|o| match o.role {
            OperatorRole::Combiner { replica } => Some(replica),
            _ => None,
        })
        .collect();
    replicas.sort_unstable();
    if replicas.is_empty() || replicas[0] != 0 {
        return Err(Error::InvalidConfig("missing primary combiner".into()));
    }
    for (i, r) in replicas.iter().enumerate() {
        if *r != i as u32 {
            return Err(Error::InvalidConfig(format!(
                "combiner replicas not contiguous: {replicas:?}"
            )));
        }
    }
    let queriers = plan
        .operators_where(|r| matches!(r, OperatorRole::Querier))
        .len();
    if queriers != 1 {
        return Err(Error::InvalidConfig(format!(
            "expected exactly one querier, found {queriers}"
        )));
    }

    // 4. No device hosts two Data Processor operator instances.
    let mut hosting: BTreeMap<u64, String> = BTreeMap::new();
    for op in plan.operators.iter().filter(|o| o.role.is_data_processor()) {
        for dev in std::iter::once(op.device).chain(op.backups.iter().copied()) {
            if let Some(prev) = hosting.insert(dev.raw(), op.role.label()) {
                return Err(Error::InvalidConfig(format!(
                    "device {dev} hosts both {prev} and {}",
                    op.role.label()
                )));
            }
        }
    }

    // 5. Contributor buckets match the partition count.
    if plan.contributors.len() as u64 != total {
        return Err(Error::InvalidConfig(format!(
            "{} contributor buckets for {total} partitions",
            plan.contributors.len()
        )));
    }

    // 6. Every edge references an existing operator, and the dataflow is
    //    bottom-up: builder -> computer -> combiner -> querier.
    let ids: BTreeSet<u64> = plan.operators.iter().map(|o| o.id.raw()).collect();
    let role_of: BTreeMap<u64, &OperatorRole> = plan
        .operators
        .iter()
        .map(|o| (o.id.raw(), &o.role))
        .collect();
    for (a, b) in &plan.edges {
        if !ids.contains(&a.raw()) || !ids.contains(&b.raw()) {
            return Err(Error::InvalidConfig(format!(
                "edge ({a}, {b}) references unknown operators"
            )));
        }
        let ok = matches!(
            (role_of[&a.raw()], role_of[&b.raw()]),
            (
                OperatorRole::SnapshotBuilder { .. },
                OperatorRole::Computer { .. }
            ) | (OperatorRole::Computer { .. }, OperatorRole::Combiner { .. })
                | (OperatorRole::Combiner { .. }, OperatorRole::Querier)
        );
        if !ok {
            return Err(Error::InvalidConfig(format!(
                "edge ({a}, {b}) violates the QEP stage order"
            )));
        }
    }

    // 7. Vertical groups actually separate the configured pairs: checked
    //    by the vertical module; here we check groups are non-empty for
    //    grouping queries with aggregates assigned.
    for (g, aggs) in plan.attr_group_aggregates.iter().enumerate() {
        let _ = (g, aggs); // arity checked below
    }
    if !plan.attr_group_aggregates.is_empty()
        && plan.attr_group_aggregates.len() != plan.attr_groups.len()
    {
        return Err(Error::InvalidConfig(
            "aggregate assignment arity differs from attr groups".into(),
        ));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrivacyConfig, ResilienceConfig, Strategy};
    use crate::plan::build_plan;
    use crate::spec::{QueryKind, QuerySpec};
    use edgelet_ml::grouping::GroupingQuery;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_store::synth::health_schema;
    use edgelet_store::Predicate;
    use edgelet_tee::{DeviceClass, Directory};
    use edgelet_util::ids::{DeviceId, QueryId};
    use edgelet_util::rng::DetRng;

    fn plan(strategy: Strategy) -> QueryPlan {
        let mut dir = Directory::new();
        let mut rng = DetRng::new(1);
        for i in 0..800u64 {
            dir.enroll(
                DeviceId::new(i),
                DeviceClass::SgxPc,
                i < 400,
                i >= 400,
                &mut rng,
            );
        }
        let spec = QuerySpec {
            id: QueryId::new(1),
            filter: Predicate::True,
            snapshot_cardinality: 600,
            kind: QueryKind::GroupingSets(GroupingQuery::new(
                &[&["sex"], &[]],
                vec![
                    AggSpec::count_star(),
                    AggSpec::over(AggKind::Avg, "bmi"),
                    AggSpec::over(AggKind::Avg, "systolic_bp"),
                ],
            )),
            deadline_secs: 600.0,
        };
        build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none()
                .with_max_tuples(100)
                .separate("bmi", "systolic_bp"),
            &ResilienceConfig {
                strategy,
                failure_probability: 0.15,
                ..ResilienceConfig::default()
            },
            &dir,
            DeviceId::new(0),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn built_plans_satisfy_all_invariants() {
        for strategy in [Strategy::Overcollection, Strategy::Backup, Strategy::Naive] {
            check_plan(&plan(strategy)).unwrap();
        }
    }

    #[test]
    fn mutations_are_caught() {
        // Drop a computer.
        let mut p = plan(Strategy::Naive);
        let idx = p
            .operators
            .iter()
            .position(|o| matches!(o.role, OperatorRole::Computer { .. }))
            .unwrap();
        p.operators.remove(idx);
        assert!(check_plan(&p).is_err());

        // Duplicate a builder partition.
        let mut p = plan(Strategy::Naive);
        let b = p
            .operators
            .iter()
            .find(|o| matches!(o.role, OperatorRole::SnapshotBuilder { .. }))
            .unwrap()
            .clone();
        p.operators.push(b);
        assert!(check_plan(&p).is_err());

        // Host two operators on one device.
        let mut p = plan(Strategy::Naive);
        let d0 = p.operators[0].device;
        for op in p.operators.iter_mut() {
            if matches!(op.role, OperatorRole::Combiner { .. }) {
                op.device = d0;
            }
        }
        assert!(check_plan(&p).is_err());

        // Backwards edge.
        let mut p = plan(Strategy::Naive);
        let (a, b) = p.edges[0];
        p.edges.push((b, a));
        assert!(check_plan(&p).is_err());

        // Contributor bucket count mismatch.
        let mut p = plan(Strategy::Naive);
        p.contributors.pop();
        assert!(check_plan(&p).is_err());
    }
}
