//! Analytic cost model of a plan: expected messages and critical path.
//!
//! The demo GUI shows attendees what a knob costs *before* running; this
//! estimator provides those numbers, and the test suite checks it against
//! the simulator's measurements (the model should predict message counts
//! exactly on a loss-free network and bound them from above under loss).

use crate::plan::{OperatorRole, QueryPlan};
use crate::Strategy;

/// Predicted protocol costs for one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Contribution requests (builders × their contributors, all replicas).
    pub contribute_requests: u64,
    /// Upper bound on contributions (every contributor answers every
    /// requesting replica).
    pub contributions_max: u64,
    /// Partition-data messages (builder replicas × slices × targets).
    pub partition_data: u64,
    /// Partial/knowledge result messages to combiners.
    pub partials: u64,
    /// K-Means peer-broadcast messages (0 for grouping queries).
    pub knowledge_broadcasts: u64,
    /// Final results to the querier.
    pub final_results: u64,
    /// Protocol stage count on the critical path (request → contribution
    /// → partition data → partial → final result).
    pub critical_path_hops: u32,
}

impl CostEstimate {
    /// Total message upper bound for a loss-free run, excluding
    /// Backup-strategy liveness pings and collection retry rounds (both
    /// only fire on failures/loss and depend on run duration).
    pub fn total_messages_max(&self) -> u64 {
        self.contribute_requests
            + self.contributions_max
            + self.partition_data
            + self.partials
            + self.knowledge_broadcasts
            + self.final_results
    }
}

/// Computes the estimate for a plan.
pub fn estimate(plan: &QueryPlan) -> CostEstimate {
    let replicas_per_op = 1 + plan.backup_degree;
    let combiner_targets: u64 = plan
        .combiners()
        .iter()
        .map(|c| 1 + c.backups.len() as u64)
        .sum();

    let mut contribute_requests = 0u64;
    let mut partition_data = 0u64;
    for op in &plan.operators {
        if let OperatorRole::SnapshotBuilder { partition } = op.role {
            let contributors = plan.contributors[partition.index()].len() as u64;
            let builder_replicas = 1 + op.backups.len() as u64;
            contribute_requests += contributors * builder_replicas;
            // Each builder replica ships each slice to every computer
            // replica of its partition.
            let slices = plan.attr_groups.len() as u64;
            partition_data += builder_replicas * slices * replicas_per_op;
        }
    }
    let contributions_max = contribute_requests; // one answer per request

    let computers = plan
        .operators_where(|r| matches!(r, OperatorRole::Computer { .. }))
        .len() as u64;
    let computer_instances = computers * replicas_per_op;
    let partials = computer_instances * combiner_targets;

    // K-Means: every computer broadcasts knowledge to all peers each
    // heartbeat round.
    let knowledge_broadcasts = match &plan.spec.kind {
        crate::QueryKind::KMeans { heartbeats, .. } => {
            computers * computers.saturating_sub(1) * (*heartbeats as u64)
        }
        _ => 0,
    };

    let final_results = combiner_targets;

    CostEstimate {
        contribute_requests,
        contributions_max,
        partition_data,
        partials,
        knowledge_broadcasts,
        final_results,
        critical_path_hops: match plan.strategy {
            // Backup adds suspicion rounds before outputs flow on failure,
            // but the failure-free path has the same hop count.
            Strategy::Overcollection | Strategy::Backup | Strategy::Naive => 5,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PrivacyConfig, ResilienceConfig, Strategy};
    use crate::plan::build_plan;
    use crate::spec::{QueryKind, QuerySpec};
    use edgelet_ml::grouping::GroupingQuery;
    use edgelet_ml::AggSpec;
    use edgelet_store::synth::health_schema;
    use edgelet_store::Predicate;
    use edgelet_tee::{DeviceClass, Directory};
    use edgelet_util::ids::{DeviceId, QueryId};
    use edgelet_util::rng::DetRng;

    fn plan(strategy: Strategy) -> QueryPlan {
        let mut dir = Directory::new();
        let mut rng = DetRng::new(2);
        for i in 0..1_000u64 {
            dir.enroll(
                DeviceId::new(i),
                DeviceClass::SgxPc,
                i < 600,
                i >= 600,
                &mut rng,
            );
        }
        let spec = QuerySpec {
            id: QueryId::new(1),
            filter: Predicate::True,
            snapshot_cardinality: 300,
            kind: QueryKind::GroupingSets(GroupingQuery::new(&[&[]], vec![AggSpec::count_star()])),
            deadline_secs: 600.0,
        };
        build_plan(
            &spec,
            &health_schema(),
            &PrivacyConfig::none().with_max_tuples(100),
            &ResilienceConfig {
                strategy,
                failure_probability: 0.1,
                ..ResilienceConfig::default()
            },
            &dir,
            DeviceId::new(0),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn overcollection_estimate_shape() {
        let p = plan(Strategy::Overcollection);
        let e = estimate(&p);
        // Every contributor is in exactly one bucket with one builder.
        assert_eq!(e.contribute_requests, 600);
        assert_eq!(e.contributions_max, 600);
        let parts = p.total_partitions();
        assert_eq!(e.partition_data, parts);
        let combiners = p.combiners().len() as u64;
        assert_eq!(e.partials, parts * combiners);
        assert_eq!(e.final_results, combiners);
        assert_eq!(e.knowledge_broadcasts, 0);
        assert!(e.total_messages_max() > 1_200);
    }

    #[test]
    fn backup_costs_multiply() {
        let over = estimate(&plan(Strategy::Overcollection));
        let backup = estimate(&plan(Strategy::Backup));
        // Replicated builders re-request from every contributor.
        assert!(backup.contribute_requests > over.contribute_requests);
        assert!(backup.partition_data > over.partition_data);
        assert!(backup.total_messages_max() > over.total_messages_max());
    }

    #[test]
    fn naive_is_cheapest() {
        let naive = estimate(&plan(Strategy::Naive));
        let over = estimate(&plan(Strategy::Overcollection));
        assert!(naive.total_messages_max() <= over.total_messages_max());
        assert_eq!(naive.final_results, 1);
    }
}
