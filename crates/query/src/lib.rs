//! Query Execution Plans (QEPs) for Edgelet computing.
//!
//! A QEP is a directed graph whose vertices are operators (Data
//! Contributors, Snapshot Builders, Computers, Computing Combiners and
//! their Active Backups, the Querier) and whose edges are dataflow (§2.1).
//! This crate turns a query specification plus privacy and resiliency
//! parameters into a concrete plan:
//!
//! * [`spec`] — what to compute: filter, snapshot cardinality `C`,
//!   Grouping-Sets or K-Means payload, deadline;
//! * [`config`] — the knobs the demo lets attendees turn: max raw tuples
//!   per edgelet (horizontal partitioning), attribute pairs to separate
//!   (vertical partitioning), failure probability and target validity
//!   (resiliency), strategy choice;
//! * [`vertical`] — attribute-separation planning (greedy coloring of the
//!   conflict graph);
//! * [`resilience`] — the Overcollection degree `m` and Backup degree `b`
//!   planners built on exact binomial tails;
//! * [`plan`] — plan construction and device assignment;
//! * [`render`] — ASCII and Graphviz rendering of plans;
//! * [`invariants`] — structural well-formedness checks on plans;
//! * [`cost`] — an analytic message/latency estimator the tests hold
//!   against the simulator's measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod invariants;
pub mod plan;
pub mod render;
pub mod resilience;
pub mod spec;
pub mod vertical;

pub use config::{PrivacyConfig, ResilienceConfig, Strategy};
pub use cost::{estimate, CostEstimate};
pub use invariants::check_plan;
pub use plan::{OperatorRole, PlannedOperator, QueryPlan};
pub use resilience::{plan_backup_degree, plan_overcollection};
pub use spec::{QueryKind, QuerySpec};
