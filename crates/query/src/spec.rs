//! Query specifications: what the Querier asks the crowd to compute.

use edgelet_ml::grouping::GroupingQuery;
use edgelet_store::{Predicate, Schema};
use edgelet_util::ids::QueryId;
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};

/// The computation payload of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Grouping-Sets aggregation (demo query (i)).
    GroupingSets(GroupingQuery),
    /// K-Means over numeric features, optionally followed by a Group-By on
    /// the resulting clusters (demo query (ii)).
    KMeans {
        /// Number of clusters.
        k: usize,
        /// Numeric feature columns.
        features: Vec<String>,
        /// Iterative heartbeats before the final combination (§2.2).
        heartbeats: usize,
        /// Aggregate these columns per resulting cluster (may be empty).
        per_cluster_aggregates: Vec<edgelet_ml::AggSpec>,
    },
}

impl QueryKind {
    /// Columns the computation reads.
    pub fn referenced_columns(&self) -> Vec<String> {
        match self {
            QueryKind::GroupingSets(q) => q.referenced_columns(),
            QueryKind::KMeans {
                features,
                per_cluster_aggregates,
                ..
            } => {
                let mut out = features.clone();
                for a in per_cluster_aggregates {
                    if let Some(c) = &a.column {
                        out.push(c.clone());
                    }
                }
                out.sort();
                out.dedup();
                out
            }
        }
    }

    /// Validates against the shared schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            QueryKind::GroupingSets(q) => q.validate(schema),
            QueryKind::KMeans {
                k,
                features,
                heartbeats,
                per_cluster_aggregates,
            } => {
                if *k == 0 {
                    return Err(Error::InvalidQuery("k-means needs k >= 1".into()));
                }
                if features.is_empty() {
                    return Err(Error::InvalidQuery("k-means needs features".into()));
                }
                if *heartbeats == 0 {
                    return Err(Error::InvalidQuery(
                        "iterative execution needs at least one heartbeat".into(),
                    ));
                }
                for f in features {
                    let col = schema.column(f)?;
                    match col.ty {
                        edgelet_store::ColumnType::Int | edgelet_store::ColumnType::Float => {}
                        other => {
                            return Err(Error::InvalidQuery(format!(
                                "k-means feature `{f}` must be numeric, found {other}"
                            )))
                        }
                    }
                }
                for a in per_cluster_aggregates {
                    a.validate(schema)?;
                }
                Ok(())
            }
        }
    }

    /// Short human name for rendering.
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::GroupingSets(_) => "grouping-sets",
            QueryKind::KMeans { .. } => "k-means",
        }
    }
}

/// A complete query specification.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Query identifier.
    pub id: QueryId,
    /// Selection predicate applied by Data Contributors (e.g. `age > 65`).
    pub filter: Predicate,
    /// Representative snapshot cardinality `C` (e.g. 2000 patients).
    pub snapshot_cardinality: usize,
    /// The computation.
    pub kind: QueryKind,
    /// Query deadline in virtual seconds (the Resiliency property is
    /// "completes before the deadline").
    pub deadline_secs: f64,
}

impl QuerySpec {
    /// Validates the whole spec against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.snapshot_cardinality == 0 {
            return Err(Error::InvalidQuery("snapshot cardinality is zero".into()));
        }
        if self.deadline_secs <= 0.0 {
            return Err(Error::InvalidQuery("deadline must be positive".into()));
        }
        self.filter.validate(schema)?;
        self.kind.validate(schema)
    }

    /// All columns the query touches (filter + computation): the basis of
    /// the exposure analysis and vertical partitioning.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .filter
            .referenced_columns()
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        out.extend(self.kind.referenced_columns());
        out.sort();
        out.dedup();
        out
    }
}

const KIND_GROUPING_SETS: u8 = 0;
const KIND_KMEANS: u8 = 1;

impl Encode for QueryKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            QueryKind::GroupingSets(q) => {
                KIND_GROUPING_SETS.encode(w);
                q.encode(w);
            }
            QueryKind::KMeans {
                k,
                features,
                heartbeats,
                per_cluster_aggregates,
            } => {
                KIND_KMEANS.encode(w);
                k.encode(w);
                features.encode(w);
                heartbeats.encode(w);
                per_cluster_aggregates.encode(w);
            }
        }
    }
}

impl Decode for QueryKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            KIND_GROUPING_SETS => Ok(QueryKind::GroupingSets(GroupingQuery::decode(r)?)),
            KIND_KMEANS => Ok(QueryKind::KMeans {
                k: usize::decode(r)?,
                features: Vec::<String>::decode(r)?,
                heartbeats: usize::decode(r)?,
                per_cluster_aggregates: Vec::<edgelet_ml::AggSpec>::decode(r)?,
            }),
            tag => Err(Error::Protocol(format!("unknown QueryKind tag {tag}"))),
        }
    }
}

impl Encode for QuerySpec {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.filter.encode(w);
        self.snapshot_cardinality.encode(w);
        self.kind.encode(w);
        self.deadline_secs.encode(w);
    }
}

impl Decode for QuerySpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Self {
            id: QueryId::decode(r)?,
            filter: Predicate::decode(r)?,
            snapshot_cardinality: usize::decode(r)?,
            kind: QueryKind::decode(r)?,
            deadline_secs: f64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_ml::{AggKind, AggSpec};
    use edgelet_store::synth::health_schema;
    use edgelet_store::{CmpOp, Value};

    fn grouping_spec() -> QuerySpec {
        QuerySpec {
            id: QueryId::new(1),
            filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            snapshot_cardinality: 2000,
            kind: QueryKind::GroupingSets(GroupingQuery::new(
                &[&["sex"], &["gir"]],
                vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "bmi")],
            )),
            deadline_secs: 3600.0,
        }
    }

    fn kmeans_spec() -> QuerySpec {
        QuerySpec {
            id: QueryId::new(2),
            filter: Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            snapshot_cardinality: 1000,
            kind: QueryKind::KMeans {
                k: 3,
                features: vec!["age".into(), "bmi".into(), "systolic_bp".into()],
                heartbeats: 5,
                per_cluster_aggregates: vec![AggSpec::over(AggKind::Avg, "gir")],
            },
            deadline_secs: 7200.0,
        }
    }

    #[test]
    fn valid_specs_pass() {
        let schema = health_schema();
        grouping_spec().validate(&schema).unwrap();
        kmeans_spec().validate(&schema).unwrap();
        assert_eq!(grouping_spec().kind.name(), "grouping-sets");
        assert_eq!(kmeans_spec().kind.name(), "k-means");
    }

    #[test]
    fn referenced_columns_cover_filter_and_payload() {
        let cols = grouping_spec().referenced_columns();
        assert_eq!(cols, vec!["age", "bmi", "gir", "sex"]);
        let cols = kmeans_spec().referenced_columns();
        assert_eq!(cols, vec!["age", "bmi", "gir", "systolic_bp"]);
    }

    #[test]
    fn spec_wire_roundtrip_both_kinds() {
        for spec in [grouping_spec(), kmeans_spec()] {
            let bytes = edgelet_wire::to_bytes(&spec);
            let back: QuerySpec = edgelet_wire::from_bytes(&bytes).unwrap();
            assert_eq!(back, spec);
            // Byte-stable re-encode: the durable layer digests these bytes
            // to match a recovered intent against the resubmitted spec.
            assert_eq!(edgelet_wire::to_bytes(&back), bytes);
        }
    }

    #[test]
    fn unknown_kind_tag_rejected() {
        let mut w = edgelet_wire::Writer::new();
        7u8.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(edgelet_wire::from_bytes::<QueryKind>(&bytes).is_err());
    }

    #[test]
    fn invalid_specs_fail() {
        let schema = health_schema();
        let mut s = grouping_spec();
        s.snapshot_cardinality = 0;
        assert!(s.validate(&schema).is_err());

        let mut s = grouping_spec();
        s.deadline_secs = 0.0;
        assert!(s.validate(&schema).is_err());

        let mut s = grouping_spec();
        s.filter = Predicate::cmp("nope", CmpOp::Eq, Value::Int(1));
        assert!(s.validate(&schema).is_err());

        let mut s = kmeans_spec();
        if let QueryKind::KMeans { k, .. } = &mut s.kind {
            *k = 0;
        }
        assert!(s.validate(&schema).is_err());

        let mut s = kmeans_spec();
        if let QueryKind::KMeans { features, .. } = &mut s.kind {
            *features = vec!["sex".into()];
        }
        assert!(s.validate(&schema).is_err());

        let mut s = kmeans_spec();
        if let QueryKind::KMeans { heartbeats, .. } = &mut s.kind {
            *heartbeats = 0;
        }
        assert!(s.validate(&schema).is_err());
    }
}
