//! The discrete-event engine: devices, shards, window execution.
//!
//! Since the sharded rewrite the engine has two executors, selected per
//! run (never per shard count):
//!
//! * **Windowed** — the normal path. Each window spans `[m, m + L)`
//!   where `m` is the global minimum pending event time and `L` the
//!   *lookahead* (the minimum network latency, see
//!   [`NetworkModel::min_latency`]). All shards execute the same window
//!   independently — a classic conservative-PDES bound: no message can
//!   arrive sooner than `L` after it was sent, so nothing a peer shard
//!   does in the open window can affect this shard's slice of it.
//!   Anchoring windows at `m` instead of the aligned grid `[k·L,
//!   (k+1)·L)` means sparse stretches of virtual time cost one barrier
//!   per window *with work in it*, never one per empty grid cell.
//!   Cross-shard sends, metrics, fault counters, and trace records are
//!   buffered and merged at the window barrier in canonical event-key
//!   order ([`crate::merge`]), making results bit-identical for every
//!   shard count: window boundaries derive only from the global minimum
//!   pending time, which is itself identical for every shard count, and
//!   every cross-shard effect lands at `>= m + L`, i.e. in a later
//!   window. `shards = 1` runs the same executor inline.
//! * **Sequential fallback** — used when the lookahead is zero (a
//!   latency model with no lower bound) or the fault plan carries
//!   cross-message state (`skip`/`limit` occurrence windows, `Reorder`
//!   holds). Events pop one at a time in global key order across all
//!   shard queues.
//!
//! Both executors run the exact same per-event code
//! ([`crate::shard::Shard::process_event`]); they differ only in how
//! much reordering freedom the schedule grants.

use crate::actor::Actor;
use crate::churn::{Availability, CrashPlan};
use crate::fault::{Classifier, CrashCause, FaultCounters, FaultPlan, HeldMsg};
use crate::merge::{self, Ctl, MergeTargets};
use crate::metrics::SimMetrics;
use crate::network::NetworkModel;
use crate::scheduler::{Event, EventKind};
use crate::shard::{DeviceState, JItem, RunEnv, Shard, WindowOut, WindowReport};
use crate::time::{Duration, SimTime};
use crate::trace::Trace;
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The link model applied to every message.
    pub network: NetworkModel,
    /// Hard cap on processed events (runaway-protocol backstop).
    pub max_events: u64,
    /// Messages parked in a down device's queue longer than this are
    /// dropped (store-and-forward TTL). `None` keeps them forever.
    pub store_and_forward_ttl: Option<Duration>,
    /// Ring-buffer capacity of the event trace (0 disables tracing).
    pub trace_capacity: usize,
    /// Number of shards devices are partitioned into (0 is treated as
    /// 1). Results are bit-identical for every value; values > 1 run
    /// windows on worker threads.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            network: NetworkModel::default(),
            max_events: 50_000_000,
            store_and_forward_ttl: None,
            trace_capacity: 0,
            shards: 1,
        }
    }
}

/// Per-device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Availability (connection churn) model.
    pub availability: Availability,
    /// Crash-stop plan.
    pub crash: CrashPlan,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            availability: Availability::AlwaysUp,
            crash: CrashPlan::Never,
        }
    }
}

/// A deterministic simulated world of devices and actors.
pub struct Simulation {
    config: SimConfig,
    shards: Vec<Shard>,
    device_count: usize,
    /// Pending events other than churn toggles. When this and `parked`
    /// reach zero the system is quiescent: churn alone cannot create work.
    real_pending: u64,
    /// Messages parked in inboxes/outboxes of down devices.
    parked: u64,
    now: SimTime,
    root_rng: DetRng,
    metrics: SimMetrics,
    trace: Trace,
    /// Maps payload bytes to a protocol message kind (installed by the
    /// harness; the simulator itself is protocol-agnostic).
    classifier: Option<Classifier>,
    /// The installed fault plan and its evaluation state. Kept as
    /// separate fields so the executors can borrow the plan immutably
    /// while advancing the counters.
    fault_plan: Option<FaultPlan>,
    fault_counters: FaultCounters,
    fault_holds: Vec<Option<HeldMsg>>,
    /// Conservative lookahead in µs (minimum network latency). Zero
    /// forces the sequential fallback executor.
    lookahead_us: u64,
    /// Exclusive end of the most recently opened window. Windows
    /// interrupted by a deadline resume and *finish* their span before
    /// quiescence is re-evaluated, so the set of processed events never
    /// depends on where `run_until` deadlines happened to fall.
    cell_open_until: u64,
    /// Recycled window report for the inline (`shards = 1`) windowed
    /// executor: journal/outbound/delta buffers keep their capacity
    /// across windows, so steady-state windows allocate nothing. The
    /// parallel executor recycles reports through its per-shard slots
    /// instead.
    window_scratch: Option<WindowReport>,
}

impl Simulation {
    /// Creates an empty world.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let root = DetRng::new(seed);
        let shard_count = config.shards.max(1);
        let lookahead_us = config.network.min_latency().as_micros();
        let width = lookahead_us.max(1);
        Self {
            shards: (0..shard_count)
                .map(|i| Shard::new(i, shard_count, width))
                .collect(),
            device_count: 0,
            real_pending: 0,
            parked: 0,
            now: SimTime::ZERO,
            root_rng: root,
            metrics: SimMetrics::default(),
            trace: Trace::new(config.trace_capacity),
            classifier: None,
            fault_plan: None,
            fault_counters: FaultCounters::default(),
            fault_holds: Vec::new(),
            lookahead_us,
            cell_open_until: 0,
            window_scratch: None,
            config,
        }
    }

    /// Installs a payload → protocol-kind classifier. Kind-restricted
    /// fault rules and `MsgKind` trace records need one; without it
    /// every payload classifies as `None`.
    pub fn set_classifier(&mut self, classifier: Classifier) {
        self.classifier = Some(classifier);
    }

    /// Installs a fault plan. Replaces any previous plan (and its
    /// occurrence counters).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_counters = FaultCounters::for_plan(&plan);
        self.fault_holds = (0..plan.rules.len()).map(|_| None).collect();
        self.fault_plan = Some(plan);
    }

    /// How many fault-rule firings have happened so far.
    pub fn faults_injected(&self) -> u64 {
        self.fault_counters.total_fired()
    }

    /// The shard that owns a device.
    fn shard_of(&self, device: DeviceId) -> usize {
        device.index() % self.shards.len()
    }

    /// Registers a device; returns its id.
    pub fn add_device(&mut self, cfg: DeviceConfig) -> DeviceId {
        let id = DeviceId::new(self.device_count as u64);
        self.device_count += 1;
        let mut churn_rng = self.root_rng.fork_indexed("churn", id.raw());
        let up = cfg.availability.starts_up();
        let state = DeviceState {
            up,
            crashed: false,
            halted: false,
            actor: None,
            rng: self.root_rng.fork_indexed("device", id.raw()),
            churn_rng: churn_rng.clone(),
            net_rng: self.root_rng.fork_indexed("netdev", id.raw()),
            next_timer: 0,
            spawn_seq: 0,
            cancelled: BTreeSet::new(),
            availability: cfg.availability.clone(),
            outbox: Vec::new(),
            inbox: Vec::new(),
        };
        let s = self.shard_of(id);
        self.shards[s].devices.push(state);

        // Schedule the first availability transition.
        if let Some(period) = cfg.availability.next_period(up, &mut churn_rng) {
            self.shards[s].device_mut(id).churn_rng = churn_rng;
            self.push_external(id, self.now + period, EventKind::ChurnToggle(id));
        }
        // Resolve the crash plan.
        let mut crash_rng = self.root_rng.fork_indexed("crash", id.raw());
        if let Some(t) = cfg.crash.resolve(&mut crash_rng) {
            self.push_external(
                id,
                t.max(self.now),
                EventKind::Crash(id, CrashCause::Organic),
            );
        }
        id
    }

    /// Installs an actor on a device; its `on_start` runs at the current
    /// virtual time (once the simulation is stepped).
    pub fn install_actor(&mut self, device: DeviceId, actor: Box<dyn Actor>) {
        let s = self.shard_of(device);
        let state = self.shards[s].device_mut(device);
        assert!(
            state.actor.is_none(),
            "device {device} already has an actor"
        );
        state.actor = Some(actor);
        self.push_external(device, self.now, EventKind::Start(device));
    }

    /// Schedules a scripted crash (the demo's "power off a device").
    pub fn crash_at(&mut self, device: DeviceId, at: SimTime) {
        self.push_external(
            device,
            at.max(self.now),
            EventKind::Crash(device, CrashCause::Organic),
        );
    }

    /// Injects a message delivery from outside the engine — the entry
    /// point used by [`crate::endpoint::SimEndpoint`] to feed transport
    /// envelopes into the simulated world.
    ///
    /// The caller supplies the envelope's intrinsic key material
    /// (`from`, `seq`): the event is scheduled exactly as if device
    /// `from` had spawned it with sequence number `seq`, so its position
    /// in the canonical `(at, origin, seq)` order is identical to a
    /// natively transmitted message. The origin device's spawn counter
    /// is advanced past `seq` to keep future native keys unique. Both
    /// `from` and `to` must be registered devices.
    pub fn deliver_external(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        seq: u64,
        sent_at: SimTime,
        deliver_at: SimTime,
        payload: edgelet_util::Payload,
    ) {
        assert!(
            from.index() < self.device_count && to.index() < self.device_count,
            "deliver_external endpoints must be registered devices"
        );
        self.real_pending += 1;
        let s = self.shard_of(from);
        {
            let d = self.shards[s].device_mut(from);
            d.spawn_seq = d.spawn_seq.max(seq.saturating_add(1));
        }
        let dest = self.shard_of(to);
        self.shards[dest].queue.push(Event {
            at: deliver_at.max(self.now),
            origin: from.raw(),
            seq,
            kind: EventKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            },
        });
    }

    /// Schedules an event from outside any event handler, drawing the
    /// key from the origin device's spawn counter.
    fn push_external(&mut self, origin: DeviceId, at: SimTime, kind: EventKind) {
        if !kind.is_churn() {
            self.real_pending += 1;
        }
        let s = self.shard_of(origin);
        let seq = {
            let d = self.shards[s].device_mut(origin);
            let seq = d.spawn_seq;
            d.spawn_seq += 1;
            seq
        };
        let dest = kind.target().index() % self.shards.len();
        self.shards[dest].queue.push(Event {
            at,
            origin: origin.raw(),
            seq,
            kind,
        });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Number of shards the device population is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether a device is currently connected.
    pub fn is_up(&self, device: DeviceId) -> bool {
        let d = self.shards[self.shard_of(device)].device(device);
        d.up && !d.crashed
    }

    /// Whether a device has crashed.
    pub fn is_crashed(&self, device: DeviceId) -> bool {
        self.shards[self.shard_of(device)].device(device).crashed
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The event trace (empty unless `trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs until the event queue empties or `max_events` is hit.
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX);
        self.now
    }

    /// Whether payload classification can influence anything this run.
    fn need_kind(&self) -> bool {
        self.classifier.is_some()
            && (self.trace.enabled()
                || self
                    .fault_plan
                    .as_ref()
                    .is_some_and(|p| p.rules.iter().any(|r| r.matcher.kinds.is_some())))
    }

    /// Runs until the queue empties or virtual time would exceed
    /// `deadline`. Returns `true` if events remain (deadline hit first).
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        let window_safe = self
            .fault_plan
            .as_ref()
            .is_none_or(FaultPlan::is_window_safe);
        if self.lookahead_us == 0 || !window_safe {
            self.run_fallback(deadline)
        } else if self.shards.len() == 1 {
            self.run_windowed_single(deadline)
        } else {
            self.run_windowed_parallel(deadline)
        }
    }

    /// Sequential fallback: pops events one at a time in global key
    /// order across all shard queues. Handles zero-lookahead latency
    /// models and stateful fault plans (`skip`/`limit`/`Reorder`).
    fn run_fallback(&mut self, deadline: SimTime) -> bool {
        let shard_count = self.shards.len();
        let need_kind = self.need_kind();
        let mut out = WindowOut::new(shard_count, self.trace.enabled());
        loop {
            // Locate the globally minimal key.
            let mut best: Option<(usize, (SimTime, u64, u64))> = None;
            for (i, sh) in self.shards.iter_mut().enumerate() {
                if let Some(key) = sh.queue.peek_min_key() {
                    if best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((i, key));
                    }
                }
            }
            let Some((si, (at, _, _))) = best else { break };
            // Quiescence: churn toggles alone cannot create new work, so
            // stop once no protocol events or parked messages remain.
            if self.real_pending == 0 && self.parked == 0 {
                break;
            }
            if at > deadline {
                self.now = deadline;
                return true;
            }
            if self.metrics.events_processed >= self.config.max_events {
                return true;
            }
            let Some(ev) = self.shards[si].queue.pop_min() else {
                break;
            };
            self.now = ev.at;
            out.reset();
            let env = RunEnv {
                network: &self.config.network,
                ttl: self.config.store_and_forward_ttl,
                classifier: self.classifier.as_deref(),
                plan: self.fault_plan.as_ref(),
                trace_enabled: self.trace.enabled(),
                need_kind,
                device_count: self.device_count,
                shard_count,
            };
            self.shards[si].process_event(
                ev,
                &env,
                &mut out,
                0,
                &mut self.fault_counters,
                Some(&mut self.fault_holds),
            );
            // Apply effects immediately, in execution order.
            merge::apply_deltas(&mut self.metrics, &out.deltas);
            self.real_pending =
                ((self.real_pending as i64) + out.deltas.real_pending).max(0) as u64;
            self.parked = ((self.parked as i64) + out.deltas.parked).max(0) as u64;
            for entry in out.journal.drain(..) {
                match entry.item {
                    JItem::Trace(ev) => self.trace.record(entry.at, ev),
                    JItem::Observe(name, value) => self.metrics.observe(name, value),
                }
            }
            for dest in 0..shard_count {
                if out.outbound[dest].is_empty() {
                    continue;
                }
                self.shards[dest].queue.push_batch(&mut out.outbound[dest]);
            }
        }
        if deadline != SimTime::MAX {
            self.now = deadline;
        }
        false
    }

    /// Windowed executor, inline (`shards = 1`): the same window/barrier
    /// schedule as the parallel path, without threads.
    fn run_windowed_single(&mut self, deadline: SimTime) -> bool {
        let width = self.lookahead_us.max(1);
        let need_kind = self.need_kind();
        let deadline_us = deadline.as_micros();
        while let Some(min_at) = self.shards[0].queue.peek_min_at().map(SimTime::as_micros) {
            // Quiescence is only evaluated at fresh window boundaries; a
            // half-finished window (deadline interruption) is completed
            // first so progress never depends on the deadline schedule.
            if min_at >= self.cell_open_until && self.real_pending == 0 && self.parked == 0 {
                break;
            }
            if min_at > deadline_us {
                self.now = deadline;
                return true;
            }
            if self.metrics.events_processed >= self.config.max_events {
                return true;
            }
            // The window starts at the minimum pending time and spans one
            // lookahead, touching at most two calendar cells.
            let window_end = min_at.saturating_add(width);
            let first_cell = min_at / width;
            let last_cell = (window_end - 1) / width;
            self.cell_open_until = window_end;
            let budget = self.config.max_events - self.metrics.events_processed;
            let env = RunEnv {
                network: &self.config.network,
                ttl: self.config.store_and_forward_ttl,
                classifier: self.classifier.as_deref(),
                plan: self.fault_plan.as_ref(),
                trace_enabled: self.trace.enabled(),
                need_kind,
                device_count: self.device_count,
                shard_count: 1,
            };
            let report = self.shards[0].run_window(
                &env,
                first_cell,
                last_cell,
                window_end,
                deadline_us,
                budget,
                self.window_scratch.take(),
            );
            let mut targets = MergeTargets {
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                fault_counters: &mut self.fault_counters,
                real_pending: &mut self.real_pending,
                parked: &mut self.parked,
                now: &mut self.now,
            };
            let mut reports = [report];
            merge::merge_reports(&mut reports, &mut targets);
            let [mut report] = reports;
            report.out.reset();
            report.fc.reset();
            self.window_scratch = Some(report);
        }
        if deadline != SimTime::MAX {
            self.now = deadline;
        }
        false
    }

    /// Windowed executor across worker threads (`shards > 1`). One
    /// barrier per window: workers run the open cell concurrently, the
    /// coordinator merges reports and routes cross-shard events.
    fn run_windowed_parallel(&mut self, deadline: SimTime) -> bool {
        let width = self.lookahead_us.max(1);
        let shard_count = self.shards.len();
        let need_kind = self.need_kind();
        let deadline_us = deadline.as_micros();
        let max_events = self.config.max_events;

        let env = RunEnv {
            network: &self.config.network,
            ttl: self.config.store_and_forward_ttl,
            classifier: self.classifier.as_deref(),
            plan: self.fault_plan.as_ref(),
            trace_enabled: self.trace.enabled(),
            need_kind,
            device_count: self.device_count,
            shard_count,
        };
        let shards = &mut self.shards;
        let cell_open_until = &mut self.cell_open_until;
        let mut targets = MergeTargets {
            metrics: &mut self.metrics,
            trace: &mut self.trace,
            fault_counters: &mut self.fault_counters,
            real_pending: &mut self.real_pending,
            parked: &mut self.parked,
            now: &mut self.now,
        };

        let mut min_at: Option<u64> = None;
        for sh in shards.iter_mut() {
            min_at = match (min_at, sh.queue.peek_min_at().map(SimTime::as_micros)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }

        let ctl = Ctl::default();
        let mailboxes: Vec<Mutex<Vec<Event>>> =
            (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();
        let slots: Vec<Mutex<Option<WindowReport>>> =
            (0..shard_count).map(|_| Mutex::new(None)).collect();

        let hit_deadline = std::thread::scope(|scope| {
            for shard in shards.iter_mut() {
                let env = &env;
                let ctl = &ctl;
                let mailboxes = &mailboxes[..];
                let slots = &slots[..];
                scope.spawn(move || merge::worker(shard, env, ctl, mailboxes, slots));
            }
            let mut expected_done = 0u64;
            let mut reports: Vec<WindowReport> = Vec::with_capacity(shard_count);
            let result = loop {
                let Some(m) = min_at else { break false };
                if m >= *cell_open_until && *targets.real_pending == 0 && *targets.parked == 0 {
                    break false;
                }
                if m > deadline_us {
                    *targets.now = deadline;
                    break true;
                }
                if targets.metrics.events_processed >= max_events {
                    break true;
                }
                // Same window geometry as the inline executor: one
                // lookahead starting at the global minimum pending time.
                let window_end = m.saturating_add(width);
                let first_cell = m / width;
                let last_cell = (window_end - 1) / width;
                *cell_open_until = window_end;
                ctl.first_cell.store(first_cell, Ordering::Relaxed);
                ctl.last_cell.store(last_cell, Ordering::Relaxed);
                ctl.window_end.store(window_end, Ordering::Relaxed);
                ctl.clip.store(deadline_us, Ordering::Relaxed);
                ctl.budget.store(
                    max_events - targets.metrics.events_processed,
                    Ordering::Relaxed,
                );
                // The gate's internal lock publishes the Relaxed stores
                // above to workers woken by this bump.
                ctl.generation.add(1);
                expected_done += shard_count as u64;
                ctl.done.wait_min(expected_done);
                reports.clear();
                let mut missing = false;
                for slot in &slots {
                    match merge::lock(slot).take() {
                        Some(r) => reports.push(r),
                        None => missing = true,
                    }
                }
                if missing {
                    // A worker died (actor panic); leaving the scope
                    // joins the workers and propagates the panic.
                    break false;
                }
                let summary = merge::merge_reports(&mut reports, &mut targets);
                min_at = summary.next_min_at;
                // Hand the emptied reports back through the slots so the
                // next window reuses their buffers.
                for (slot, mut report) in slots.iter().zip(reports.drain(..)) {
                    report.out.reset();
                    report.fc.reset();
                    *merge::lock(slot) = Some(report);
                }
            };
            ctl.stop.store(true, Ordering::Release);
            // Wake parked workers so they observe `stop` and exit.
            ctl.generation.add(1);
            result
        });
        // Workers are joined; flush cross-shard events still sitting in
        // mailboxes (a deadline or budget stop can leave some in flight)
        // back into the owning queues.
        for (dest, mb) in mailboxes.into_iter().enumerate() {
            let mut evs = mb.into_inner().unwrap_or_else(|e| e.into_inner());
            self.shards[dest].queue.push_batch(&mut evs);
        }
        if hit_deadline {
            return true;
        }
        if deadline != SimTime::MAX {
            self.now = deadline;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Context, TimerToken};
    use crate::fault::{FaultAction, FaultRule};
    use crate::network::LatencyModel;
    use crate::trace::TraceEvent;
    use std::sync::{Arc, Mutex};

    /// Replies "pong" to any message and counts what it sees.
    struct Pong {
        seen: Arc<Mutex<Vec<Vec<u8>>>>,
    }
    impl Actor for Pong {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]) {
            self.seen.lock().unwrap().push(payload.to_vec());
            ctx.send(from, b"pong".to_vec());
        }
    }

    /// Sends `count` pings at start, records replies.
    struct Ping {
        target: DeviceId,
        count: usize,
        replies: Arc<Mutex<usize>>,
    }
    impl Actor for Ping {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(self.target, b"ping".to_vec());
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
            assert_eq!(payload, b"pong");
            *self.replies.lock().unwrap() += 1;
        }
    }

    fn reliable_sim(seed: u64) -> Simulation {
        Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(10)),
                ..SimConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = reliable_sim(1);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let replies = Arc::new(Mutex::new(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 3,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        let end = sim.run();
        assert_eq!(*replies.lock().unwrap(), 3);
        assert_eq!(seen.lock().unwrap().len(), 3);
        assert_eq!(sim.metrics().messages_sent, 6);
        assert_eq!(sim.metrics().messages_delivered, 6);
        // Two 10ms hops.
        assert_eq!(end, SimTime::from_micros(20_000));
        assert!((sim.metrics().delivery_delay.mean() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                SimConfig {
                    network: NetworkModel::lossy(
                        Duration::from_millis(1),
                        Duration::from_millis(50),
                        0.2,
                    ),
                    ..SimConfig::default()
                },
                seed,
            );
            let a = sim.add_device(DeviceConfig::default());
            let b = sim.add_device(DeviceConfig::default());
            let replies = Arc::new(Mutex::new(0));
            sim.install_actor(
                a,
                Box::new(Ping {
                    target: b,
                    count: 100,
                    replies: replies.clone(),
                }),
            );
            sim.install_actor(
                b,
                Box::new(Pong {
                    seen: Arc::new(Mutex::new(Vec::new())),
                }),
            );
            sim.run();
            let reply_count = *replies.lock().unwrap();
            (
                reply_count,
                sim.metrics().messages_dropped,
                sim.now().as_micros(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn drops_reduce_deliveries() {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::lossy(Duration::ZERO, Duration::from_millis(1), 0.5),
                ..SimConfig::default()
            },
            3,
        );
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let replies = Arc::new(Mutex::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 1000,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(
            b,
            Box::new(Pong {
                seen: Arc::new(Mutex::new(Vec::new())),
            }),
        );
        sim.run();
        let m = sim.metrics();
        assert!(m.messages_dropped > 0);
        // Roughly 25% of pings should produce replies (0.5 * 0.5).
        let r = *replies.lock().unwrap() as f64 / 1000.0;
        assert!((r - 0.25).abs() < 0.05, "reply rate {r}");
    }

    /// Timer-driven actor used by timer tests.
    struct TimerActor {
        fired: Arc<Mutex<Vec<u64>>>,
        cancel_second: bool,
    }
    impl Actor for TimerActor {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let _t1 = ctx.set_timer(Duration::from_millis(10));
            let t2 = ctx.set_timer(Duration::from_millis(20));
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
            self.fired.lock().unwrap().push(token.0);
            ctx.observe("fired", 1.0);
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim = reliable_sim(5);
        let a = sim.add_device(DeviceConfig::default());
        let fired = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(TimerActor {
                fired: fired.clone(),
                cancel_second: true,
            }),
        );
        let end = sim.run();
        assert_eq!(*fired.lock().unwrap(), vec![0]);
        assert_eq!(end, SimTime::from_micros(20_000)); // cancelled event still pops
        assert_eq!(sim.metrics().observations["fired"].count(), 1);
    }

    #[test]
    fn crashed_device_stops_everything() {
        let mut sim = reliable_sim(6);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig {
            availability: Availability::AlwaysUp,
            crash: CrashPlan::At(SimTime::from_micros(5_000)),
        });
        let replies = Arc::new(Mutex::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 4,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(
            b,
            Box::new(Pong {
                seen: Arc::new(Mutex::new(Vec::new())),
            }),
        );
        sim.run();
        // Pings arrive at t=10ms, after the crash at t=5ms.
        assert_eq!(*replies.lock().unwrap(), 0);
        assert_eq!(sim.metrics().crashes, 1);
        assert_eq!(sim.metrics().messages_to_crashed, 4);
        assert!(sim.is_crashed(b));
        assert!(!sim.is_up(b));
    }

    #[test]
    fn down_device_defers_and_recovers() {
        // b starts down and reconnects via churn; the ping waits in b's
        // inbox and is delivered on reconnection.
        let mut sim = reliable_sim(9);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig {
            availability: Availability::Intermittent {
                mean_up: Duration::from_secs(1_000_000),
                mean_down: Duration::from_secs(60),
                start_up: false,
            },
            crash: CrashPlan::Never,
        });
        let replies = Arc::new(Mutex::new(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 1,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        assert!(!sim.is_up(b));
        sim.run();
        assert_eq!(seen.lock().unwrap().len(), 1);
        assert_eq!(*replies.lock().unwrap(), 1);
        assert!(sim.metrics().messages_deferred >= 1);
        // Delivery delay includes the down period, so it exceeds the link
        // latency alone.
        assert!(sim.metrics().delivery_delay.max() > 0.010);
    }

    #[test]
    fn ttl_discards_stale_parked_messages() {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(1)),
                store_and_forward_ttl: Some(Duration::from_secs(1)),
                ..SimConfig::default()
            },
            11,
        );
        let a = sim.add_device(DeviceConfig::default());
        // Down for ~1h on average: far beyond the 1s TTL.
        let b = sim.add_device(DeviceConfig {
            availability: Availability::Intermittent {
                mean_up: Duration::from_secs(1_000_000),
                mean_down: Duration::from_secs(3_600),
                start_up: false,
            },
            crash: CrashPlan::Never,
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let replies = Arc::new(Mutex::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 1,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        sim.run();
        // The message either expired (down > 1s) or was delivered (down <=
        // 1s); with this seed verify via the TTL bookkeeping.
        let m = sim.metrics();
        assert_eq!(
            seen.lock().unwrap().len() as u64 + m.messages_dropped,
            1,
            "message must be delivered or TTL-dropped"
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = reliable_sim(13);
        let a = sim.add_device(DeviceConfig::default());
        let fired = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(TimerActor {
                fired: fired.clone(),
                cancel_second: false,
            }),
        );
        let more = sim.run_until(SimTime::from_micros(15_000));
        assert!(more, "the 20ms timer is still pending");
        assert_eq!(*fired.lock().unwrap(), vec![0]);
        assert_eq!(sim.now(), SimTime::from_micros(15_000));
        let more = sim.run_until(SimTime::from_micros(100_000));
        assert!(!more);
        assert_eq!(*fired.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn corruption_flips_a_byte() {
        struct Recorder {
            seen: Arc<Mutex<Vec<Vec<u8>>>>,
        }
        impl Actor for Recorder {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
                self.seen.lock().unwrap().push(payload.to_vec());
            }
        }
        struct Sender {
            target: DeviceId,
        }
        impl Actor for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..200 {
                    ctx.send(self.target, vec![0u8; 8]);
                }
            }
            fn on_message(&mut self, _c: &mut Context<'_>, _f: DeviceId, _p: &[u8]) {}
        }
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel {
                    latency: LatencyModel::Fixed(Duration::from_millis(1)),
                    drop_probability: 0.0,
                    corruption_probability: 0.5,
                },
                ..SimConfig::default()
            },
            17,
        );
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let seen = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(a, Box::new(Sender { target: b }));
        sim.install_actor(b, Box::new(Recorder { seen: seen.clone() }));
        sim.run();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 200);
        let corrupted = seen.iter().filter(|p| p.iter().any(|&b| b != 0)).count();
        assert_eq!(corrupted as u64, sim.metrics().messages_corrupted);
        assert!(corrupted > 60 && corrupted < 140, "corrupted {corrupted}");
    }

    #[test]
    fn halt_stops_an_actor() {
        struct HaltOnFirst {
            got: Arc<Mutex<usize>>,
        }
        impl Actor for HaltOnFirst {
            fn on_message(&mut self, ctx: &mut Context<'_>, _f: DeviceId, _p: &[u8]) {
                *self.got.lock().unwrap() += 1;
                ctx.halt();
            }
        }
        let mut sim = reliable_sim(19);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let got = Arc::new(Mutex::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 5,
                replies: Arc::new(Mutex::new(0)),
            }),
        );
        sim.install_actor(b, Box::new(HaltOnFirst { got: got.clone() }));
        sim.run();
        assert_eq!(*got.lock().unwrap(), 1, "actor must stop after halting");
    }

    #[test]
    fn max_events_backstop() {
        /// Two actors ping each other forever.
        struct Echo;
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(DeviceId::new(1 - ctx.device().raw()), vec![1]);
            }
            fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, _p: &[u8]) {
                ctx.send(from, vec![1]);
            }
        }
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(1)),
                max_events: 1_000,
                ..SimConfig::default()
            },
            23,
        );
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        sim.install_actor(a, Box::new(Echo));
        sim.install_actor(b, Box::new(Echo));
        let more = sim.run_until(SimTime::MAX);
        assert!(more, "backstop must stop the infinite exchange");
        assert_eq!(sim.metrics().events_processed, 1_000);
    }

    /// ping→1, pong→2 (anything else unclassifiable).
    fn test_classifier() -> crate::fault::Classifier {
        Box::new(|bytes: &[u8]| match bytes {
            b"ping" => Some(1),
            b"pong" => Some(2),
            _ => None,
        })
    }

    type PingPongProbes = (Arc<Mutex<usize>>, Arc<Mutex<Vec<Vec<u8>>>>);

    fn ping_pong_world(sim: &mut Simulation, count: usize) -> PingPongProbes {
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let replies = Arc::new(Mutex::new(0));
        let seen = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        (replies, seen)
    }

    #[test]
    fn fault_drop_rule_discards_matched_messages() {
        let mut sim = reliable_sim(1);
        sim.set_classifier(test_classifier());
        sim.set_fault_plan(
            FaultPlan::new().rule(FaultRule::new(FaultAction::Drop).on_kinds(&[1]).limit(1)),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        assert_eq!(seen.lock().unwrap().len(), 2, "first ping dropped");
        assert_eq!(*replies.lock().unwrap(), 2);
        assert_eq!(sim.metrics().messages_dropped, 1);
        assert_eq!(sim.faults_injected(), 1);
    }

    #[test]
    fn fault_duplicate_rule_delivers_twice() {
        let mut sim = reliable_sim(1);
        sim.set_classifier(test_classifier());
        sim.set_fault_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultAction::Duplicate {
                    extra_delay: Duration::ZERO,
                })
                .on_kinds(&[1])
                .limit(1),
            ),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        assert_eq!(seen.lock().unwrap().len(), 4, "first ping delivered twice");
        assert_eq!(*replies.lock().unwrap(), 4);
    }

    #[test]
    fn fault_delay_rule_postpones_delivery() {
        let run = |delay_ms: u64| {
            let mut sim = reliable_sim(1);
            sim.set_classifier(test_classifier());
            if delay_ms > 0 {
                sim.set_fault_plan(
                    FaultPlan::new().rule(
                        FaultRule::new(FaultAction::Delay(Duration::from_millis(delay_ms)))
                            .on_kinds(&[1]),
                    ),
                );
            }
            let (replies, _) = ping_pong_world(&mut sim, 3);
            let end = sim.run();
            assert_eq!(*replies.lock().unwrap(), 3, "delayed, not lost");
            end
        };
        let baseline = run(0);
        let delayed = run(500);
        assert_eq!(delayed, baseline + Duration::from_millis(500));
    }

    #[test]
    fn fault_reorder_rule_swaps_consecutive_matches() {
        /// Sends two distinct payloads in one batch.
        struct TwoSends {
            target: DeviceId,
        }
        impl Actor for TwoSends {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.target, b"first".to_vec());
                ctx.send(self.target, b"second".to_vec());
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {}
        }
        /// Records payloads without replying.
        struct Sink {
            seen: Arc<Mutex<Vec<Vec<u8>>>>,
        }
        impl Actor for Sink {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
                self.seen.lock().unwrap().push(payload.to_vec());
            }
        }
        let mut sim = reliable_sim(1);
        sim.set_fault_plan(FaultPlan::new().rule(FaultRule::new(FaultAction::Reorder).limit(2)));
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let seen = Arc::new(Mutex::new(Vec::new()));
        sim.install_actor(a, Box::new(TwoSends { target: b }));
        sim.install_actor(b, Box::new(Sink { seen: seen.clone() }));
        sim.run();
        assert_eq!(
            *seen.lock().unwrap(),
            vec![b"second".to_vec(), b"first".to_vec()],
            "the held first message lands after the second"
        );
    }

    #[test]
    fn fault_crash_receiver_consumes_the_trigger() {
        let mut sim = reliable_sim(1);
        sim.set_classifier(test_classifier());
        // Crash the pong server the instant its second ping arrives.
        sim.set_fault_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashReceiver)
                    .on_kinds(&[1])
                    .skip(1)
                    .limit(1),
            ),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        assert_eq!(
            seen.lock().unwrap().len(),
            1,
            "only the first ping was processed"
        );
        assert_eq!(*replies.lock().unwrap(), 1);
        assert_eq!(sim.metrics().crashes, 1);
    }

    #[test]
    fn fault_crash_sender_fires_after_the_batch() {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(10)),
                trace_capacity: 64,
                ..SimConfig::default()
            },
            1,
        );
        sim.set_classifier(test_classifier());
        sim.set_fault_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashSender)
                    .on_kinds(&[1])
                    .limit(1),
            ),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        // All three pings left in the same on_start batch before the
        // crash landed; every pong then hit a crashed device.
        assert_eq!(seen.lock().unwrap().len(), 3);
        assert_eq!(*replies.lock().unwrap(), 0);
        assert_eq!(sim.metrics().crashes, 1);
        assert_eq!(sim.metrics().messages_to_crashed, 3);
        let injected = sim
            .trace()
            .records()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::Crashed {
                        cause: CrashCause::Injected { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(injected, 1, "the crash is attributed to the rule");
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let mut sim = Simulation::new(
                SimConfig {
                    network: NetworkModel::lossy(
                        Duration::from_millis(1),
                        Duration::from_millis(50),
                        0.1,
                    ),
                    trace_capacity: 1 << 12,
                    ..SimConfig::default()
                },
                77,
            );
            sim.set_classifier(test_classifier());
            sim.set_fault_plan(
                FaultPlan::new()
                    .rule(
                        FaultRule::new(FaultAction::Drop)
                            .on_kinds(&[2])
                            .skip(3)
                            .limit(2),
                    )
                    .rule(
                        FaultRule::new(FaultAction::Duplicate {
                            extra_delay: Duration::from_millis(200),
                        })
                        .on_kinds(&[1])
                        .skip(5)
                        .limit(1),
                    ),
            );
            let (replies, _) = ping_pong_world(&mut sim, 50);
            sim.run();
            let reply_count = *replies.lock().unwrap();
            (reply_count, sim.faults_injected(), sim.trace().digest())
        };
        assert_eq!(run(), run());
    }

    /// A small churny gossip world used by the shard-parity tests.
    struct Gossiper {
        peers: u64,
        budget: usize,
    }
    impl Actor for Gossiper {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let peer = ctx.rng().range(0..self.peers);
            ctx.send(DeviceId::new(peer), b"gossip".to_vec());
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let peer = ctx.rng().range(0..self.peers);
            ctx.send(DeviceId::new(peer), b"gossip".to_vec());
            ctx.observe("hops", 1.0);
        }
    }

    fn parity_fingerprint(
        shards: usize,
        seed: u64,
        with_faults: bool,
    ) -> (u64, u64, u64, u64, u64, u64, u64) {
        let n = 18u64;
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::lossy(
                    Duration::from_millis(5),
                    Duration::from_millis(90),
                    0.1,
                ),
                trace_capacity: 1 << 13,
                shards,
                ..SimConfig::default()
            },
            seed,
        );
        if with_faults {
            sim.set_classifier(test_classifier());
            // Window-safe plan: stateless drop + receiver crash rules.
            sim.set_fault_plan(
                FaultPlan::new()
                    .rule(
                        FaultRule::new(FaultAction::Drop)
                            .from(&[DeviceId::new(2)])
                            .after(SimTime::from_micros(50_000)),
                    )
                    .rule(FaultRule::new(FaultAction::CrashReceiver).to(&[DeviceId::new(5)])),
            );
        }
        for i in 0..n {
            let availability = if i % 3 == 0 {
                Availability::Intermittent {
                    mean_up: Duration::from_secs(2),
                    mean_down: Duration::from_secs(1),
                    start_up: true,
                }
            } else {
                Availability::AlwaysUp
            };
            sim.add_device(DeviceConfig {
                availability,
                crash: CrashPlan::Never,
            });
        }
        for i in 0..n {
            sim.install_actor(
                DeviceId::new(i),
                Box::new(Gossiper {
                    peers: n,
                    budget: 30,
                }),
            );
        }
        sim.run_until(SimTime::from_micros(30_000_000));
        let m = sim.metrics();
        (
            m.messages_sent,
            m.messages_delivered,
            m.messages_dropped,
            m.crashes,
            m.events_processed,
            sim.faults_injected(),
            sim.trace().digest(),
        )
    }

    #[test]
    fn shard_counts_are_bit_identical() {
        for seed in [1u64, 42, 9_000] {
            let base = parity_fingerprint(1, seed, false);
            for shards in [2usize, 4, 8] {
                assert_eq!(
                    parity_fingerprint(shards, seed, false),
                    base,
                    "seed {seed} shards {shards}"
                );
            }
        }
    }

    #[test]
    fn shard_counts_are_bit_identical_under_faults() {
        for seed in [7u64, 123] {
            let base = parity_fingerprint(1, seed, true);
            assert!(base.5 > 0, "fault plan must actually fire (seed {seed})");
            for shards in [2usize, 4] {
                assert_eq!(
                    parity_fingerprint(shards, seed, true),
                    base,
                    "seed {seed} shards {shards}"
                );
            }
        }
    }
}
