//! The discrete-event engine: devices, event heap, command application.

use crate::actor::{Actor, Command, Context, TimerToken};
use crate::churn::{Availability, CrashPlan};
use crate::fault::{
    Classifier, CrashCause, FaultAction, FaultPlan, FaultRuntime, HeldMsg, MatchPoint,
};
use crate::metrics::SimMetrics;
use crate::network::{Fate, NetworkModel};
use crate::time::{Duration, SimTime};
use crate::trace::{Trace, TraceEvent};
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::Payload;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The link model applied to every message.
    pub network: NetworkModel,
    /// Hard cap on processed events (runaway-protocol backstop).
    pub max_events: u64,
    /// Messages parked in a down device's queue longer than this are
    /// dropped (store-and-forward TTL). `None` keeps them forever.
    pub store_and_forward_ttl: Option<Duration>,
    /// Ring-buffer capacity of the event trace (0 disables tracing).
    pub trace_capacity: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            network: NetworkModel::default(),
            max_events: 50_000_000,
            store_and_forward_ttl: None,
            trace_capacity: 0,
        }
    }
}

/// Per-device configuration.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Availability (connection churn) model.
    pub availability: Availability,
    /// Crash-stop plan.
    pub crash: CrashPlan,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            availability: Availability::AlwaysUp,
            crash: CrashPlan::Never,
        }
    }
}

#[derive(Debug)]
enum EventKind {
    Start(DeviceId),
    Deliver {
        to: DeviceId,
        from: DeviceId,
        payload: Payload,
        sent_at: SimTime,
    },
    Timer {
        device: DeviceId,
        token: TimerToken,
    },
    ChurnToggle(DeviceId),
    Crash(DeviceId, CrashCause),
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct DeviceState {
    up: bool,
    crashed: bool,
    halted: bool,
    actor: Option<Box<dyn Actor>>,
    rng: DetRng,
    churn_rng: DetRng,
    next_timer: u64,
    cancelled: BTreeSet<TimerToken>,
    availability: Availability,
    /// Messages waiting for this (down) sender to reconnect.
    outbox: Vec<(DeviceId, Payload, SimTime)>,
    /// Messages waiting for this (down) receiver to reconnect.
    inbox: Vec<(DeviceId, Payload, SimTime)>,
}

/// A deterministic simulated world of devices and actors.
pub struct Simulation {
    config: SimConfig,
    devices: Vec<DeviceState>,
    heap: BinaryHeap<Event>,
    next_seq: u64,
    /// Pending events other than churn toggles. When this and `parked`
    /// reach zero the system is quiescent: churn alone cannot create work.
    real_pending: u64,
    /// Messages parked in inboxes/outboxes of down devices.
    parked: u64,
    now: SimTime,
    net_rng: DetRng,
    root_rng: DetRng,
    metrics: SimMetrics,
    trace: Trace,
    /// Maps payload bytes to a protocol message kind (installed by the
    /// harness; the simulator itself is protocol-agnostic).
    classifier: Option<Classifier>,
    /// Evaluation state for the installed fault plan, if any.
    faults: Option<FaultRuntime>,
}

impl Simulation {
    /// Creates an empty world.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        let root = DetRng::new(seed);
        Self {
            devices: Vec::new(),
            heap: BinaryHeap::new(),
            next_seq: 0,
            real_pending: 0,
            parked: 0,
            now: SimTime::ZERO,
            net_rng: root.fork("network"),
            root_rng: root,
            metrics: SimMetrics::default(),
            trace: Trace::new(config.trace_capacity),
            classifier: None,
            faults: None,
            config,
        }
    }

    /// Installs a payload → protocol-kind classifier. Kind-restricted
    /// fault rules and `MsgKind` trace records need one; without it
    /// every payload classifies as `None`.
    pub fn set_classifier(&mut self, classifier: Classifier) {
        self.classifier = Some(classifier);
    }

    /// Installs a fault plan. Replaces any previous plan (and its
    /// occurrence counters).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultRuntime::new(plan));
    }

    /// How many fault-rule firings have happened so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, |rt| rt.total_fired())
    }

    /// Registers a device; returns its id.
    pub fn add_device(&mut self, cfg: DeviceConfig) -> DeviceId {
        let id = DeviceId::new(self.devices.len() as u64);
        let mut churn_rng = self.root_rng.fork_indexed("churn", id.raw());
        let up = cfg.availability.starts_up();
        let state = DeviceState {
            up,
            crashed: false,
            halted: false,
            actor: None,
            rng: self.root_rng.fork_indexed("device", id.raw()),
            next_timer: 0,
            cancelled: BTreeSet::new(),
            availability: cfg.availability.clone(),
            outbox: Vec::new(),
            inbox: Vec::new(),
            churn_rng: churn_rng.clone(),
        };
        self.devices.push(state);

        // Schedule the first availability transition.
        if let Some(period) = cfg.availability.next_period(up, &mut churn_rng) {
            self.devices[id.index()].churn_rng = churn_rng;
            self.push(self.now + period, EventKind::ChurnToggle(id));
        }
        // Resolve the crash plan.
        let mut crash_rng = self.root_rng.fork_indexed("crash", id.raw());
        if let Some(t) = cfg.crash.resolve(&mut crash_rng) {
            self.push(t.max(self.now), EventKind::Crash(id, CrashCause::Organic));
        }
        id
    }

    /// Installs an actor on a device; its `on_start` runs at the current
    /// virtual time (once the simulation is stepped).
    pub fn install_actor(&mut self, device: DeviceId, actor: Box<dyn Actor>) {
        let state = &mut self.devices[device.index()];
        assert!(
            state.actor.is_none(),
            "device {device} already has an actor"
        );
        state.actor = Some(actor);
        self.push(self.now, EventKind::Start(device));
    }

    /// Schedules a scripted crash (the demo's "power off a device").
    pub fn crash_at(&mut self, device: DeviceId, at: SimTime) {
        self.push(
            at.max(self.now),
            EventKind::Crash(device, CrashCause::Organic),
        );
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Whether a device is currently connected.
    pub fn is_up(&self, device: DeviceId) -> bool {
        let d = &self.devices[device.index()];
        d.up && !d.crashed
    }

    /// Whether a device has crashed.
    pub fn is_crashed(&self, device: DeviceId) -> bool {
        self.devices[device.index()].crashed
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The event trace (empty unless `trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Runs until the event queue empties or `max_events` is hit.
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX);
        self.now
    }

    /// Runs until the queue empties or virtual time would exceed
    /// `deadline`. Returns `true` if events remain (deadline hit first).
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        while let Some(at) = self.heap.peek().map(|ev| ev.at) {
            // Quiescence: churn toggles alone cannot create new work, so
            // stop once no protocol events or parked messages remain.
            if self.real_pending == 0 && self.parked == 0 {
                break;
            }
            if at > deadline {
                self.now = deadline;
                return true;
            }
            if self.metrics.events_processed >= self.config.max_events {
                return true;
            }
            let Some(ev) = self.heap.pop() else { break };
            if !matches!(ev.kind, EventKind::ChurnToggle(_)) {
                self.real_pending -= 1;
            }
            self.now = ev.at;
            self.metrics.events_processed += 1;
            self.dispatch(ev.kind);
        }
        if deadline != SimTime::MAX {
            self.now = deadline;
        }
        false
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        if !matches!(kind, EventKind::ChurnToggle(_)) {
            self.real_pending += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(device) => {
                self.with_actor(device, |actor, ctx| actor.on_start(ctx));
            }
            EventKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            } => self.handle_delivery(to, from, payload, sent_at),
            EventKind::Timer { device, token } => {
                let state = &mut self.devices[device.index()];
                if state.crashed || state.halted {
                    return;
                }
                if state.cancelled.remove(&token) {
                    return;
                }
                self.trace.record_with(self.now, || TraceEvent::TimerFired {
                    device,
                    token: token.0,
                });
                self.with_actor(device, |actor, ctx| actor.on_timer(ctx, token));
            }
            EventKind::ChurnToggle(device) => self.handle_churn(device),
            EventKind::Crash(device, cause) => self.handle_crash(device, cause),
        }
    }

    fn handle_delivery(
        &mut self,
        to: DeviceId,
        from: DeviceId,
        payload: Payload,
        sent_at: SimTime,
    ) {
        let state = &mut self.devices[to.index()];
        if state.crashed {
            self.metrics.messages_to_crashed += 1;
            return;
        }
        if !state.up {
            // Store-and-forward: park until reconnection.
            self.metrics.messages_deferred += 1;
            self.parked += 1;
            state.inbox.push((from, payload, sent_at));
            return;
        }
        if state.halted || state.actor.is_none() {
            return;
        }
        // Fault hook (Deliver point): a CrashReceiver rule consumes the
        // triggering message — the device dies at the instant of
        // delivery, before its actor sees the payload.
        if self.faults.is_some() {
            let kind = self.classify(&payload);
            let decision = match self.faults.as_mut() {
                Some(runtime) => runtime.evaluate(MatchPoint::Deliver, kind, from, to, self.now),
                None => None,
            };
            if let Some((rule, action)) = decision {
                let fault_kind = action.kind();
                self.trace
                    .record_with(self.now, || TraceEvent::FaultInjected {
                        rule,
                        kind: fault_kind,
                        from,
                        to,
                    });
                self.metrics.messages_to_crashed += 1;
                self.handle_crash(to, CrashCause::Injected { rule });
                return;
            }
        }
        let delay = self.now.since(sent_at).as_secs_f64();
        self.metrics.messages_delivered += 1;
        self.metrics.delivery_delay.push(delay);
        self.trace
            .record_with(self.now, || TraceEvent::Delivered { from, to });
        self.with_actor(to, |actor, ctx| actor.on_message(ctx, from, &payload));
    }

    fn handle_churn(&mut self, device: DeviceId) {
        let state = &mut self.devices[device.index()];
        if state.crashed {
            return;
        }
        state.up = !state.up;
        let now_up = state.up;
        if !now_up {
            self.metrics.disconnections += 1;
            self.trace
                .record_with(self.now, || TraceEvent::WentDown(device));
        } else {
            self.trace
                .record_with(self.now, || TraceEvent::CameUp(device));
        }
        // Schedule the next transition.
        let mut churn_rng = state.churn_rng.clone();
        if let Some(period) = state.availability.next_period(now_up, &mut churn_rng) {
            self.devices[device.index()].churn_rng = churn_rng;
            self.push(self.now + period, EventKind::ChurnToggle(device));
        }

        if now_up {
            // Flush parked traffic. Inbox messages re-enter as immediate
            // deliveries; outbox messages now traverse the network.
            let state = &mut self.devices[device.index()];
            let inbox = std::mem::take(&mut state.inbox);
            let outbox = std::mem::take(&mut state.outbox);
            self.parked -= (inbox.len() + outbox.len()) as u64;
            let ttl = self.config.store_and_forward_ttl;
            for (from, payload, sent_at) in inbox {
                if let Some(ttl) = ttl {
                    if self.now.since(sent_at) > ttl {
                        self.metrics.messages_dropped += 1;
                        continue;
                    }
                }
                self.push(
                    self.now,
                    EventKind::Deliver {
                        to: device,
                        from,
                        payload,
                        sent_at,
                    },
                );
            }
            for (to, payload, sent_at) in outbox {
                if let Some(ttl) = ttl {
                    if self.now.since(sent_at) > ttl {
                        self.metrics.messages_dropped += 1;
                        continue;
                    }
                }
                self.route(device, to, payload, sent_at);
            }
            self.with_actor(device, |actor, ctx| actor.on_reconnect(ctx));
        }
    }

    fn handle_crash(&mut self, device: DeviceId, cause: CrashCause) {
        let state = &mut self.devices[device.index()];
        if state.crashed {
            return;
        }
        state.crashed = true;
        state.up = false;
        state.actor = None;
        let cleared = (state.inbox.len() + state.outbox.len()) as u64;
        state.inbox.clear();
        state.outbox.clear();
        self.parked -= cleared;
        self.metrics.crashes += 1;
        self.trace
            .record_with(self.now, || TraceEvent::Crashed { device, cause });
    }

    /// Runs a callback on a device's actor, then applies its commands.
    fn with_actor<F>(&mut self, device: DeviceId, f: F)
    where
        F: FnOnce(&mut Box<dyn Actor>, &mut Context<'_>),
    {
        let now = self.now;
        let state = &mut self.devices[device.index()];
        if state.crashed || state.halted {
            return;
        }
        let Some(mut actor) = state.actor.take() else {
            return;
        };
        let mut ctx = Context::new(device, now, &mut state.rng, &mut state.next_timer);
        f(&mut actor, &mut ctx);
        let commands = std::mem::take(&mut ctx.commands);
        drop(ctx);
        state.actor = Some(actor);
        self.apply_commands(device, commands);
    }

    fn apply_commands(&mut self, device: DeviceId, commands: Vec<Command>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, payload } => self.submit_send(device, to, payload),
                Command::Broadcast { to, payload } => {
                    // Every recipient shares the same buffer: fan-out is
                    // a reference-count bump per target, not a copy.
                    for target in to {
                        self.submit_send(device, target, payload.share());
                    }
                }
                Command::SetTimer { token, fire_at } => {
                    self.push(fire_at, EventKind::Timer { device, token });
                }
                Command::CancelTimer { token } => {
                    self.devices[device.index()].cancelled.insert(token);
                }
                Command::Observe { name, value } => {
                    self.metrics.observe(name, value);
                }
                Command::Halt => {
                    self.devices[device.index()].halted = true;
                }
            }
        }
    }

    fn submit_send(&mut self, from: DeviceId, to: DeviceId, payload: Payload) {
        self.metrics.messages_sent += 1;
        self.metrics.bytes_sent += payload.len() as u64;
        let sender = &mut self.devices[from.index()];
        if !sender.up {
            // Sender is offline: park in the outbox until reconnection.
            self.metrics.messages_deferred += 1;
            self.parked += 1;
            sender.outbox.push((to, payload, self.now));
            return;
        }
        self.route(from, to, payload, self.now);
    }

    /// Classifies a payload via the installed classifier, if any.
    fn classify(&self, payload: &Payload) -> Option<u16> {
        self.classifier.as_ref().and_then(|c| c(payload.as_slice()))
    }

    /// Evaluates send-point fault rules, then applies the network model
    /// and schedules delivery.
    fn route(&mut self, from: DeviceId, to: DeviceId, payload: Payload, sent_at: SimTime) {
        if to.index() >= self.devices.len() {
            self.metrics.messages_dropped += 1;
            return;
        }
        // Classification is only needed when a fault plan can consume it
        // or when the trace wants MsgKind records.
        let kind = if self.classifier.is_some() && (self.faults.is_some() || self.trace.enabled()) {
            self.classify(&payload)
        } else {
            None
        };
        if let Some(k) = kind {
            self.trace
                .record_with(self.now, || TraceEvent::MsgKind { from, to, kind: k });
        }
        let decision = match self.faults.as_mut() {
            Some(rt) => rt.evaluate(MatchPoint::Send, kind, from, to, self.now),
            None => None,
        };
        let Some((rule, action)) = decision else {
            self.transmit(from, to, payload, sent_at, Duration::ZERO, None);
            return;
        };
        let fault_kind = action.kind();
        self.trace
            .record_with(self.now, || TraceEvent::FaultInjected {
                rule,
                kind: fault_kind,
                from,
                to,
            });
        match action {
            FaultAction::Drop => {
                self.metrics.messages_dropped += 1;
            }
            FaultAction::Delay(extra) => {
                self.transmit(from, to, payload, sent_at, extra, None);
            }
            FaultAction::Duplicate { extra_delay } => {
                self.transmit(from, to, payload.share(), sent_at, Duration::ZERO, None);
                self.transmit(from, to, payload, sent_at, extra_delay, None);
            }
            FaultAction::Reorder => {
                let held = match self.faults.as_mut() {
                    Some(runtime) => runtime.holds[rule as usize].take(),
                    None => None,
                };
                match held {
                    None => {
                        // Hold until the rule's next match. If none ever
                        // arrives the message is effectively dropped
                        // (documented; deterministic either way).
                        if let Some(runtime) = self.faults.as_mut() {
                            runtime.holds[rule as usize] = Some(HeldMsg {
                                from,
                                to,
                                payload,
                                sent_at,
                            });
                        }
                    }
                    Some(held) => {
                        // Swap: the later message goes first, the held
                        // one lands just after it (or normally, if the
                        // network drops the later one).
                        let first = self.transmit(from, to, payload, sent_at, Duration::ZERO, None);
                        let floor = first.map(|t| t + Duration::from_micros(1));
                        self.transmit(
                            held.from,
                            held.to,
                            held.payload,
                            held.sent_at,
                            Duration::ZERO,
                            floor,
                        );
                    }
                }
            }
            FaultAction::CrashSender => {
                // The send itself succeeds; the sender dies once its
                // current callback's command batch finishes (the crash
                // event pops at the same virtual time, after it).
                self.transmit(from, to, payload, sent_at, Duration::ZERO, None);
                self.push(
                    self.now,
                    EventKind::Crash(from, CrashCause::Injected { rule }),
                );
            }
            FaultAction::CrashReceiver => {
                unreachable!("CrashReceiver is a Deliver-point action")
            }
        }
    }

    /// Applies the network model and schedules delivery. `extra_delay`
    /// is added on top of the drawn latency; `floor` (if given) is the
    /// earliest allowed delivery time. Returns the scheduled delivery
    /// time unless the network dropped the message.
    fn transmit(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        mut payload: Payload,
        sent_at: SimTime,
        extra_delay: Duration,
        floor: Option<SimTime>,
    ) -> Option<SimTime> {
        match self.config.network.fate(&mut self.net_rng) {
            Fate::Dropped => {
                self.metrics.messages_dropped += 1;
                self.trace
                    .record_with(self.now, || TraceEvent::Dropped { from, to });
                return None;
            }
            Fate::Corrupted(offset) => {
                // The rare mutating path: detach this recipient's copy
                // from the shared buffer before flipping a bit, so other
                // recipients of the same broadcast stay intact.
                if !payload.is_empty() {
                    let idx = offset % payload.len();
                    let mut bytes = std::mem::take(&mut payload).into_vec();
                    bytes[idx] ^= 0x01;
                    payload = Payload::new(bytes);
                }
                self.metrics.messages_corrupted += 1;
            }
            Fate::Delivered => {}
        }
        let bytes = payload.len();
        self.trace
            .record_with(self.now, || TraceEvent::Sent { from, to, bytes });
        let latency = self.config.network.sample_latency(&mut self.net_rng);
        let mut at = self.now + latency + extra_delay;
        if let Some(floor) = floor {
            at = at.max(floor);
        }
        self.push(
            at,
            EventKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            },
        );
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;
    use crate::network::LatencyModel;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Replies "pong" to any message and counts what it sees.
    struct Pong {
        seen: Rc<RefCell<Vec<Vec<u8>>>>,
    }
    impl Actor for Pong {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]) {
            self.seen.borrow_mut().push(payload.to_vec());
            ctx.send(from, b"pong".to_vec());
        }
    }

    /// Sends `count` pings at start, records replies.
    struct Ping {
        target: DeviceId,
        count: usize,
        replies: Rc<RefCell<usize>>,
    }
    impl Actor for Ping {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(self.target, b"ping".to_vec());
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
            assert_eq!(payload, b"pong");
            *self.replies.borrow_mut() += 1;
        }
    }

    fn reliable_sim(seed: u64) -> Simulation {
        Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(10)),
                ..SimConfig::default()
            },
            seed,
        )
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = reliable_sim(1);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let replies = Rc::new(RefCell::new(0));
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 3,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        let end = sim.run();
        assert_eq!(*replies.borrow(), 3);
        assert_eq!(seen.borrow().len(), 3);
        assert_eq!(sim.metrics().messages_sent, 6);
        assert_eq!(sim.metrics().messages_delivered, 6);
        // Two 10ms hops.
        assert_eq!(end, SimTime::from_micros(20_000));
        assert!((sim.metrics().delivery_delay.mean() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                SimConfig {
                    network: NetworkModel::lossy(
                        Duration::from_millis(1),
                        Duration::from_millis(50),
                        0.2,
                    ),
                    ..SimConfig::default()
                },
                seed,
            );
            let a = sim.add_device(DeviceConfig::default());
            let b = sim.add_device(DeviceConfig::default());
            let replies = Rc::new(RefCell::new(0));
            sim.install_actor(
                a,
                Box::new(Ping {
                    target: b,
                    count: 100,
                    replies: replies.clone(),
                }),
            );
            sim.install_actor(
                b,
                Box::new(Pong {
                    seen: Rc::new(RefCell::new(Vec::new())),
                }),
            );
            sim.run();
            let reply_count = *replies.borrow();
            (
                reply_count,
                sim.metrics().messages_dropped,
                sim.now().as_micros(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn drops_reduce_deliveries() {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::lossy(Duration::ZERO, Duration::from_millis(1), 0.5),
                ..SimConfig::default()
            },
            3,
        );
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let replies = Rc::new(RefCell::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 1000,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(
            b,
            Box::new(Pong {
                seen: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.run();
        let m = sim.metrics();
        assert!(m.messages_dropped > 0);
        assert_eq!(m.messages_sent, 1000 + m.messages_sent - 1000); // sanity
                                                                    // Roughly 25% of pings should produce replies (0.5 * 0.5).
        let r = *replies.borrow() as f64 / 1000.0;
        assert!((r - 0.25).abs() < 0.05, "reply rate {r}");
    }

    /// Timer-driven actor used by timer tests.
    struct TimerActor {
        fired: Rc<RefCell<Vec<u64>>>,
        cancel_second: bool,
    }
    impl Actor for TimerActor {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let _t1 = ctx.set_timer(Duration::from_millis(10));
            let t2 = ctx.set_timer(Duration::from_millis(20));
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
            self.fired.borrow_mut().push(token.0);
            ctx.observe("fired", 1.0);
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim = reliable_sim(5);
        let a = sim.add_device(DeviceConfig::default());
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(TimerActor {
                fired: fired.clone(),
                cancel_second: true,
            }),
        );
        let end = sim.run();
        assert_eq!(*fired.borrow(), vec![0]);
        assert_eq!(end, SimTime::from_micros(20_000)); // cancelled event still pops
        assert_eq!(sim.metrics().observations["fired"].count(), 1);
    }

    #[test]
    fn crashed_device_stops_everything() {
        let mut sim = reliable_sim(6);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig {
            availability: Availability::AlwaysUp,
            crash: CrashPlan::At(SimTime::from_micros(5_000)),
        });
        let replies = Rc::new(RefCell::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 4,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(
            b,
            Box::new(Pong {
                seen: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        sim.run();
        // Pings arrive at t=10ms, after the crash at t=5ms.
        assert_eq!(*replies.borrow(), 0);
        assert_eq!(sim.metrics().crashes, 1);
        assert_eq!(sim.metrics().messages_to_crashed, 4);
        assert!(sim.is_crashed(b));
        assert!(!sim.is_up(b));
    }

    #[test]
    fn down_device_defers_and_recovers() {
        // b starts down and reconnects via churn; the ping waits in b's
        // inbox and is delivered on reconnection.
        let mut sim = reliable_sim(9);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig {
            availability: Availability::Intermittent {
                mean_up: Duration::from_secs(1_000_000),
                mean_down: Duration::from_secs(60),
                start_up: false,
            },
            crash: CrashPlan::Never,
        });
        let replies = Rc::new(RefCell::new(0));
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 1,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        assert!(!sim.is_up(b));
        sim.run();
        assert_eq!(seen.borrow().len(), 1);
        assert_eq!(*replies.borrow(), 1);
        assert!(sim.metrics().messages_deferred >= 1);
        // Delivery delay includes the down period, so it exceeds the link
        // latency alone.
        assert!(sim.metrics().delivery_delay.max() > 0.010);
    }

    #[test]
    fn ttl_discards_stale_parked_messages() {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(1)),
                store_and_forward_ttl: Some(Duration::from_secs(1)),
                ..SimConfig::default()
            },
            11,
        );
        let a = sim.add_device(DeviceConfig::default());
        // Down for ~1h on average: far beyond the 1s TTL.
        let b = sim.add_device(DeviceConfig {
            availability: Availability::Intermittent {
                mean_up: Duration::from_secs(1_000_000),
                mean_down: Duration::from_secs(3_600),
                start_up: false,
            },
            crash: CrashPlan::Never,
        });
        let seen = Rc::new(RefCell::new(Vec::new()));
        let replies = Rc::new(RefCell::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 1,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        sim.run();
        // The message either expired (down > 1s) or was delivered (down <=
        // 1s); with this seed verify via the TTL bookkeeping.
        let m = sim.metrics();
        assert_eq!(
            seen.borrow().len() as u64 + m.messages_dropped,
            1,
            "message must be delivered or TTL-dropped"
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = reliable_sim(13);
        let a = sim.add_device(DeviceConfig::default());
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(TimerActor {
                fired: fired.clone(),
                cancel_second: false,
            }),
        );
        let more = sim.run_until(SimTime::from_micros(15_000));
        assert!(more, "the 20ms timer is still pending");
        assert_eq!(*fired.borrow(), vec![0]);
        assert_eq!(sim.now(), SimTime::from_micros(15_000));
        let more = sim.run_until(SimTime::from_micros(100_000));
        assert!(!more);
        assert_eq!(*fired.borrow(), vec![0, 1]);
    }

    #[test]
    fn corruption_flips_a_byte() {
        struct Recorder {
            seen: Rc<RefCell<Vec<Vec<u8>>>>,
        }
        impl Actor for Recorder {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
                self.seen.borrow_mut().push(payload.to_vec());
            }
        }
        struct Sender {
            target: DeviceId,
        }
        impl Actor for Sender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..200 {
                    ctx.send(self.target, vec![0u8; 8]);
                }
            }
            fn on_message(&mut self, _c: &mut Context<'_>, _f: DeviceId, _p: &[u8]) {}
        }
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel {
                    latency: LatencyModel::Fixed(Duration::from_millis(1)),
                    drop_probability: 0.0,
                    corruption_probability: 0.5,
                },
                ..SimConfig::default()
            },
            17,
        );
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(a, Box::new(Sender { target: b }));
        sim.install_actor(b, Box::new(Recorder { seen: seen.clone() }));
        sim.run();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 200);
        let corrupted = seen.iter().filter(|p| p.iter().any(|&b| b != 0)).count();
        assert_eq!(corrupted as u64, sim.metrics().messages_corrupted);
        assert!(corrupted > 60 && corrupted < 140, "corrupted {corrupted}");
    }

    #[test]
    fn halt_stops_an_actor() {
        struct HaltOnFirst {
            got: Rc<RefCell<usize>>,
        }
        impl Actor for HaltOnFirst {
            fn on_message(&mut self, ctx: &mut Context<'_>, _f: DeviceId, _p: &[u8]) {
                *self.got.borrow_mut() += 1;
                ctx.halt();
            }
        }
        let mut sim = reliable_sim(19);
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let got = Rc::new(RefCell::new(0));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count: 5,
                replies: Rc::new(RefCell::new(0)),
            }),
        );
        sim.install_actor(b, Box::new(HaltOnFirst { got: got.clone() }));
        sim.run();
        assert_eq!(*got.borrow(), 1, "actor must stop after halting");
    }

    #[test]
    fn max_events_backstop() {
        /// Two actors ping each other forever.
        struct Echo;
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(DeviceId::new(1 - ctx.device().raw()), vec![1]);
            }
            fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, _p: &[u8]) {
                ctx.send(from, vec![1]);
            }
        }
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(1)),
                max_events: 1_000,
                ..SimConfig::default()
            },
            23,
        );
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        sim.install_actor(a, Box::new(Echo));
        sim.install_actor(b, Box::new(Echo));
        let more = sim.run_until(SimTime::MAX);
        assert!(more, "backstop must stop the infinite exchange");
        assert_eq!(sim.metrics().events_processed, 1_000);
    }

    /// ping→1, pong→2 (anything else unclassifiable).
    fn test_classifier() -> crate::fault::Classifier {
        Box::new(|bytes: &[u8]| match bytes {
            b"ping" => Some(1),
            b"pong" => Some(2),
            _ => None,
        })
    }

    type PingPongProbes = (Rc<RefCell<usize>>, Rc<RefCell<Vec<Vec<u8>>>>);

    fn ping_pong_world(sim: &mut Simulation, count: usize) -> PingPongProbes {
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let replies = Rc::new(RefCell::new(0));
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(
            a,
            Box::new(Ping {
                target: b,
                count,
                replies: replies.clone(),
            }),
        );
        sim.install_actor(b, Box::new(Pong { seen: seen.clone() }));
        (replies, seen)
    }

    #[test]
    fn fault_drop_rule_discards_matched_messages() {
        let mut sim = reliable_sim(1);
        sim.set_classifier(test_classifier());
        sim.set_fault_plan(
            FaultPlan::new().rule(FaultRule::new(FaultAction::Drop).on_kinds(&[1]).limit(1)),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        assert_eq!(seen.borrow().len(), 2, "first ping dropped");
        assert_eq!(*replies.borrow(), 2);
        assert_eq!(sim.metrics().messages_dropped, 1);
        assert_eq!(sim.faults_injected(), 1);
    }

    #[test]
    fn fault_duplicate_rule_delivers_twice() {
        let mut sim = reliable_sim(1);
        sim.set_classifier(test_classifier());
        sim.set_fault_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultAction::Duplicate {
                    extra_delay: Duration::ZERO,
                })
                .on_kinds(&[1])
                .limit(1),
            ),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        assert_eq!(seen.borrow().len(), 4, "first ping delivered twice");
        assert_eq!(*replies.borrow(), 4);
    }

    #[test]
    fn fault_delay_rule_postpones_delivery() {
        let run = |delay_ms: u64| {
            let mut sim = reliable_sim(1);
            sim.set_classifier(test_classifier());
            if delay_ms > 0 {
                sim.set_fault_plan(
                    FaultPlan::new().rule(
                        FaultRule::new(FaultAction::Delay(Duration::from_millis(delay_ms)))
                            .on_kinds(&[1]),
                    ),
                );
            }
            let (replies, _) = ping_pong_world(&mut sim, 3);
            let end = sim.run();
            assert_eq!(*replies.borrow(), 3, "delayed, not lost");
            end
        };
        let baseline = run(0);
        let delayed = run(500);
        assert_eq!(delayed, baseline + Duration::from_millis(500));
    }

    #[test]
    fn fault_reorder_rule_swaps_consecutive_matches() {
        /// Sends two distinct payloads in one batch.
        struct TwoSends {
            target: DeviceId,
        }
        impl Actor for TwoSends {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.target, b"first".to_vec());
                ctx.send(self.target, b"second".to_vec());
            }
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, _payload: &[u8]) {}
        }
        /// Records payloads without replying.
        struct Sink {
            seen: Rc<RefCell<Vec<Vec<u8>>>>,
        }
        impl Actor for Sink {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
                self.seen.borrow_mut().push(payload.to_vec());
            }
        }
        let mut sim = reliable_sim(1);
        sim.set_fault_plan(FaultPlan::new().rule(FaultRule::new(FaultAction::Reorder).limit(2)));
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(a, Box::new(TwoSends { target: b }));
        sim.install_actor(b, Box::new(Sink { seen: seen.clone() }));
        sim.run();
        assert_eq!(
            *seen.borrow(),
            vec![b"second".to_vec(), b"first".to_vec()],
            "the held first message lands after the second"
        );
    }

    #[test]
    fn fault_crash_receiver_consumes_the_trigger() {
        let mut sim = reliable_sim(1);
        sim.set_classifier(test_classifier());
        // Crash the pong server the instant its second ping arrives.
        sim.set_fault_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashReceiver)
                    .on_kinds(&[1])
                    .skip(1)
                    .limit(1),
            ),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        assert_eq!(seen.borrow().len(), 1, "only the first ping was processed");
        assert_eq!(*replies.borrow(), 1);
        assert_eq!(sim.metrics().crashes, 1);
    }

    #[test]
    fn fault_crash_sender_fires_after_the_batch() {
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(10)),
                trace_capacity: 64,
                ..SimConfig::default()
            },
            1,
        );
        sim.set_classifier(test_classifier());
        sim.set_fault_plan(
            FaultPlan::new().rule(
                FaultRule::new(FaultAction::CrashSender)
                    .on_kinds(&[1])
                    .limit(1),
            ),
        );
        let (replies, seen) = ping_pong_world(&mut sim, 3);
        sim.run();
        // All three pings left in the same on_start batch before the
        // crash landed; every pong then hit a crashed device.
        assert_eq!(seen.borrow().len(), 3);
        assert_eq!(*replies.borrow(), 0);
        assert_eq!(sim.metrics().crashes, 1);
        assert_eq!(sim.metrics().messages_to_crashed, 3);
        let injected = sim
            .trace()
            .records()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::Crashed {
                        cause: CrashCause::Injected { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(injected, 1, "the crash is attributed to the rule");
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let mut sim = Simulation::new(
                SimConfig {
                    network: NetworkModel::lossy(
                        Duration::from_millis(1),
                        Duration::from_millis(50),
                        0.1,
                    ),
                    trace_capacity: 1 << 12,
                    ..SimConfig::default()
                },
                77,
            );
            sim.set_classifier(test_classifier());
            sim.set_fault_plan(
                FaultPlan::new()
                    .rule(
                        FaultRule::new(FaultAction::Drop)
                            .on_kinds(&[2])
                            .skip(3)
                            .limit(2),
                    )
                    .rule(
                        FaultRule::new(FaultAction::Duplicate {
                            extra_delay: Duration::from_millis(200),
                        })
                        .on_kinds(&[1])
                        .skip(5)
                        .limit(1),
                    ),
            );
            let (replies, _) = ping_pong_world(&mut sim, 50);
            sim.run();
            let reply_count = *replies.borrow();
            (reply_count, sim.faults_injected(), sim.trace().digest())
        };
        assert_eq!(run(), run());
    }
}
