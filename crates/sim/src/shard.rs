//! One shard of the sharded simulation: device state and the event
//! executor.
//!
//! Devices are partitioned across shards deterministically by id
//! (`device_id % shard_count`), and every event executes on the shard
//! that owns its target device. Event processing is written so that it
//! only ever touches state of the *executing* device (the target), plus
//! pure shared context ([`RunEnv`]): messages to other devices become
//! [`Event`]s routed through per-destination outbound buffers, metric
//! updates become commutative [`Deltas`], and trace/observation records
//! become journal entries ([`JEntry`]) replayed in canonical key order at
//! the window barrier. Because nothing here reads global mutable state,
//! the same executor runs single-threaded (shards=1), multi-threaded
//! (shards=N), and inside the sequential fallback — with bit-identical
//! results.

use crate::actor::{Actor, Command, Context, TimerToken};
use crate::churn::Availability;
use crate::fault::{
    evaluate_plan, CrashCause, FaultAction, FaultCounters, FaultPlan, HeldMsg, MatchPoint,
};
use crate::metrics::DelayStats;
use crate::network::{Fate, NetworkModel};
use crate::scheduler::{CalendarQueue, Event, EventKind};
use crate::time::{Duration, SimTime};
use crate::trace::TraceEvent;
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::Payload;
use std::collections::{BTreeSet, BinaryHeap};

/// Per-device mutable state. Owned by exactly one shard.
pub(crate) struct DeviceState {
    pub up: bool,
    pub crashed: bool,
    pub halted: bool,
    pub actor: Option<Box<dyn Actor>>,
    /// Actor-visible randomness (forked per device).
    pub rng: DetRng,
    /// Drives this device's availability renewal process.
    pub churn_rng: DetRng,
    /// Drives network fate/latency draws for messages this device sends.
    /// Keeping the stream per-sender (instead of one global network RNG)
    /// makes every draw independent of event interleaving, which is what
    /// lets shard counts vary without changing outcomes.
    pub net_rng: DetRng,
    pub next_timer: u64,
    /// Private spawn counter: the `seq` component of every event this
    /// device spawns.
    pub spawn_seq: u64,
    pub cancelled: BTreeSet<TimerToken>,
    pub availability: Availability,
    /// Messages waiting for this (down) sender to reconnect.
    pub outbox: Vec<(DeviceId, Payload, SimTime)>,
    /// Messages waiting for this (down) receiver to reconnect.
    pub inbox: Vec<(DeviceId, Payload, SimTime)>,
}

/// Borrowed form of [`crate::fault::Classifier`].
pub(crate) type ClassifierRef<'a> = &'a (dyn Fn(&[u8]) -> Option<u16> + Send + Sync);

/// Immutable per-run context shared by all shards.
pub(crate) struct RunEnv<'a> {
    pub network: &'a NetworkModel,
    pub ttl: Option<Duration>,
    pub classifier: Option<ClassifierRef<'a>>,
    pub plan: Option<&'a FaultPlan>,
    pub trace_enabled: bool,
    /// Whether the classifier must run at all: only when a kind-restricted
    /// fault rule or the trace can consume the result.
    pub need_kind: bool,
    pub device_count: usize,
    pub shard_count: usize,
}

/// A journal item: a side effect whose global ordering matters.
#[derive(Debug)]
pub(crate) enum JItem {
    /// A trace record.
    Trace(TraceEvent),
    /// A named metric observation.
    Observe(&'static str, f64),
}

/// One journal entry, tagged with the key of the event that produced it
/// plus an intra-event counter. Sorting by `(at, origin, seq, intra)`
/// reconstructs one canonical global order from any per-shard
/// interleaving.
#[derive(Debug)]
pub(crate) struct JEntry {
    pub at: SimTime,
    pub origin: u64,
    pub seq: u64,
    pub intra: u32,
    pub item: JItem,
}

/// Commutative metric deltas accumulated by one shard over one window
/// (or one event, in the fallback executor). Summing deltas from any
/// partition of the same event set yields identical totals.
#[derive(Debug, Default)]
pub(crate) struct Deltas {
    pub sent: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub to_crashed: u64,
    pub deferred: u64,
    pub bytes_sent: u64,
    pub delay: DelayStats,
    pub disconnections: u64,
    pub crashes: u64,
    pub events: u64,
    /// Net change in pending non-churn events (+spawned, -processed).
    pub real_pending: i64,
    /// Net change in parked (inbox/outbox) messages.
    pub parked: i64,
    /// Latest event time processed.
    pub last_at: SimTime,
}

/// Buffered side effects of executing events on one shard.
#[derive(Debug)]
pub(crate) struct WindowOut {
    pub journal: Vec<JEntry>,
    /// Events destined to other shards, indexed by destination shard.
    pub outbound: Vec<Vec<Event>>,
    pub deltas: Deltas,
    trace_on: bool,
    /// Key of the event currently being processed.
    cur: (SimTime, u64, u64),
    intra: u32,
}

impl WindowOut {
    pub fn new(shard_count: usize, trace_on: bool) -> Self {
        WindowOut {
            journal: Vec::new(),
            outbound: (0..shard_count).map(|_| Vec::new()).collect(),
            deltas: Deltas::default(),
            trace_on,
            cur: (SimTime::ZERO, 0, 0),
            intra: 0,
        }
    }

    /// Clears buffered effects while keeping capacity (fallback executor
    /// reuses one `WindowOut` across events).
    pub fn reset(&mut self) {
        self.journal.clear();
        for v in &mut self.outbound {
            v.clear();
        }
        self.deltas = Deltas::default();
        self.intra = 0;
    }

    fn begin_event(&mut self, key: (SimTime, u64, u64)) {
        self.cur = key;
        self.intra = 0;
    }

    fn push_item(&mut self, item: JItem) {
        self.journal.push(JEntry {
            at: self.cur.0,
            origin: self.cur.1,
            seq: self.cur.2,
            intra: self.intra,
            item,
        });
        self.intra += 1;
    }

    fn trace(&mut self, ev: TraceEvent) {
        if self.trace_on {
            self.push_item(JItem::Trace(ev));
        }
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.push_item(JItem::Observe(name, value));
    }
}

/// Result of running one window on one shard.
#[derive(Debug)]
pub(crate) struct WindowReport {
    pub out: WindowOut,
    /// Per-window fault counters (zero-based; merged at the barrier).
    pub fc: FaultCounters,
    /// Earliest event still queued on this shard after the window.
    pub queue_min_at: Option<u64>,
    /// Earliest event in this shard's outbound buffers.
    pub outbound_min_at: Option<u64>,
    /// The shard stopped early because it exhausted the event budget.
    pub hit_budget: bool,
}

/// Mutable references threaded through one event's execution.
struct Exec<'a, 'b> {
    env: &'a RunEnv<'b>,
    out: &'a mut WindowOut,
    /// Exclusive upper bound of the open window (µs); same-window spawns
    /// targeting this shard go to the in-window heap. 0 in the fallback
    /// executor (everything goes to the calendar queues).
    window_end_us: u64,
    fc: &'a mut FaultCounters,
    /// Reorder stashes; only the fallback executor provides them
    /// (Reorder rules are never window-safe).
    holds: Option<&'a mut Vec<Option<HeldMsg>>>,
    now: SimTime,
}

/// One shard: a slice of the device population plus its event queue.
pub(crate) struct Shard {
    pub idx: usize,
    pub shard_count: usize,
    /// Devices with `id % shard_count == idx`, indexed by `id / shard_count`.
    pub devices: Vec<DeviceState>,
    pub queue: CalendarQueue,
    /// Working heap for events inside the currently open window.
    window: BinaryHeap<Event>,
    /// Scratch buffer for returning window remainders to the calendar
    /// queue in one batch (kept across windows to avoid reallocation).
    spill: Vec<Event>,
}

impl Shard {
    pub fn new(idx: usize, shard_count: usize, width_us: u64) -> Self {
        Shard {
            idx,
            shard_count,
            devices: Vec::new(),
            queue: CalendarQueue::new(width_us),
            window: BinaryHeap::new(),
            spill: Vec::new(),
        }
    }

    pub fn device_mut(&mut self, id: DeviceId) -> &mut DeviceState {
        debug_assert_eq!(id.index() % self.shard_count, self.idx);
        &mut self.devices[id.index() / self.shard_count]
    }

    pub fn device(&self, id: DeviceId) -> &DeviceState {
        debug_assert_eq!(id.index() % self.shard_count, self.idx);
        &self.devices[id.index() / self.shard_count]
    }

    /// Spawns an event from `origin` (the executing device), assigning
    /// its intrinsic key and routing it to the in-window heap, this
    /// shard's queue, or an outbound buffer.
    fn spawn(&mut self, origin: DeviceId, at: SimTime, kind: EventKind, cx: &mut Exec<'_, '_>) {
        let seq = {
            let d = self.device_mut(origin);
            let s = d.spawn_seq;
            d.spawn_seq += 1;
            s
        };
        let ev = Event {
            at,
            origin: origin.raw(),
            seq,
            kind,
        };
        if !ev.kind.is_churn() {
            cx.out.deltas.real_pending += 1;
        }
        let dest = ev.kind.target().index() % self.shard_count;
        if dest == self.idx {
            if at.as_micros() < cx.window_end_us {
                self.window.push(ev);
            } else {
                self.queue.push(ev);
            }
        } else {
            cx.out.outbound[dest].push(ev);
        }
    }

    /// Executes one event. The only mutable state touched is this shard's
    /// (in fact: the target device's); everything else flows into `out`.
    pub fn process_event(
        &mut self,
        ev: Event,
        env: &RunEnv<'_>,
        out: &mut WindowOut,
        window_end_us: u64,
        fc: &mut FaultCounters,
        holds: Option<&mut Vec<Option<HeldMsg>>>,
    ) {
        out.begin_event(ev.key());
        out.deltas.events += 1;
        out.deltas.last_at = out.deltas.last_at.max(ev.at);
        if !ev.kind.is_churn() {
            out.deltas.real_pending -= 1;
        }
        let mut cx = Exec {
            env,
            out,
            window_end_us,
            fc,
            holds,
            now: ev.at,
        };
        self.dispatch(ev.kind, &mut cx);
    }

    fn dispatch(&mut self, kind: EventKind, cx: &mut Exec<'_, '_>) {
        match kind {
            EventKind::Start(device) => {
                self.with_actor(device, cx, |actor, ctx| actor.on_start(ctx));
            }
            EventKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            } => self.handle_delivery(to, from, payload, sent_at, cx),
            EventKind::Timer { device, token } => {
                let state = self.device_mut(device);
                if state.crashed || state.halted {
                    return;
                }
                if state.cancelled.remove(&token) {
                    return;
                }
                cx.out.trace(TraceEvent::TimerFired {
                    device,
                    token: token.0,
                });
                self.with_actor(device, cx, |actor, ctx| actor.on_timer(ctx, token));
            }
            EventKind::ChurnToggle(device) => self.handle_churn(device, cx),
            EventKind::Crash(device, cause) => self.handle_crash(device, cause, cx),
        }
    }

    fn handle_delivery(
        &mut self,
        to: DeviceId,
        from: DeviceId,
        payload: Payload,
        sent_at: SimTime,
        cx: &mut Exec<'_, '_>,
    ) {
        let now = cx.now;
        let state = self.device_mut(to);
        if state.crashed {
            cx.out.deltas.to_crashed += 1;
            return;
        }
        if !state.up {
            // Store-and-forward: park until reconnection.
            cx.out.deltas.deferred += 1;
            cx.out.deltas.parked += 1;
            state.inbox.push((from, payload, sent_at));
            return;
        }
        if state.halted || state.actor.is_none() {
            return;
        }
        // Fault hook (Deliver point): a CrashReceiver rule consumes the
        // triggering message — the device dies at the instant of
        // delivery, before its actor sees the payload.
        if let Some(plan) = cx.env.plan {
            let kind = if cx.env.need_kind {
                cx.env.classifier.and_then(|c| c(payload.as_slice()))
            } else {
                None
            };
            if let Some((rule, action)) =
                evaluate_plan(plan, cx.fc, MatchPoint::Deliver, kind, from, to, now)
            {
                cx.out.trace(TraceEvent::FaultInjected {
                    rule,
                    kind: action.kind(),
                    from,
                    to,
                });
                cx.out.deltas.to_crashed += 1;
                self.handle_crash(to, CrashCause::Injected { rule }, cx);
                return;
            }
        }
        cx.out.deltas.delivered += 1;
        cx.out
            .deltas
            .delay
            .push_micros(now.since(sent_at).as_micros());
        cx.out.trace(TraceEvent::Delivered { from, to });
        self.with_actor(to, cx, |actor, ctx| actor.on_message(ctx, from, &payload));
    }

    fn handle_churn(&mut self, device: DeviceId, cx: &mut Exec<'_, '_>) {
        let now = cx.now;
        let state = self.device_mut(device);
        if state.crashed {
            return;
        }
        state.up = !state.up;
        let now_up = state.up;
        if !now_up {
            cx.out.deltas.disconnections += 1;
            cx.out.trace(TraceEvent::WentDown(device));
        } else {
            cx.out.trace(TraceEvent::CameUp(device));
        }
        // Schedule the next transition.
        let state = self.device_mut(device);
        let availability = state.availability.clone();
        let mut churn_rng = state.churn_rng.clone();
        if let Some(period) = availability.next_period(now_up, &mut churn_rng) {
            self.device_mut(device).churn_rng = churn_rng;
            self.spawn(device, now + period, EventKind::ChurnToggle(device), cx);
        }

        if now_up {
            // Flush parked traffic. Inbox messages re-enter as immediate
            // deliveries; outbox messages now traverse the network.
            let state = self.device_mut(device);
            let inbox = std::mem::take(&mut state.inbox);
            let outbox = std::mem::take(&mut state.outbox);
            cx.out.deltas.parked -= (inbox.len() + outbox.len()) as i64;
            let ttl = cx.env.ttl;
            for (from, payload, sent_at) in inbox {
                if let Some(ttl) = ttl {
                    if now.since(sent_at) > ttl {
                        cx.out.deltas.dropped += 1;
                        continue;
                    }
                }
                self.spawn(
                    device,
                    now,
                    EventKind::Deliver {
                        to: device,
                        from,
                        payload,
                        sent_at,
                    },
                    cx,
                );
            }
            for (to, payload, sent_at) in outbox {
                if let Some(ttl) = ttl {
                    if now.since(sent_at) > ttl {
                        cx.out.deltas.dropped += 1;
                        continue;
                    }
                }
                self.route(device, to, payload, sent_at, cx);
            }
            self.with_actor(device, cx, |actor, ctx| actor.on_reconnect(ctx));
        }
    }

    fn handle_crash(&mut self, device: DeviceId, cause: CrashCause, cx: &mut Exec<'_, '_>) {
        let state = self.device_mut(device);
        if state.crashed {
            return;
        }
        state.crashed = true;
        state.up = false;
        state.actor = None;
        let cleared = (state.inbox.len() + state.outbox.len()) as i64;
        state.inbox.clear();
        state.outbox.clear();
        cx.out.deltas.parked -= cleared;
        cx.out.deltas.crashes += 1;
        cx.out.trace(TraceEvent::Crashed { device, cause });
    }

    /// Runs a callback on a device's actor, then applies its commands.
    fn with_actor<F>(&mut self, device: DeviceId, cx: &mut Exec<'_, '_>, f: F)
    where
        F: FnOnce(&mut Box<dyn Actor>, &mut Context<'_>),
    {
        let now = cx.now;
        let state = self.device_mut(device);
        if state.crashed || state.halted {
            return;
        }
        let Some(mut actor) = state.actor.take() else {
            return;
        };
        let mut ctx = Context::new(device, now, &mut state.rng, &mut state.next_timer);
        f(&mut actor, &mut ctx);
        let commands = std::mem::take(&mut ctx.commands);
        drop(ctx);
        self.device_mut(device).actor = Some(actor);
        self.apply_commands(device, commands, cx);
    }

    fn apply_commands(&mut self, device: DeviceId, commands: Vec<Command>, cx: &mut Exec<'_, '_>) {
        for cmd in commands {
            match cmd {
                Command::Send { to, payload } => self.submit_send(device, to, payload, cx),
                Command::Broadcast { to, payload } => {
                    // Every recipient shares the same buffer: fan-out is
                    // a reference-count bump per target, not a copy.
                    for target in to {
                        self.submit_send(device, target, payload.share(), cx);
                    }
                }
                Command::SetTimer { token, fire_at } => {
                    self.spawn(device, fire_at, EventKind::Timer { device, token }, cx);
                }
                Command::CancelTimer { token } => {
                    self.device_mut(device).cancelled.insert(token);
                }
                Command::Observe { name, value } => {
                    cx.out.observe(name, value);
                }
                Command::Halt => {
                    self.device_mut(device).halted = true;
                }
            }
        }
    }

    fn submit_send(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        payload: Payload,
        cx: &mut Exec<'_, '_>,
    ) {
        cx.out.deltas.sent += 1;
        cx.out.deltas.bytes_sent += payload.len() as u64;
        let now = cx.now;
        let sender = self.device_mut(from);
        if !sender.up {
            // Sender is offline: park in the outbox until reconnection.
            cx.out.deltas.deferred += 1;
            cx.out.deltas.parked += 1;
            sender.outbox.push((to, payload, now));
            return;
        }
        self.route(from, to, payload, now, cx);
    }

    /// Evaluates send-point fault rules, then applies the network model
    /// and schedules delivery.
    fn route(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        payload: Payload,
        sent_at: SimTime,
        cx: &mut Exec<'_, '_>,
    ) {
        if to.index() >= cx.env.device_count {
            cx.out.deltas.dropped += 1;
            return;
        }
        let now = cx.now;
        // Classification is only needed when a kind-restricted fault rule
        // or a MsgKind trace consumer can use the result.
        let kind = if cx.env.need_kind {
            cx.env.classifier.and_then(|c| c(payload.as_slice()))
        } else {
            None
        };
        if let Some(k) = kind {
            cx.out.trace(TraceEvent::MsgKind { from, to, kind: k });
        }
        let decision = match cx.env.plan {
            Some(plan) => evaluate_plan(plan, cx.fc, MatchPoint::Send, kind, from, to, now),
            None => None,
        };
        let Some((rule, action)) = decision else {
            self.transmit(from, to, payload, sent_at, Duration::ZERO, None, cx);
            return;
        };
        cx.out.trace(TraceEvent::FaultInjected {
            rule,
            kind: action.kind(),
            from,
            to,
        });
        match action {
            FaultAction::Drop => {
                cx.out.deltas.dropped += 1;
            }
            FaultAction::Delay(extra) => {
                self.transmit(from, to, payload, sent_at, extra, None, cx);
            }
            FaultAction::Duplicate { extra_delay } => {
                self.transmit(from, to, payload.share(), sent_at, Duration::ZERO, None, cx);
                self.transmit(from, to, payload, sent_at, extra_delay, None, cx);
            }
            FaultAction::Reorder => {
                // Reorder rules are never window-safe, so `holds` is
                // always available here (fallback executor).
                let held = cx.holds.as_mut().and_then(|h| h[rule as usize].take());
                match held {
                    None => {
                        // Hold until the rule's next match. If none ever
                        // arrives the message is effectively dropped
                        // (documented; deterministic either way). The
                        // resend's fate, latency, and sequence number are
                        // drawn *now*, while this shard owns `from`: the
                        // swap executes on whichever shard the rule's
                        // next match lands on, which must not touch the
                        // original sender's state.
                        let (fate, latency, seq) = {
                            let sender = self.device_mut(from);
                            let fate = cx.env.network.fate(&mut sender.net_rng);
                            if fate == Fate::Dropped {
                                (fate, Duration::ZERO, 0)
                            } else {
                                let latency = cx.env.network.sample_latency(&mut sender.net_rng);
                                let seq = sender.spawn_seq;
                                sender.spawn_seq += 1;
                                (fate, latency, seq)
                            }
                        };
                        if let Some(h) = cx.holds.as_mut() {
                            h[rule as usize] = Some(HeldMsg {
                                from,
                                to,
                                payload,
                                sent_at,
                                fate,
                                latency,
                                seq,
                            });
                        }
                    }
                    Some(held) => {
                        // Swap: the later message goes first, the held
                        // one lands just after it (or normally, if the
                        // network drops the later one).
                        let first =
                            self.transmit(from, to, payload, sent_at, Duration::ZERO, None, cx);
                        let floor = first.map(|t| t + Duration::from_micros(1));
                        self.transmit_held(held, floor, cx);
                    }
                }
            }
            FaultAction::CrashSender => {
                // The send itself succeeds; the sender dies once its
                // current actor callback finishes (the crash event pops
                // at the same virtual time, after it).
                self.transmit(from, to, payload, sent_at, Duration::ZERO, None, cx);
                self.spawn(
                    from,
                    now,
                    EventKind::Crash(from, CrashCause::Injected { rule }),
                    cx,
                );
            }
            FaultAction::CrashReceiver => {
                unreachable!("CrashReceiver is a Deliver-point action")
            }
        }
    }

    /// Applies the network model and schedules delivery. `extra_delay`
    /// is added on top of the drawn latency; `floor` (if given) is the
    /// earliest allowed delivery time. Returns the scheduled delivery
    /// time unless the network dropped the message.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        mut payload: Payload,
        sent_at: SimTime,
        extra_delay: Duration,
        floor: Option<SimTime>,
        cx: &mut Exec<'_, '_>,
    ) -> Option<SimTime> {
        let now = cx.now;
        let fate = {
            let sender = self.device_mut(from);
            cx.env.network.fate(&mut sender.net_rng)
        };
        match fate {
            Fate::Dropped => {
                cx.out.deltas.dropped += 1;
                cx.out.trace(TraceEvent::Dropped { from, to });
                return None;
            }
            Fate::Corrupted(offset) => {
                // The rare mutating path: detach this recipient's copy
                // from the shared buffer before flipping a bit, so other
                // recipients of the same broadcast stay intact.
                if !payload.is_empty() {
                    let idx = offset % payload.len();
                    let mut bytes = std::mem::take(&mut payload).into_vec();
                    bytes[idx] ^= 0x01;
                    payload = Payload::new(bytes);
                }
                cx.out.deltas.corrupted += 1;
            }
            Fate::Delivered => {}
        }
        let bytes = payload.len();
        cx.out.trace(TraceEvent::Sent { from, to, bytes });
        let latency = {
            let sender = self.device_mut(from);
            cx.env.network.sample_latency(&mut sender.net_rng)
        };
        let mut at = now + latency + extra_delay;
        if let Some(floor) = floor {
            at = at.max(floor);
        }
        self.spawn(
            from,
            at,
            EventKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            },
            cx,
        );
        Some(at)
    }

    /// Releases a [`HeldMsg`] stashed by a `Reorder` rule. Unlike
    /// [`Shard::transmit`], this draws nothing: fate, latency, and the
    /// event sequence number were fixed at stash time, so it never
    /// touches the original sender's device state — which may live on a
    /// different shard than the event triggering the release.
    fn transmit_held(
        &mut self,
        held: HeldMsg,
        floor: Option<SimTime>,
        cx: &mut Exec<'_, '_>,
    ) -> Option<SimTime> {
        let HeldMsg {
            from,
            to,
            mut payload,
            sent_at,
            fate,
            latency,
            seq,
        } = held;
        match fate {
            Fate::Dropped => {
                cx.out.deltas.dropped += 1;
                cx.out.trace(TraceEvent::Dropped { from, to });
                return None;
            }
            Fate::Corrupted(offset) => {
                if !payload.is_empty() {
                    let idx = offset % payload.len();
                    let mut bytes = std::mem::take(&mut payload).into_vec();
                    bytes[idx] ^= 0x01;
                    payload = Payload::new(bytes);
                }
                cx.out.deltas.corrupted += 1;
            }
            Fate::Delivered => {}
        }
        let bytes = payload.len();
        cx.out.trace(TraceEvent::Sent { from, to, bytes });
        let mut at = cx.now + latency;
        if let Some(floor) = floor {
            at = at.max(floor);
        }
        let ev = Event {
            at,
            origin: from.raw(),
            seq,
            kind: EventKind::Deliver {
                to,
                from,
                payload,
                sent_at,
            },
        };
        cx.out.deltas.real_pending += 1;
        let dest = to.index() % self.shard_count;
        if dest == self.idx {
            if at.as_micros() < cx.window_end_us {
                self.window.push(ev);
            } else {
                self.queue.push(ev);
            }
        } else {
            cx.out.outbound[dest].push(ev);
        }
        Some(at)
    }

    /// Runs one conservative window `[window_start, window_end_us)` on
    /// this shard: pulls the covered calendar cells
    /// (`first_cell..=last_cell`, at most two — the window spans one
    /// lookahead starting at the global minimum pending time) into the
    /// working heap, processes events with `at < window_end_us` and
    /// `at <= clip_us` (the deadline clamp) up to `budget` events, then
    /// returns unprocessed events to the queue in one batch. All side
    /// effects land in the returned report, with the journal pre-sorted
    /// by the intrinsic event key so the barrier can k-way-merge the
    /// shards' journals without re-sorting.
    ///
    /// `reuse` recycles the previous window's report (buffers cleared by
    /// the barrier), so steady-state windows allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn run_window(
        &mut self,
        env: &RunEnv<'_>,
        first_cell: u64,
        last_cell: u64,
        window_end_us: u64,
        clip_us: u64,
        budget: u64,
        reuse: Option<WindowReport>,
    ) -> WindowReport {
        let (mut out, mut fc) = match reuse {
            Some(r) => {
                debug_assert!(r.out.journal.is_empty());
                let rule_count = env.plan.map_or(0, |p| p.rules.len());
                let fc = if r.fc.matched.len() == rule_count {
                    r.fc
                } else {
                    // The fault plan changed between runs; rebuild.
                    match env.plan {
                        Some(plan) => FaultCounters::for_plan(plan),
                        None => FaultCounters::default(),
                    }
                };
                (r.out, fc)
            }
            None => (
                WindowOut::new(env.shard_count, env.trace_enabled),
                match env.plan {
                    Some(plan) => FaultCounters::for_plan(plan),
                    None => FaultCounters::default(),
                },
            ),
        };
        if let Some(mut cell) = self.queue.take_cell(first_cell) {
            // The first cell is entirely inside the window: every event
            // is >= the global minimum and < first_cell_end <= window_end.
            for ev in cell.drain(..) {
                self.window.push(ev);
            }
            self.queue.recycle(cell);
        }
        if last_cell != first_cell {
            if let Some(mut cell) = self.queue.take_cell(last_cell) {
                // The last cell straddles the window end; its tail goes
                // straight back to the queue.
                for ev in cell.drain(..) {
                    if ev.at.as_micros() < window_end_us {
                        self.window.push(ev);
                    } else {
                        self.spill.push(ev);
                    }
                }
                self.queue.recycle(cell);
                self.queue.push_batch(&mut self.spill);
            }
        }
        let mut processed = 0u64;
        let mut hit_budget = false;
        while let Some(top_at) = self.window.peek().map(|e| e.at) {
            let at_us = top_at.as_micros();
            if at_us >= window_end_us || at_us > clip_us {
                break;
            }
            if processed >= budget {
                hit_budget = true;
                break;
            }
            let Some(ev) = self.window.pop() else { break };
            processed += 1;
            // real_pending/events bookkeeping happens inside process_event.
            self.process_event(ev, env, &mut out, window_end_us, &mut fc, None);
        }
        // Return the remainder (deadline clip or exhausted budget) to the
        // calendar queue for the next window. The heap pops in key order,
        // so the batch arrives cell-grouped.
        while let Some(ev) = self.window.pop() {
            self.spill.push(ev);
        }
        self.queue.push_batch(&mut self.spill);
        // Pre-sort so the barrier merge is a streaming k-way merge.
        out.journal
            .sort_unstable_by_key(|e| (e.at, e.origin, e.seq, e.intra));
        let queue_min_at = self.queue.peek_min_at().map(SimTime::as_micros);
        let outbound_min_at = out
            .outbound
            .iter()
            .flat_map(|v| v.iter().map(|e| e.at.as_micros()))
            .min();
        WindowReport {
            out,
            fc,
            queue_min_at,
            outbound_min_at,
            hit_budget,
        }
    }
}
