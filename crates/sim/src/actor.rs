//! The actor programming model protocols are written against.
//!
//! An [`Actor`] is installed on a device and reacts to three stimuli:
//! start, message delivery, and timer expiry. All effects (sending,
//! arming timers) go through the [`Context`], which records commands for
//! the engine to apply after the callback returns — the actor never touches
//! engine state directly, which keeps callbacks simple and the engine
//! deterministic.

use crate::time::{Duration, SimTime};
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::Payload;

/// Identifies an armed timer so it can be recognized or cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub u64);

/// Commands an actor issues during a callback.
///
/// Public so alternative hosts (the live runtime in `edgelet-live`) can
/// drive the same actors: they construct a [`Context`], run a callback,
/// then interpret the recorded commands with their own scheduler and
/// transport. The simulator engine remains the reference interpreter.
#[derive(Debug)]
pub enum Command {
    /// Send `payload` to device `to` (subject to the network model).
    Send {
        /// Destination device.
        to: DeviceId,
        /// Message bytes.
        payload: Payload,
    },
    /// Send one shared `payload` to each device in `to`.
    Broadcast {
        /// Destination devices (one network message each).
        to: Vec<DeviceId>,
        /// Message bytes, shared across recipients.
        payload: Payload,
    },
    /// Arm timer `token` to fire at virtual time `fire_at`.
    SetTimer {
        /// The token identifying the timer.
        token: TimerToken,
        /// Absolute virtual fire time.
        fire_at: SimTime,
    },
    /// Cancel a previously armed timer (no-op if already fired).
    CancelTimer {
        /// The token returned by [`Context::set_timer`].
        token: TimerToken,
    },
    /// Record a named scalar observation into the metrics sink.
    Observe {
        /// Metric name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// Voluntarily stop this actor (it stops receiving events).
    Halt,
}

/// Execution context handed to actor callbacks.
pub struct Context<'a> {
    device: DeviceId,
    now: SimTime,
    rng: &'a mut DetRng,
    next_timer: &'a mut u64,
    pub(crate) commands: Vec<Command>,
}

impl<'a> Context<'a> {
    /// Creates a context for one actor callback.
    ///
    /// `next_timer` is the device's monotonically increasing timer counter;
    /// hosts must persist it across callbacks so [`TimerToken`]s stay
    /// unique per device.
    pub fn new(
        device: DeviceId,
        now: SimTime,
        rng: &'a mut DetRng,
        next_timer: &'a mut u64,
    ) -> Self {
        Self {
            device,
            now,
            rng,
            next_timer,
            commands: Vec::new(),
        }
    }

    /// Removes and returns the commands recorded so far, in issue order.
    ///
    /// Used by hosts (the simulator shard executor, the live runtime) to
    /// interpret a callback's effects after it returns.
    pub fn take_commands(&mut self) -> Vec<Command> {
        std::mem::take(&mut self.commands)
    }

    /// The device this actor runs on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-device randomness.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends a message to another device (subject to the network model).
    ///
    /// Accepts anything convertible into a [`Payload`]; passing a
    /// `Vec<u8>` or an existing `Payload` hands the bytes over without
    /// copying them.
    pub fn send(&mut self, to: DeviceId, payload: impl Into<Payload>) {
        self.commands.push(Command::Send {
            to,
            payload: payload.into(),
        });
    }

    /// Sends the same payload to many devices (one network message each).
    /// All recipients share one buffer — fan-out costs no byte copies.
    pub fn broadcast(&mut self, to: Vec<DeviceId>, payload: impl Into<Payload>) {
        if !to.is_empty() {
            self.commands.push(Command::Broadcast {
                to,
                payload: payload.into(),
            });
        }
    }

    /// Arms a timer firing after `delay`; returns its token.
    pub fn set_timer(&mut self, delay: Duration) -> TimerToken {
        let token = TimerToken(*self.next_timer);
        *self.next_timer += 1;
        self.commands.push(Command::SetTimer {
            token,
            fire_at: self.now + delay,
        });
        token
    }

    /// Cancels a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.commands.push(Command::CancelTimer { token });
    }

    /// Records a named observation into the simulation metrics.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.commands.push(Command::Observe { name, value });
    }

    /// Stops this actor; it receives no further events.
    pub fn halt(&mut self) {
        self.commands.push(Command::Halt);
    }
}

/// A protocol endpoint installed on one device.
///
/// Actors must be [`Send`]: the sharded engine moves device state (actor
/// included) to worker threads for the duration of a time window.
pub trait Actor: Send {
    /// Called once when the simulation starts (or the actor is installed).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: DeviceId, payload: &[u8]);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}

    /// Called when the device reconnects after a down period. Optional.
    fn on_reconnect(&mut self, _ctx: &mut Context<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_commands() {
        let mut rng = DetRng::new(1);
        let mut next = 0u64;
        let mut ctx = Context::new(
            DeviceId::new(1),
            SimTime::from_micros(10),
            &mut rng,
            &mut next,
        );
        assert_eq!(ctx.device(), DeviceId::new(1));
        assert_eq!(ctx.now(), SimTime::from_micros(10));
        ctx.send(DeviceId::new(2), vec![1, 2]);
        let t = ctx.set_timer(Duration::from_micros(5));
        assert_eq!(t, TimerToken(0));
        let t2 = ctx.set_timer(Duration::from_micros(5));
        assert_eq!(t2, TimerToken(1));
        ctx.cancel_timer(t);
        ctx.observe("x", 1.0);
        ctx.broadcast(vec![DeviceId::new(3)], vec![9]);
        ctx.broadcast(vec![], vec![9]); // dropped
        ctx.halt();
        assert_eq!(ctx.commands.len(), 7);
        let _ = ctx.rng().next_u64();
    }
}
