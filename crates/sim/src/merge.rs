//! Window-barrier merge and the parallel worker protocol.
//!
//! The sharded engine's determinism argument lives here. Each window,
//! every shard independently produces a [`WindowReport`]: commutative
//! metric [`Deltas`](crate::shard::Deltas), per-window fault counters,
//! a journal of ordered side effects (pre-sorted by the shard in its
//! own thread), and outbound cross-shard events. At the barrier the
//! coordinator:
//!
//! 1. sums the deltas and fault counters (order-independent by
//!    construction — plain integer sums and min/max);
//! 2. k-way-merges the pre-sorted journals by the *intrinsic* event key
//!    `(at, origin, seq, intra)` — a streaming scan of the shard heads,
//!    no concatenation, no re-sort — applying trace records and metric
//!    observations in that canonical order;
//! 3. routes outbound events to their destination shards in
//!    per-destination batches;
//! 4. hands each emptied report (journal/outbound/delta buffers, with
//!    their capacity) back through the shard's slot, so steady-state
//!    windows perform no allocation on either side of the barrier.
//!
//! Because the per-shard inputs to each window are a pure function of
//! the previous barrier state, and every cross-shard effect is replayed
//! in an order that no longer depends on which shard produced it first,
//! the merged trace, metrics, and fault verdicts are bit-identical for
//! every shard count — including `shards = 1`, which runs the very same
//! window executor without threads.
//!
//! Both barrier directions park instead of spinning ([`EpochGate`]):
//! with more worker threads than free cores, a spinning barrier turns
//! every window into a scheduler fight, which is exactly the regime the
//! committed single-core bench numbers measured.

use crate::fault::FaultCounters;
use crate::metrics::SimMetrics;
use crate::scheduler::Event;
use crate::shard::{JItem, RunEnv, Shard, WindowReport};
use crate::time::SimTime;
use crate::trace::Trace;
use edgelet_util::sync::EpochGate;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, ignoring poisoning (a panicked worker propagates its
/// panic through the thread scope anyway; the data itself is plain
/// buffers that stay structurally valid).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared coordination block between the window coordinator and the
/// per-shard workers. One generation = one window.
#[derive(Debug, Default)]
pub(crate) struct Ctl {
    /// Window generation; the coordinator bumps it to start a window.
    pub generation: EpochGate,
    /// Cumulative count of worker window completions.
    pub done: EpochGate,
    /// Set once the run ends; workers exit.
    pub stop: AtomicBool,
    /// First calendar cell covered by this window.
    pub first_cell: AtomicU64,
    /// Last calendar cell covered by this window (== `first_cell` when
    /// the window start is cell-aligned, `first_cell + 1` otherwise).
    pub last_cell: AtomicU64,
    /// Exclusive end of the window (µs): global min pending time plus
    /// one lookahead.
    pub window_end: AtomicU64,
    /// Deadline clamp (µs, inclusive): events past it stay queued.
    pub clip: AtomicU64,
    /// Per-shard event budget for this window.
    pub budget: AtomicU64,
}

/// Worker body for one shard. Runs until `stop`: parks for the next
/// generation, picks up its recycled report, ingests its mailbox in one
/// batch, executes the window, publishes outbound events into
/// destination mailboxes and its report slot, and signals completion.
pub(crate) fn worker(
    shard: &mut Shard,
    env: &RunEnv<'_>,
    ctl: &Ctl,
    mailboxes: &[Mutex<Vec<Event>>],
    slots: &[Mutex<Option<WindowReport>>],
) {
    let me = shard.idx;
    let mut seen = 0u64;
    let mut ingest: Vec<Event> = Vec::new();
    loop {
        // Park until the next window (or shutdown) opens.
        ctl.generation.wait_min(seen + 1);
        if ctl.stop.load(Ordering::Acquire) {
            return;
        }
        seen += 1;
        // The coordinator returned last window's emptied report through
        // our slot (None on the first window).
        let reuse = {
            let mut slot = lock(&slots[me]);
            slot.take()
        };
        // Ingest cross-shard events published at the previous barrier:
        // swap the buffer out under the lock, push outside it. Safe: the
        // coordinator only opens generation g+1 after every worker
        // finished g, so nobody appends while we swap.
        {
            let mut mb = lock(&mailboxes[me]);
            std::mem::swap(&mut *mb, &mut ingest);
        }
        shard.queue.push_batch(&mut ingest);
        let first_cell = ctl.first_cell.load(Ordering::Acquire);
        let last_cell = ctl.last_cell.load(Ordering::Acquire);
        let window_end = ctl.window_end.load(Ordering::Acquire);
        let clip = ctl.clip.load(Ordering::Acquire);
        let budget = ctl.budget.load(Ordering::Acquire);
        let mut report =
            shard.run_window(env, first_cell, last_cell, window_end, clip, budget, reuse);
        // Publish outbound events. Destination workers won't look at
        // their mailboxes until the next generation opens.
        for (dest, evs) in report.out.outbound.iter_mut().enumerate() {
            if evs.is_empty() {
                continue;
            }
            lock(&mailboxes[dest]).append(evs);
        }
        *lock(&slots[me]) = Some(report);
        ctl.done.add(1);
    }
}

/// Global accumulators the barrier merge updates.
pub(crate) struct MergeTargets<'a> {
    pub metrics: &'a mut SimMetrics,
    pub trace: &'a mut Trace,
    pub fault_counters: &'a mut FaultCounters,
    pub real_pending: &'a mut u64,
    pub parked: &'a mut u64,
    pub now: &'a mut SimTime,
}

/// Outcome of one barrier merge.
#[derive(Debug, Default)]
pub(crate) struct WindowSummary {
    /// Earliest pending event across all shard queues and outbound
    /// buffers after the window; `None` means the system drained.
    pub next_min_at: Option<u64>,
    /// Some shard exhausted its event budget mid-window.
    pub hit_budget: bool,
}

/// Folds a window's commutative counter deltas into the metrics.
/// Shared by the barrier merge and the sequential fallback (which
/// applies one event's worth of deltas at a time).
pub(crate) fn apply_deltas(metrics: &mut SimMetrics, d: &crate::shard::Deltas) {
    metrics.messages_sent += d.sent;
    metrics.messages_delivered += d.delivered;
    metrics.messages_dropped += d.dropped;
    metrics.messages_corrupted += d.corrupted;
    metrics.messages_to_crashed += d.to_crashed;
    metrics.messages_deferred += d.deferred;
    metrics.bytes_sent += d.bytes_sent;
    metrics.delivery_delay.merge(&d.delay);
    metrics.disconnections += d.disconnections;
    metrics.crashes += d.crashes;
    metrics.events_processed += d.events;
}

/// Merges the shards' window reports into the global simulation state
/// (step 1–2 of the barrier; outbound routing and report recycling are
/// the caller's steps 3–4, since ownership of the destination queues
/// and slots differs between the threaded and inline paths).
///
/// Each report's journal must be pre-sorted by `(at, origin, seq,
/// intra)` — [`Shard::run_window`] guarantees it — so the canonical
/// replay order falls out of a streaming k-way merge: repeatedly take
/// the smallest head among the k journals. Journals are drained in
/// place (capacity kept for recycling); nothing is concatenated or
/// re-sorted.
pub(crate) fn merge_reports(
    reports: &mut [WindowReport],
    t: &mut MergeTargets<'_>,
) -> WindowSummary {
    let mut summary = WindowSummary::default();
    for report in reports.iter() {
        let d = &report.out.deltas;
        apply_deltas(t.metrics, d);
        *t.real_pending = ((*t.real_pending as i64) + d.real_pending).max(0) as u64;
        *t.parked = ((*t.parked as i64) + d.parked).max(0) as u64;
        *t.now = (*t.now).max(d.last_at);
        t.fault_counters.merge(&report.fc);
        summary.hit_budget |= report.hit_budget;
        for cand in [report.queue_min_at, report.outbound_min_at] {
            summary.next_min_at = match (summary.next_min_at, cand) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
    }
    let mut heads: Vec<_> = reports
        .iter_mut()
        .map(|r| r.out.journal.drain(..).peekable())
        .collect();
    loop {
        // Pick the journal whose head carries the smallest key. A linear
        // scan of k heads per entry beats heap bookkeeping for the small
        // shard counts in play.
        let mut best: Option<usize> = None;
        let mut best_key = (SimTime::ZERO, 0u64, 0u64, 0u32);
        for (i, head) in heads.iter_mut().enumerate() {
            if let Some(e) = head.peek() {
                let key = (e.at, e.origin, e.seq, e.intra);
                if best.is_none() || key < best_key {
                    best = Some(i);
                    best_key = key;
                }
            }
        }
        let Some(i) = best else { break };
        let Some(entry) = heads[i].next() else { break };
        match entry.item {
            JItem::Trace(ev) => t.trace.record(entry.at, ev),
            JItem::Observe(name, value) => t.metrics.observe(name, value),
        }
    }
    summary
}
