//! Window-barrier merge and the parallel worker protocol.
//!
//! The sharded engine's determinism argument lives here. Each window,
//! every shard independently produces a [`WindowReport`]: commutative
//! metric [`Deltas`](crate::shard::Deltas), per-window fault counters,
//! a journal of ordered side effects, and outbound cross-shard events.
//! At the barrier the coordinator:
//!
//! 1. sums the deltas and fault counters (order-independent by
//!    construction — plain integer sums and min/max);
//! 2. concatenates the journals and sorts them by the *intrinsic* event
//!    key `(at, origin, seq, intra)`, then applies trace records and
//!    metric observations in that canonical order;
//! 3. routes outbound events to their destination shards.
//!
//! Because the per-shard inputs to each window are a pure function of
//! the previous barrier state, and every cross-shard effect is replayed
//! in an order that no longer depends on which shard produced it first,
//! the merged trace, metrics, and fault verdicts are bit-identical for
//! every shard count — including `shards = 1`, which runs the very same
//! window executor without threads.

use crate::fault::FaultCounters;
use crate::metrics::SimMetrics;
use crate::scheduler::Event;
use crate::shard::{JItem, RunEnv, Shard, WindowReport};
use crate::time::SimTime;
use crate::trace::Trace;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, ignoring poisoning (a panicked worker propagates its
/// panic through the thread scope anyway; the data itself is plain
/// buffers that stay structurally valid).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared coordination block between the window coordinator and the
/// per-shard workers. One generation = one window.
#[derive(Debug, Default)]
pub(crate) struct Ctl {
    /// Window generation; the coordinator bumps it to start a window.
    pub generation: AtomicU64,
    /// Workers that finished the current generation.
    pub done: AtomicU64,
    /// Set once the run ends; workers exit.
    pub stop: AtomicBool,
    /// Calendar cell to open this window.
    pub cell_idx: AtomicU64,
    /// Exclusive end of the window (µs).
    pub cell_end: AtomicU64,
    /// Deadline clamp (µs, inclusive): events past it stay queued.
    pub clip: AtomicU64,
    /// Per-shard event budget for this window.
    pub budget: AtomicU64,
}

/// Worker body for one shard. Runs until `stop`: waits for the next
/// generation, ingests its mailbox, executes the window, publishes
/// outbound events into destination mailboxes and its report slot, and
/// signals completion.
pub(crate) fn worker(
    shard: &mut Shard,
    env: &RunEnv<'_>,
    ctl: &Ctl,
    mailboxes: &[Mutex<Vec<Event>>],
    slots: &[Mutex<Option<WindowReport>>],
) {
    let me = shard.idx;
    let mut seen = 0u64;
    loop {
        // Wait for the next window (or shutdown). Short spin, then yield.
        let mut spins = 0u32;
        loop {
            if ctl.stop.load(Ordering::Acquire) {
                return;
            }
            if ctl.generation.load(Ordering::Acquire) > seen {
                break;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        seen += 1;
        // Ingest cross-shard events published at the previous barrier.
        // Safe: the coordinator only opens generation g+1 after every
        // worker finished g, so nobody appends while we drain.
        {
            let mut mb = lock(&mailboxes[me]);
            for ev in mb.drain(..) {
                shard.queue.push(ev);
            }
        }
        let cell_idx = ctl.cell_idx.load(Ordering::Acquire);
        let cell_end = ctl.cell_end.load(Ordering::Acquire);
        let clip = ctl.clip.load(Ordering::Acquire);
        let budget = ctl.budget.load(Ordering::Acquire);
        let mut report = shard.run_window(env, cell_idx, cell_end, clip, budget);
        // Publish outbound events. Destination workers won't look at
        // their mailboxes until the next generation opens.
        for (dest, evs) in report.out.outbound.iter_mut().enumerate() {
            if evs.is_empty() {
                continue;
            }
            lock(&mailboxes[dest]).append(evs);
        }
        *lock(&slots[me]) = Some(report);
        ctl.done.fetch_add(1, Ordering::Release);
    }
}

/// Global accumulators the barrier merge updates.
pub(crate) struct MergeTargets<'a> {
    pub metrics: &'a mut SimMetrics,
    pub trace: &'a mut Trace,
    pub fault_counters: &'a mut FaultCounters,
    pub real_pending: &'a mut u64,
    pub parked: &'a mut u64,
    pub now: &'a mut SimTime,
}

/// Outcome of one barrier merge.
#[derive(Debug, Default)]
pub(crate) struct WindowSummary {
    /// Earliest pending event across all shard queues and outbound
    /// buffers after the window; `None` means the system drained.
    pub next_min_at: Option<u64>,
    /// Some shard exhausted its event budget mid-window.
    pub hit_budget: bool,
}

/// Folds a window's commutative counter deltas into the metrics.
/// Shared by the barrier merge and the sequential fallback (which
/// applies one event's worth of deltas at a time).
pub(crate) fn apply_deltas(metrics: &mut SimMetrics, d: &crate::shard::Deltas) {
    metrics.messages_sent += d.sent;
    metrics.messages_delivered += d.delivered;
    metrics.messages_dropped += d.dropped;
    metrics.messages_corrupted += d.corrupted;
    metrics.messages_to_crashed += d.to_crashed;
    metrics.messages_deferred += d.deferred;
    metrics.bytes_sent += d.bytes_sent;
    metrics.delivery_delay.merge(&d.delay);
    metrics.disconnections += d.disconnections;
    metrics.crashes += d.crashes;
    metrics.events_processed += d.events;
}

/// Merges the shards' window reports into the global simulation state
/// (step 1–2 of the barrier; outbound routing is the caller's step 3,
/// since ownership of the destination queues differs between the
/// threaded and inline paths).
pub(crate) fn merge_reports(reports: Vec<WindowReport>, t: &mut MergeTargets<'_>) -> WindowSummary {
    let mut summary = WindowSummary::default();
    let mut journal = Vec::new();
    for report in reports {
        let d = &report.out.deltas;
        apply_deltas(t.metrics, d);
        *t.real_pending = ((*t.real_pending as i64) + d.real_pending).max(0) as u64;
        *t.parked = ((*t.parked as i64) + d.parked).max(0) as u64;
        *t.now = (*t.now).max(d.last_at);
        t.fault_counters.merge(&report.fc);
        summary.hit_budget |= report.hit_budget;
        for cand in [report.queue_min_at, report.outbound_min_at] {
            summary.next_min_at = match (summary.next_min_at, cand) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        journal.extend(report.out.journal);
    }
    // Canonical replay order: the intrinsic event key, then the
    // intra-event counter. Unique, hence a total order independent of
    // which shard executed what.
    journal.sort_unstable_by_key(|e| (e.at, e.origin, e.seq, e.intra));
    for entry in journal {
        match entry.item {
            JItem::Trace(ev) => t.trace.record(entry.at, ev),
            JItem::Observe(name, value) => t.metrics.observe(name, value),
        }
    }
    summary
}
