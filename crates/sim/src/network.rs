//! Network link model: latency distributions, loss and corruption.
//!
//! A single [`NetworkModel`] applies to all links. For each message the
//! model draws, from the simulation's dedicated network RNG stream:
//!
//! 1. a **fate** — delivered, dropped (with probability `drop_probability`),
//!    or corrupted (one random byte flipped; the wire frame CRC turns this
//!    into a detected loss at the receiver);
//! 2. a **latency** from the configured [`LatencyModel`].
//!
//! Opportunistic networks are modeled by the heavy-tailed
//! [`LatencyModel::LogNormal`] option combined with device churn in
//! [`crate::churn`]: uncertainty in the paper's sense is "late or never",
//! and both knobs contribute.

use crate::time::Duration;
use edgelet_util::rng::DetRng;

/// Distribution of one-way message latency.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Constant latency.
    Fixed(Duration),
    /// Uniform between the bounds.
    Uniform {
        /// Minimum latency.
        min: Duration,
        /// Maximum latency.
        max: Duration,
    },
    /// Exponential with the given mean, shifted by `base` (models a
    /// well-connected but queueing network).
    Exponential {
        /// Fixed propagation component.
        base: Duration,
        /// Mean of the exponential component.
        mean: Duration,
    },
    /// Log-normal parameterized by median and sigma (heavy tail; models
    /// opportunistic store-and-forward hops where a message may take
    /// minutes or hours).
    LogNormal {
        /// Median latency.
        median: Duration,
        /// Log-space standard deviation; 0.5–1.5 are realistic OppNet values.
        sigma: f64,
    },
}

impl LatencyModel {
    /// A lower bound on every latency this model can draw. This is the
    /// conservative-PDES lookahead of the sharded engine: no message can
    /// arrive sooner than `min_latency` after it was sent, so shards may
    /// run `[t, t + min_latency)` of virtual time without coordination.
    /// Heavy-tailed [`LatencyModel::LogNormal`] has no useful lower bound
    /// and returns [`Duration::ZERO`], which forces sequential execution.
    pub fn min_latency(&self) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, .. } => min,
            LatencyModel::Exponential { base, .. } => base,
            LatencyModel::LogNormal { .. } => Duration::ZERO,
        }
    }

    /// Draws one latency.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = (min.as_micros(), max.as_micros());
                if hi <= lo {
                    min
                } else {
                    Duration::from_micros(rng.range(lo..=hi))
                }
            }
            LatencyModel::Exponential { base, mean } => {
                base + Duration::from_secs_f64(rng.exponential(mean.as_secs_f64().max(1e-9)))
            }
            LatencyModel::LogNormal { median, sigma } => {
                Duration::from_secs_f64(rng.log_normal(median.as_secs_f64().max(1e-9), sigma))
            }
        }
    }
}

/// What happens to one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fate {
    /// Delivered intact after the latency.
    Delivered,
    /// Silently lost.
    Dropped,
    /// Delivered after the latency with one byte flipped at the given
    /// offset (modulo payload length).
    Corrupted(usize),
}

/// The link model applied to every message.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Latency distribution.
    pub latency: LatencyModel,
    /// Probability a message is silently lost.
    pub drop_probability: f64,
    /// Probability a delivered message has a byte flipped in transit.
    pub corruption_probability: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self {
            latency: LatencyModel::Uniform {
                min: Duration::from_millis(20),
                max: Duration::from_millis(120),
            },
            drop_probability: 0.0,
            corruption_probability: 0.0,
        }
    }
}

impl NetworkModel {
    /// A perfectly reliable low-latency network (validity baselines).
    pub fn reliable(latency: Duration) -> Self {
        Self {
            latency: LatencyModel::Fixed(latency),
            drop_probability: 0.0,
            corruption_probability: 0.0,
        }
    }

    /// A lossy network with uniform latency.
    pub fn lossy(min: Duration, max: Duration, drop_probability: f64) -> Self {
        Self {
            latency: LatencyModel::Uniform { min, max },
            drop_probability,
            corruption_probability: 0.0,
        }
    }

    /// An opportunistic-network profile: heavy-tailed delays (median
    /// `median_delay`, sigma 1.0) plus the given loss rate.
    pub fn opportunistic(median_delay: Duration, drop_probability: f64) -> Self {
        Self {
            latency: LatencyModel::LogNormal {
                median: median_delay,
                sigma: 1.0,
            },
            drop_probability,
            corruption_probability: 0.0,
        }
    }

    /// Draws the fate of one message.
    pub fn fate(&self, rng: &mut DetRng) -> Fate {
        if rng.chance(self.drop_probability) {
            Fate::Dropped
        } else if rng.chance(self.corruption_probability) {
            Fate::Corrupted(rng.range(0..usize::MAX))
        } else {
            Fate::Delivered
        }
    }

    /// Draws a latency.
    pub fn sample_latency(&self, rng: &mut DetRng) -> Duration {
        self.latency.sample(rng)
    }

    /// Lower bound on every drawn latency (see [`LatencyModel::min_latency`]).
    pub fn min_latency(&self) -> Duration {
        self.latency.min_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(42)
    }

    #[test]
    fn fixed_latency() {
        let m = LatencyModel::Fixed(Duration::from_millis(10));
        let mut r = rng();
        for _ in 0..5 {
            assert_eq!(m.sample(&mut r), Duration::from_millis(10));
        }
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            min: Duration::from_millis(5),
            max: Duration::from_millis(15),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(15));
        }
        // Degenerate bounds fall back to min.
        let deg = LatencyModel::Uniform {
            min: Duration::from_millis(7),
            max: Duration::from_millis(7),
        };
        assert_eq!(deg.sample(&mut r), Duration::from_millis(7));
    }

    #[test]
    fn exponential_latency_exceeds_base() {
        let m = LatencyModel::Exponential {
            base: Duration::from_millis(10),
            mean: Duration::from_millis(50),
        };
        let mut r = rng();
        let mut total = 0.0;
        for _ in 0..5000 {
            let d = m.sample(&mut r);
            assert!(d >= Duration::from_millis(10));
            total += d.as_secs_f64();
        }
        let mean = total / 5000.0;
        assert!((mean - 0.060).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn lognormal_median_calibrated() {
        let m = LatencyModel::LogNormal {
            median: Duration::from_secs(60),
            sigma: 1.0,
        };
        let mut r = rng();
        let mut xs: Vec<f64> = (0..4001).map(|_| m.sample(&mut r).as_secs_f64()).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 60.0).abs() < 6.0, "median {median}");
        // Heavy tail exists.
        assert!(xs[xs.len() - 1] > 300.0);
    }

    #[test]
    fn fate_probabilities() {
        let model = NetworkModel {
            latency: LatencyModel::Fixed(Duration::ZERO),
            drop_probability: 0.3,
            corruption_probability: 0.1,
        };
        let mut r = rng();
        let n = 20_000;
        let mut dropped = 0;
        let mut corrupted = 0;
        for _ in 0..n {
            match model.fate(&mut r) {
                Fate::Dropped => dropped += 1,
                Fate::Corrupted(_) => corrupted += 1,
                Fate::Delivered => {}
            }
        }
        let drop_rate = dropped as f64 / n as f64;
        // Corruption applies to non-dropped messages: expected 0.7 * 0.1.
        let corrupt_rate = corrupted as f64 / n as f64;
        assert!((drop_rate - 0.3).abs() < 0.02, "drop {drop_rate}");
        assert!((corrupt_rate - 0.07).abs() < 0.01, "corrupt {corrupt_rate}");
    }

    #[test]
    fn presets() {
        let r = NetworkModel::reliable(Duration::from_millis(1));
        assert_eq!(r.drop_probability, 0.0);
        let mut g = rng();
        assert_eq!(r.fate(&mut g), Fate::Delivered);
        let l = NetworkModel::lossy(Duration::ZERO, Duration::from_millis(5), 0.5);
        assert_eq!(l.drop_probability, 0.5);
        let o = NetworkModel::opportunistic(Duration::from_secs(30), 0.1);
        assert!(matches!(o.latency, LatencyModel::LogNormal { .. }));
    }
}
