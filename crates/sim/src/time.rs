//! Virtual time with microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (microseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "never happens" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Builds from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Duration(0)
        } else {
            Duration((s * 1e6).round() as u64)
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales by a positive factor (used for device speed ratios).
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(1_000);
        let d = Duration::from_millis(2);
        assert_eq!((t + d).as_micros(), 3_000);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.since(t + d), Duration::ZERO);
        let mut t2 = t;
        t2 += Duration::from_secs(1);
        assert_eq!(t2.as_micros(), 1_001_000);
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert!((SimTime::from_micros(1_500_000).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(
            Duration::from_secs(3).mul_f64(0.5),
            Duration::from_secs_f64(1.5)
        );
    }

    #[test]
    fn saturation() {
        let t = SimTime::MAX;
        assert_eq!(t + Duration::from_secs(1), SimTime::MAX);
        let d = Duration::from_secs(1) - Duration::from_secs(5);
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimTime::from_micros(1_234_000)), "t=1.234s");
        assert_eq!(format!("{}", Duration::from_millis(250)), "0.250s");
    }
}
