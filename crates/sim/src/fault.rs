//! Protocol-aware fault injection: the FaultPlan DSL.
//!
//! The churn and network models ([`crate::churn`], [`crate::network`])
//! inject faults *blindly*: a Bernoulli crash or a uniform drop does not
//! know whether it hit a heartbeat or the one partial result a combiner
//! was waiting for. Edge failure modes, however, are adversarially
//! *timed* — a node dying exactly at a hand-off hurts far more than a
//! random crash. A [`FaultPlan`] closes that gap: composable rules that
//! target faults by **protocol position** ("drop the first
//! `GroupingPartial`", "crash the builder the instant its quota is
//! met"), evaluated deterministically inside the engine.
//!
//! The simulator stays protocol-agnostic: it cannot decode
//! `edgelet-exec` messages itself (the crate dependency points the other
//! way). Instead the harness installs a [`Classifier`] — a closure that
//! maps raw payload bytes to a numeric message kind — via
//! [`crate::Simulation::set_classifier`]. Rules that match on
//! [`MsgMatch::kinds`] only fire when the classifier recognises the
//! payload; sealed (encrypted) payloads classify as `None` and never
//! match a kind-restricted rule.
//!
//! ## Match points
//!
//! Every action has a fixed evaluation point:
//!
//! * **Send** — evaluated in `route()` when a message leaves the sender,
//!   *before* the network fate roll: [`FaultAction::Drop`],
//!   [`FaultAction::Delay`], [`FaultAction::Duplicate`],
//!   [`FaultAction::Reorder`], [`FaultAction::CrashSender`].
//! * **Deliver** — evaluated when a message reaches a live receiver,
//!   *before* the actor processes it: [`FaultAction::CrashReceiver`].
//!   The triggering message is consumed by the crash — the harshest
//!   possible timing for a hand-off.
//!
//! Rules are evaluated in plan order; the first rule that *fires*
//! (matches and is within its `skip`/`limit` window) wins for that
//! message. Rules that match but are skipped still advance their
//! occurrence counters, which is what makes "the third partial" an
//! expressible target.

use crate::time::{Duration, SimTime};
use edgelet_util::ids::DeviceId;

/// Maps raw payload bytes to a protocol message kind.
///
/// Installed with [`crate::Simulation::set_classifier`]. Returning
/// `None` means "unclassifiable" (e.g. an encrypted payload); such
/// messages never match a kind-restricted rule but still match rules
/// with `kinds: None`.
pub type Classifier = Box<dyn Fn(&[u8]) -> Option<u16> + Send + Sync>;

/// Discriminant of a fault action, kept in trace records so oracles can
/// tell what was injected without storing the full rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Message silently discarded.
    Drop,
    /// Message held back by an extra latency.
    Delay,
    /// Message delivered twice.
    Duplicate,
    /// Message swapped with the next rule match.
    Reorder,
    /// Sender crash-stopped right after the send.
    CrashSender,
    /// Receiver crash-stopped at the moment of delivery.
    CrashReceiver,
}

impl FaultKind {
    /// Stable numeric code (used by the trace digest).
    pub fn code(self) -> u8 {
        match self {
            FaultKind::Drop => 0,
            FaultKind::Delay => 1,
            FaultKind::Duplicate => 2,
            FaultKind::Reorder => 3,
            FaultKind::CrashSender => 4,
            FaultKind::CrashReceiver => 5,
        }
    }

    /// Short lowercase name (used by the corpus serialisation).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::CrashSender => "crash-sender",
            FaultKind::CrashReceiver => "crash-receiver",
        }
    }
}

/// Where in the message lifecycle a rule is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchPoint {
    /// At `route()` time, before the network fate roll.
    Send,
    /// At delivery to a live receiver, before the actor runs.
    Deliver,
}

/// Why a device crash-stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashCause {
    /// A scheduled [`crate::CrashPlan`] or an explicit `crash_at` —
    /// the pre-existing, "organic" churn model.
    Organic,
    /// A [`FaultRule`] fired (index into the plan's rule list).
    Injected {
        /// Index of the firing rule within the [`FaultPlan`].
        rule: u32,
    },
}

/// Predicate over a message in flight.
///
/// All populated fields must hold for the matcher to accept. An empty
/// matcher (`MsgMatch::default()`) accepts every message.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsgMatch {
    /// Accept only these protocol kinds (as reported by the installed
    /// classifier). `None` = any kind, including unclassifiable.
    pub kinds: Option<Vec<u16>>,
    /// Accept only these senders. `None` = any sender.
    pub from: Option<Vec<DeviceId>>,
    /// Accept only these receivers. `None` = any receiver.
    pub to: Option<Vec<DeviceId>>,
    /// Accept only at or after this virtual time.
    pub after: Option<SimTime>,
    /// Accept only strictly before this virtual time.
    pub until: Option<SimTime>,
}

impl MsgMatch {
    /// Does this matcher accept a message of `kind` from `from` to `to`
    /// at virtual time `now`?
    pub fn accepts(&self, kind: Option<u16>, from: DeviceId, to: DeviceId, now: SimTime) -> bool {
        if let Some(kinds) = &self.kinds {
            match kind {
                Some(k) if kinds.contains(&k) => {}
                _ => return false,
            }
        }
        if let Some(senders) = &self.from {
            if !senders.contains(&from) {
                return false;
            }
        }
        if let Some(receivers) = &self.to {
            if !receivers.contains(&to) {
                return false;
            }
        }
        if let Some(after) = self.after {
            if now < after {
                return false;
            }
        }
        if let Some(until) = self.until {
            if now >= until {
                return false;
            }
        }
        true
    }
}

/// What to do with a matched message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Discard the message (no network fate roll, no `Sent` record).
    Drop,
    /// Add this much latency on top of the network model's draw.
    Delay(Duration),
    /// Deliver the message twice; the copy is delayed by `extra_delay`
    /// on top of its own (independently drawn) network latency.
    Duplicate {
        /// Additional latency applied to the duplicated copy.
        extra_delay: Duration,
    },
    /// Hold the message until the *next* message matched by this rule,
    /// then release both in swapped order. If no second match ever
    /// arrives, the held message behaves as dropped (documented
    /// limitation; deterministic either way).
    Reorder,
    /// Let the send proceed, then crash-stop the sender once its
    /// current actor callback finishes.
    CrashSender,
    /// Crash-stop the receiver at the instant of delivery; the
    /// triggering message is consumed by the crash.
    CrashReceiver,
}

impl FaultAction {
    /// The action's discriminant.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultAction::Drop => FaultKind::Drop,
            FaultAction::Delay(_) => FaultKind::Delay,
            FaultAction::Duplicate { .. } => FaultKind::Duplicate,
            FaultAction::Reorder => FaultKind::Reorder,
            FaultAction::CrashSender => FaultKind::CrashSender,
            FaultAction::CrashReceiver => FaultKind::CrashReceiver,
        }
    }

    /// Where this action is evaluated.
    pub fn match_point(&self) -> MatchPoint {
        match self {
            FaultAction::CrashReceiver => MatchPoint::Deliver,
            _ => MatchPoint::Send,
        }
    }
}

/// One composable fault rule: a matcher, an action, and an occurrence
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Which messages this rule considers.
    pub matcher: MsgMatch,
    /// What happens to a matched message.
    pub action: FaultAction,
    /// Skip the first `skip` matches (0 = fire from the first match).
    pub skip: u64,
    /// Fire at most this many times (`None` = unbounded).
    pub limit: Option<u64>,
}

impl FaultRule {
    /// A rule that applies `action` to every match, starting at the
    /// first.
    pub fn new(action: FaultAction) -> Self {
        FaultRule {
            matcher: MsgMatch::default(),
            action,
            skip: 0,
            limit: None,
        }
    }

    /// Restrict to the given protocol kinds.
    pub fn on_kinds(mut self, kinds: &[u16]) -> Self {
        self.matcher.kinds = Some(kinds.to_vec());
        self
    }

    /// Restrict to the given senders.
    pub fn from(mut self, senders: &[DeviceId]) -> Self {
        self.matcher.from = Some(senders.to_vec());
        self
    }

    /// Restrict to the given receivers.
    pub fn to(mut self, receivers: &[DeviceId]) -> Self {
        self.matcher.to = Some(receivers.to_vec());
        self
    }

    /// Skip the first `n` matches.
    pub fn skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Fire at most `n` times.
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Only fire at or after `t`.
    pub fn after(mut self, t: SimTime) -> Self {
        self.matcher.after = Some(t);
        self
    }

    /// Only fire strictly before `t`.
    pub fn until(mut self, t: SimTime) -> Self {
        self.matcher.until = Some(t);
        self
    }
}

/// An ordered set of fault rules, evaluated first-firing-rule-wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Rules in evaluation order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append a rule (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Append a bidirectional network partition between device groups
    /// `a` and `b` over `[after, until)`: two `Drop` rules covering
    /// both directions of the cut.
    pub fn partition(
        mut self,
        a: &[DeviceId],
        b: &[DeviceId],
        after: SimTime,
        until: SimTime,
    ) -> Self {
        let cut = |from: &[DeviceId], to: &[DeviceId]| FaultRule {
            matcher: MsgMatch {
                kinds: None,
                from: Some(from.to_vec()),
                to: Some(to.to_vec()),
                after: Some(after),
                until: Some(until),
            },
            action: FaultAction::Drop,
            skip: 0,
            limit: None,
        };
        self.rules.push(cut(a, b));
        self.rules.push(cut(b, a));
        self
    }

    /// True when the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// True when every rule's firing decision is a pure function of the
    /// message itself (matcher fields only) — i.e. no rule carries
    /// cross-message state. `skip`/`limit` depend on global occurrence
    /// counters and [`FaultAction::Reorder`] holds a message between
    /// matches, so plans using them must run on the global-order
    /// (sequential) executor; everything else is safe under windowed
    /// sharded execution with per-window counters.
    pub fn is_window_safe(&self) -> bool {
        self.rules
            .iter()
            .all(|r| r.skip == 0 && r.limit.is_none() && !matches!(r.action, FaultAction::Reorder))
    }
}

/// A message held back by a [`FaultAction::Reorder`] rule.
///
/// The resend's network fate, latency, and event sequence number are
/// drawn at *stash* time, while the sender's shard is the executing
/// shard: the eventual swap runs on whichever shard the rule's next
/// match executes on, which must never touch the original sender's
/// per-device state.
#[derive(Debug)]
pub(crate) struct HeldMsg {
    pub from: DeviceId,
    pub to: DeviceId,
    pub payload: edgelet_util::payload::Payload,
    pub sent_at: SimTime,
    /// Pre-drawn network fate for the resend.
    pub fate: crate::network::Fate,
    /// Pre-drawn network latency for the resend.
    pub latency: crate::time::Duration,
    /// Pre-assigned spawn sequence number (from the sender's counter).
    pub seq: u64,
}

/// Per-rule occurrence counters: matches seen (including skipped) and
/// actual firings.
///
/// Counters are plain sums, so partial per-window counters from sharded
/// execution merge commutatively into the run totals. Rules whose firing
/// decision *reads* the counters (`skip`/`limit`) force the sequential
/// executor — see [`FaultPlan::is_window_safe`].
#[derive(Debug, Default, Clone)]
pub struct FaultCounters {
    /// Matches seen per rule at its match point (including skipped).
    pub matched: Vec<u64>,
    /// Times each rule actually fired.
    pub fired: Vec<u64>,
}

impl FaultCounters {
    /// Fresh zeroed counters sized for every rule in `plan`.
    pub fn for_plan(plan: &FaultPlan) -> Self {
        let n = plan.rules.len();
        FaultCounters {
            matched: vec![0; n],
            fired: vec![0; n],
        }
    }

    /// Zeroes the counters in place (scratch reuse across windows).
    pub fn reset(&mut self) {
        self.matched.fill(0);
        self.fired.fill(0);
    }

    /// Folds per-window partial counters into the run totals.
    pub fn merge(&mut self, other: &FaultCounters) {
        for (a, b) in self.matched.iter_mut().zip(&other.matched) {
            *a += b;
        }
        for (a, b) in self.fired.iter_mut().zip(&other.fired) {
            *a += b;
        }
    }

    /// Total number of rule firings so far.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

/// Evaluate all rules of `plan` bound to `point` against a message,
/// advancing the occurrence counters in `counters`; returns the first
/// firing rule's index and action.
///
/// Public so out-of-crate fault carriers (the socket relay's
/// `NetFaultProxy` in `edgelet-net`) evaluate the same DSL with the
/// same first-firing-rule-wins semantics as the engine. For
/// [window-safe](FaultPlan::is_window_safe) plans the firing decision
/// never reads the counters, so callers may keep per-connection
/// counters and still decide identically regardless of arrival order.
pub fn evaluate_plan(
    plan: &FaultPlan,
    counters: &mut FaultCounters,
    point: MatchPoint,
    kind: Option<u16>,
    from: DeviceId,
    to: DeviceId,
    now: SimTime,
) -> Option<(u32, FaultAction)> {
    for (i, rule) in plan.rules.iter().enumerate() {
        if rule.action.match_point() != point {
            continue;
        }
        if !rule.matcher.accepts(kind, from, to, now) {
            continue;
        }
        counters.matched[i] += 1;
        let occurrence = counters.matched[i];
        if occurrence <= rule.skip {
            continue;
        }
        if let Some(limit) = rule.limit {
            if occurrence > rule.skip + limit {
                continue;
            }
        }
        counters.fired[i] += 1;
        return Some((i as u32, rule.action.clone()));
    }
    None
}

/// Engine-side evaluation state for a [`FaultPlan`]: per-rule
/// occurrence counters. Retained as a convenience bundle for
/// single-threaded callers; the engine itself holds the plan, counters
/// and reorder stashes as separate fields.
#[cfg(test)]
#[derive(Debug, Default)]
pub(crate) struct FaultRuntime {
    pub plan: FaultPlan,
    counters: FaultCounters,
}

#[cfg(test)]
impl FaultRuntime {
    pub fn new(plan: FaultPlan) -> Self {
        let counters = FaultCounters::for_plan(&plan);
        FaultRuntime { plan, counters }
    }

    /// Evaluate all rules bound to `point` against a message; returns
    /// the first firing rule's index and action.
    pub fn evaluate(
        &mut self,
        point: MatchPoint,
        kind: Option<u16>,
        from: DeviceId,
        to: DeviceId,
        now: SimTime,
    ) -> Option<(u32, FaultAction)> {
        evaluate_plan(&self.plan, &mut self.counters, point, kind, from, to, now)
    }

    /// Total number of rule firings so far.
    pub fn total_fired(&self) -> u64 {
        self.counters.total_fired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u64) -> DeviceId {
        DeviceId::new(i)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1_000)
    }

    #[test]
    fn empty_matcher_accepts_everything() {
        let m = MsgMatch::default();
        assert!(m.accepts(None, d(0), d(1), SimTime::ZERO));
        assert!(m.accepts(Some(4), d(7), d(7), t(u64::MAX / 2_000)));
    }

    #[test]
    fn kind_restricted_matcher_rejects_unclassifiable() {
        let m = MsgMatch {
            kinds: Some(vec![4]),
            ..MsgMatch::default()
        };
        assert!(m.accepts(Some(4), d(0), d(1), SimTime::ZERO));
        assert!(!m.accepts(Some(5), d(0), d(1), SimTime::ZERO));
        assert!(
            !m.accepts(None, d(0), d(1), SimTime::ZERO),
            "sealed payloads never match kinds"
        );
    }

    #[test]
    fn time_window_is_half_open() {
        let m = MsgMatch {
            after: Some(t(10_000)),
            until: Some(t(20_000)),
            ..MsgMatch::default()
        };
        assert!(!m.accepts(None, d(0), d(1), t(9_999)));
        assert!(m.accepts(None, d(0), d(1), t(10_000)));
        assert!(m.accepts(None, d(0), d(1), t(19_999)));
        assert!(!m.accepts(None, d(0), d(1), t(20_000)));
    }

    #[test]
    fn skip_and_limit_select_an_occurrence_window() {
        let plan = FaultPlan::new().rule(FaultRule::new(FaultAction::Drop).skip(1).limit(2));
        let mut rt = FaultRuntime::new(plan);
        let fire = |rt: &mut FaultRuntime| {
            rt.evaluate(MatchPoint::Send, None, d(0), d(1), SimTime::ZERO)
                .is_some()
        };
        assert!(!fire(&mut rt), "first match skipped");
        assert!(fire(&mut rt), "second fires");
        assert!(fire(&mut rt), "third fires");
        assert!(!fire(&mut rt), "limit exhausted");
        assert_eq!(rt.total_fired(), 2);
    }

    #[test]
    fn first_firing_rule_wins_but_skipped_rules_still_count() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new(FaultAction::Drop).skip(1))
            .rule(FaultRule::new(FaultAction::Delay(Duration::from_secs(1))));
        let mut rt = FaultRuntime::new(plan);
        // First message: rule 0 matches but is in its skip window, so
        // rule 1 fires.
        let (idx, action) = rt
            .evaluate(MatchPoint::Send, None, d(0), d(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(idx, 1);
        assert_eq!(action.kind(), FaultKind::Delay);
        // Second message: rule 0 is past its skip window and wins.
        let (idx, action) = rt
            .evaluate(MatchPoint::Send, None, d(0), d(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(idx, 0);
        assert_eq!(action.kind(), FaultKind::Drop);
    }

    #[test]
    fn window_safety_flags_stateful_rules() {
        assert!(FaultPlan::new().is_window_safe(), "empty plan is safe");
        let stateless = FaultPlan::new()
            .rule(FaultRule::new(FaultAction::Drop).on_kinds(&[3]))
            .rule(FaultRule::new(FaultAction::CrashSender).from(&[d(1)]))
            .partition(&[d(1)], &[d(2)], SimTime::ZERO, t(1_000));
        assert!(stateless.is_window_safe());
        let with_skip = FaultPlan::new().rule(FaultRule::new(FaultAction::Drop).skip(1));
        assert!(!with_skip.is_window_safe());
        let with_limit = FaultPlan::new().rule(FaultRule::new(FaultAction::Drop).limit(3));
        assert!(!with_limit.is_window_safe());
        let with_reorder = FaultPlan::new().rule(FaultRule::new(FaultAction::Reorder));
        assert!(!with_reorder.is_window_safe());
    }

    #[test]
    fn partition_builds_a_symmetric_cut() {
        let plan = FaultPlan::new().partition(&[d(1), d(2)], &[d(3)], SimTime::ZERO, t(60_000));
        assert_eq!(plan.rules.len(), 2);
        let mut rt = FaultRuntime::new(plan);
        let mid = t(5_000);
        assert!(rt
            .evaluate(MatchPoint::Send, None, d(1), d(3), mid)
            .is_some());
        assert!(rt
            .evaluate(MatchPoint::Send, None, d(3), d(2), mid)
            .is_some());
        assert!(
            rt.evaluate(MatchPoint::Send, None, d(1), d(2), mid)
                .is_none(),
            "within group A"
        );
        let late = t(61_000);
        assert!(
            rt.evaluate(MatchPoint::Send, None, d(1), d(3), late)
                .is_none(),
            "window closed"
        );
    }
}
