//! Deterministic discrete-event simulator for Edgelet computing.
//!
//! The paper's protocols run over "uncertain communications": opportunistic
//! networks, devices that disconnect at will, are temporarily out of reach,
//! or fail outright. This crate provides the virtual world those protocols
//! execute in:
//!
//! * [`time`] — virtual time (`SimTime`, microsecond resolution) and
//!   durations;
//! * [`actor`] — the protocol programming model: actors installed on
//!   devices, exchanging byte messages and timers through a [`actor::Context`];
//! * [`network`] — the link model: latency distributions, message drop and
//!   corruption probabilities;
//! * [`churn`] — per-device availability (up/down renewal process) and
//!   crash-stop failure injection;
//! * [`engine`] — the event loop gluing it all together;
//! * [`metrics`] — counters every experiment reports (messages, bytes,
//!   drops, delays);
//! * [`trace`] — an optional bounded event log, the textual equivalent of
//!   the demo GUI's step-by-step view.
//!
//! # Semantics
//!
//! *Disconnected* (down) devices keep computing — their timers fire — but
//! cannot send or receive: outgoing messages wait in the sender's outbox,
//! incoming ones in the receiver's inbox, both flushed on reconnection
//! (store-and-forward, as in an OppNet). *Crashed* devices stop entirely
//! and never return. Every random choice derives from one root seed, so
//! runs are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod churn;
pub mod endpoint;
pub mod engine;
pub mod fault;
pub(crate) mod merge;
pub mod metrics;
pub mod network;
pub(crate) mod scheduler;
pub(crate) mod shard;
pub mod time;
pub mod trace;

pub use actor::{Actor, Command, Context, TimerToken};
pub use churn::{Availability, CrashPlan};
pub use endpoint::SimEndpoint;
pub use engine::{DeviceConfig, SimConfig, Simulation};
pub use fault::{
    evaluate_plan, Classifier, CrashCause, FaultAction, FaultCounters, FaultKind, FaultPlan,
    FaultRule, MatchPoint, MsgMatch,
};
pub use metrics::{DelayStats, SimMetrics};
pub use network::{LatencyModel, NetworkModel};
pub use time::{Duration, SimTime};
pub use trace::{Trace, TraceEvent, TraceRecord};
