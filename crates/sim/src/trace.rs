//! Optional event tracing: the textual equivalent of the demo GUI's
//! step-by-step execution view.
//!
//! When enabled (see [`crate::SimConfig::trace_capacity`]), the engine
//! records one [`TraceEvent`] per interesting transition into a bounded
//! ring buffer; the harness can then reconstruct the phases of an
//! execution ("collection started", "partition 3 shipped", "device 17
//! crashed") or assert fine-grained protocol properties in tests.

use crate::fault::{CrashCause, FaultKind};
use crate::time::SimTime;
use edgelet_util::ids::DeviceId;
use std::collections::VecDeque;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message left `from` toward `to` (after the network fate roll).
    Sent {
        /// Sender.
        from: DeviceId,
        /// Receiver.
        to: DeviceId,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message was handed to the receiving actor.
    Delivered {
        /// Sender.
        from: DeviceId,
        /// Receiver.
        to: DeviceId,
    },
    /// A message was lost in transit.
    Dropped {
        /// Sender.
        from: DeviceId,
        /// Intended receiver.
        to: DeviceId,
    },
    /// A device disconnected.
    WentDown(DeviceId),
    /// A device reconnected.
    CameUp(DeviceId),
    /// A device crash-stopped.
    Crashed {
        /// The device that crashed.
        device: DeviceId,
        /// Why: organic churn or an injected fault rule. Organic
        /// crashes digest byte-identically to the pre-cause format, so
        /// existing pinned digests stay stable.
        cause: CrashCause,
    },
    /// A timer callback ran on a device.
    TimerFired {
        /// The device whose timer fired.
        device: DeviceId,
        /// The raw timer token.
        token: u64,
    },
    /// A fault rule fired on a message.
    FaultInjected {
        /// Index of the firing rule in the installed fault plan.
        rule: u32,
        /// The action that was taken.
        kind: FaultKind,
        /// Sender of the affected message.
        from: DeviceId,
        /// Receiver of the affected message.
        to: DeviceId,
    },
    /// Protocol kind of a routed message, as reported by the installed
    /// classifier. Only recorded when a classifier is present, so
    /// organic (classifier-less) traces are unchanged.
    MsgKind {
        /// Sender.
        from: DeviceId,
        /// Receiver.
        to: DeviceId,
        /// Decoded protocol message kind.
        kind: u16,
    },
}

impl TraceEvent {
    /// A crash-stop caused by the organic churn model (scheduled
    /// [`crate::CrashPlan`] or explicit `crash_at`).
    pub fn organic_crash(device: DeviceId) -> Self {
        TraceEvent::Crashed {
            device,
            cause: CrashCause::Organic,
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// Bounded ring buffer of trace records.
#[derive(Debug, Default)]
pub struct Trace {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    total_recorded: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` records (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            records: VecDeque::with_capacity(capacity.min(4_096)),
            total_recorded: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (drops the oldest past capacity).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(TraceRecord { at, event });
        self.total_recorded += 1;
    }

    /// Records the event produced by `make` — but only when tracing is
    /// enabled. With `trace_capacity: 0` the closure never runs, so hot
    /// paths pay a single branch and construct nothing.
    #[inline]
    pub fn record_with(&mut self, at: SimTime, make: impl FnOnce() -> TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        self.record(at, make());
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Total events recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Order-sensitive digest (FNV-1a, 64-bit) over every retained
    /// record. Two runs with identical traces produce identical digests
    /// on any platform, so tests can pin "same seed → same trace" as a
    /// single integer instead of diffing record lists.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        for r in &self.records {
            mix(r.at.as_micros());
            match r.event {
                TraceEvent::Crashed { device, cause } => {
                    mix(5);
                    mix(device.raw());
                    // Organic crashes mix nothing further: byte-for-byte
                    // the pre-cause encoding, keeping old digests valid.
                    if let CrashCause::Injected { rule } = cause {
                        mix(0xFA);
                        mix(u64::from(rule));
                    }
                }
                TraceEvent::TimerFired { device, token } => {
                    mix(6);
                    mix(device.raw());
                    mix(token);
                }
                TraceEvent::FaultInjected {
                    rule,
                    kind,
                    from,
                    to,
                } => {
                    mix(7);
                    mix(u64::from(rule));
                    mix(u64::from(kind.code()));
                    mix(from.raw());
                    mix(to.raw());
                }
                TraceEvent::MsgKind { from, to, kind } => {
                    mix(8);
                    mix(from.raw());
                    mix(to.raw());
                    mix(u64::from(kind));
                }
                TraceEvent::Sent { from, to, bytes } => {
                    mix(0);
                    mix(from.raw());
                    mix(to.raw());
                    mix(bytes as u64);
                }
                TraceEvent::Delivered { from, to } => {
                    mix(1);
                    mix(from.raw());
                    mix(to.raw());
                }
                TraceEvent::Dropped { from, to } => {
                    mix(2);
                    mix(from.raw());
                    mix(to.raw());
                }
                TraceEvent::WentDown(d) => {
                    mix(3);
                    mix(d.raw());
                }
                TraceEvent::CameUp(d) => {
                    mix(4);
                    mix(d.raw());
                }
            }
        }
        h
    }

    /// Records involving one device.
    pub fn for_device(&self, device: DeviceId) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| match r.event {
                TraceEvent::Sent { from, to, .. }
                | TraceEvent::Delivered { from, to }
                | TraceEvent::Dropped { from, to }
                | TraceEvent::FaultInjected { from, to, .. }
                | TraceEvent::MsgKind { from, to, .. } => from == device || to == device,
                TraceEvent::WentDown(d) | TraceEvent::CameUp(d) => d == device,
                TraceEvent::Crashed { device: d, .. }
                | TraceEvent::TimerFired { device: d, .. } => d == device,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        assert!(!t.enabled());
        t.record(SimTime::ZERO, TraceEvent::organic_crash(DeviceId::new(1)));
        assert_eq!(t.total_recorded(), 0);
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn record_with_skips_construction_when_disabled() {
        let mut disabled = Trace::new(0);
        disabled.record_with(SimTime::ZERO, || {
            panic!("event must not be constructed with tracing off")
        });
        assert_eq!(disabled.total_recorded(), 0);

        let mut enabled = Trace::new(2);
        enabled.record_with(SimTime::ZERO, || {
            TraceEvent::organic_crash(DeviceId::new(1))
        });
        assert_eq!(enabled.total_recorded(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(
                SimTime::from_micros(i),
                TraceEvent::WentDown(DeviceId::new(i)),
            );
        }
        assert_eq!(t.total_recorded(), 5);
        let kept: Vec<u64> = t
            .records()
            .map(|r| match r.event {
                TraceEvent::WentDown(d) => d.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let sent = |from: u64, to: u64, bytes: usize| TraceEvent::Sent {
            from: DeviceId::new(from),
            to: DeviceId::new(to),
            bytes,
        };
        let build = |events: &[(u64, TraceEvent)]| {
            let mut t = Trace::new(16);
            for (us, e) in events {
                t.record(SimTime::from_micros(*us), e.clone());
            }
            t.digest()
        };
        let a = build(&[(1, sent(1, 2, 64)), (2, sent(2, 1, 64))]);
        assert_eq!(
            a,
            build(&[(1, sent(1, 2, 64)), (2, sent(2, 1, 64))]),
            "identical traces digest identically"
        );
        assert_ne!(a, build(&[(2, sent(2, 1, 64)), (1, sent(1, 2, 64))]));
        assert_ne!(a, build(&[(1, sent(1, 2, 65)), (2, sent(2, 1, 64))]));
        assert_ne!(
            build(&[(
                1,
                TraceEvent::Delivered {
                    from: DeviceId::new(7),
                    to: DeviceId::new(8),
                }
            )]),
            build(&[(
                1,
                TraceEvent::Dropped {
                    from: DeviceId::new(7),
                    to: DeviceId::new(8),
                }
            )]),
            "event kind is part of the digest"
        );
        assert_eq!(Trace::new(0).digest(), Trace::new(8).digest());
    }

    /// Reference FNV-1a over little-endian u64 words, mirroring the
    /// *pre-cause* trace encoding. Pins that the new variants did not
    /// perturb the digest of existing events.
    fn fnv_words(words: &[u64]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    #[test]
    fn organic_crash_digest_matches_legacy_encoding() {
        let mut t = Trace::new(8);
        t.record(
            SimTime::from_micros(42),
            TraceEvent::organic_crash(DeviceId::new(9)),
        );
        // Legacy bytes: at, tag 5, device — nothing else.
        assert_eq!(t.digest(), fnv_words(&[42, 5, 9]));
    }

    #[test]
    fn legacy_event_digests_are_stable() {
        let mut t = Trace::new(8);
        t.record(
            SimTime::from_micros(1),
            TraceEvent::Sent {
                from: DeviceId::new(2),
                to: DeviceId::new(3),
                bytes: 64,
            },
        );
        t.record(
            SimTime::from_micros(2),
            TraceEvent::WentDown(DeviceId::new(4)),
        );
        assert_eq!(t.digest(), fnv_words(&[1, 0, 2, 3, 64, 2, 3, 4]));
    }

    #[test]
    fn new_events_digest_distinctly() {
        let one = |e: TraceEvent| {
            let mut t = Trace::new(4);
            t.record(SimTime::from_micros(7), e);
            t.digest()
        };
        let injected_crash = one(TraceEvent::Crashed {
            device: DeviceId::new(9),
            cause: CrashCause::Injected { rule: 0 },
        });
        assert_ne!(
            injected_crash,
            one(TraceEvent::organic_crash(DeviceId::new(9)))
        );
        let timer = one(TraceEvent::TimerFired {
            device: DeviceId::new(9),
            token: 1,
        });
        let fault = one(TraceEvent::FaultInjected {
            rule: 0,
            kind: FaultKind::Drop,
            from: DeviceId::new(9),
            to: DeviceId::new(1),
        });
        let kind = one(TraceEvent::MsgKind {
            from: DeviceId::new(9),
            to: DeviceId::new(1),
            kind: 4,
        });
        assert_ne!(timer, fault);
        assert_ne!(timer, kind);
        assert_ne!(fault, kind);
    }

    #[test]
    fn device_filter() {
        let mut t = Trace::new(10);
        t.record(
            SimTime::ZERO,
            TraceEvent::Sent {
                from: DeviceId::new(1),
                to: DeviceId::new(2),
                bytes: 10,
            },
        );
        t.record(SimTime::ZERO, TraceEvent::organic_crash(DeviceId::new(3)));
        t.record(
            SimTime::ZERO,
            TraceEvent::Delivered {
                from: DeviceId::new(1),
                to: DeviceId::new(2),
            },
        );
        assert_eq!(t.for_device(DeviceId::new(2)).len(), 2);
        assert_eq!(t.for_device(DeviceId::new(3)).len(), 1);
        assert_eq!(t.for_device(DeviceId::new(9)).len(), 0);
    }
}
