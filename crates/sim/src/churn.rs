//! Device availability (churn) and crash-stop failure plans.
//!
//! The paper's fault presumption covers two distinct behaviours:
//!
//! * **temporary disconnection** — a device goes out of reach and returns
//!   later (offline smartphone, box visited opportunistically). Modeled as
//!   an alternating renewal process with exponential up/down durations.
//! * **failure** — a device crashes and never returns. Modeled either as a
//!   per-device Bernoulli draw at a given time (matching the per-partition
//!   failure probability `p` of the Overcollection analysis) or as an
//!   explicit scripted crash (the demo's "power off a device at will").

use crate::time::{Duration, SimTime};
use edgelet_util::rng::DetRng;

/// Availability model of one device.
#[derive(Debug, Clone, PartialEq)]
pub enum Availability {
    /// Never disconnects.
    AlwaysUp,
    /// Alternates exponential up and down periods.
    Intermittent {
        /// Mean duration of connected periods.
        mean_up: Duration,
        /// Mean duration of disconnected periods.
        mean_down: Duration,
        /// Whether the device starts connected.
        start_up: bool,
    },
}

impl Availability {
    /// Whether the device is connected at simulation start.
    pub fn starts_up(&self) -> bool {
        match *self {
            Availability::AlwaysUp => true,
            Availability::Intermittent { start_up, .. } => start_up,
        }
    }

    /// Draws the duration of the next period, given the state it is in.
    /// Returns `None` for models that never transition.
    pub fn next_period(&self, currently_up: bool, rng: &mut DetRng) -> Option<Duration> {
        match *self {
            Availability::AlwaysUp => None,
            Availability::Intermittent {
                mean_up, mean_down, ..
            } => {
                let mean = if currently_up { mean_up } else { mean_down };
                Some(Duration::from_secs_f64(
                    rng.exponential(mean.as_secs_f64().max(1e-9)),
                ))
            }
        }
    }

    /// Long-run fraction of time connected.
    pub fn steady_state_up_fraction(&self) -> f64 {
        match *self {
            Availability::AlwaysUp => 1.0,
            Availability::Intermittent {
                mean_up, mean_down, ..
            } => {
                let up = mean_up.as_secs_f64();
                let down = mean_down.as_secs_f64();
                if up + down == 0.0 {
                    1.0
                } else {
                    up / (up + down)
                }
            }
        }
    }
}

/// When (if ever) a device crash-stops.
#[derive(Debug, Clone, PartialEq)]
pub enum CrashPlan {
    /// Never crashes.
    Never,
    /// Crashes at a fixed instant (the demo's "power off at will").
    At(SimTime),
    /// With probability `p`, crashes at a time uniform in `[0, window]`.
    /// This realizes the paper's per-participant failure presumption rate.
    Bernoulli {
        /// Probability of crashing at all.
        p: f64,
        /// Crash time is drawn uniformly within this window.
        window: Duration,
    },
}

impl CrashPlan {
    /// Resolves the plan into a concrete crash instant, if any.
    pub fn resolve(&self, rng: &mut DetRng) -> Option<SimTime> {
        match *self {
            CrashPlan::Never => None,
            CrashPlan::At(t) => Some(t),
            CrashPlan::Bernoulli { p, window } => {
                if rng.chance(p) {
                    let us = window.as_micros();
                    let at = if us == 0 { 0 } else { rng.range(0..=us) };
                    Some(SimTime::from_micros(at))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_up_never_transitions() {
        let a = Availability::AlwaysUp;
        let mut rng = DetRng::new(1);
        assert!(a.starts_up());
        assert_eq!(a.next_period(true, &mut rng), None);
        assert_eq!(a.steady_state_up_fraction(), 1.0);
    }

    #[test]
    fn intermittent_periods_match_means() {
        let a = Availability::Intermittent {
            mean_up: Duration::from_secs(100),
            mean_down: Duration::from_secs(25),
            start_up: true,
        };
        let mut rng = DetRng::new(2);
        let n = 5_000;
        let up_mean: f64 = (0..n)
            .map(|_| a.next_period(true, &mut rng).unwrap().as_secs_f64())
            .sum::<f64>()
            / n as f64;
        let down_mean: f64 = (0..n)
            .map(|_| a.next_period(false, &mut rng).unwrap().as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((up_mean - 100.0).abs() < 5.0, "up {up_mean}");
        assert!((down_mean - 25.0).abs() < 1.5, "down {down_mean}");
        assert!((a.steady_state_up_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn crash_plans_resolve() {
        let mut rng = DetRng::new(3);
        assert_eq!(CrashPlan::Never.resolve(&mut rng), None);
        assert_eq!(
            CrashPlan::At(SimTime::from_micros(5)).resolve(&mut rng),
            Some(SimTime::from_micros(5))
        );

        let plan = CrashPlan::Bernoulli {
            p: 0.25,
            window: Duration::from_secs(10),
        };
        let n = 20_000;
        let mut crashed = 0;
        for _ in 0..n {
            if let Some(t) = plan.resolve(&mut rng) {
                crashed += 1;
                assert!(t <= SimTime::ZERO + Duration::from_secs(10));
            }
        }
        let rate = crashed as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = DetRng::new(4);
        let never = CrashPlan::Bernoulli {
            p: 0.0,
            window: Duration::from_secs(1),
        };
        assert_eq!(never.resolve(&mut rng), None);
        let always = CrashPlan::Bernoulli {
            p: 1.0,
            window: Duration::ZERO,
        };
        assert_eq!(always.resolve(&mut rng), Some(SimTime::ZERO));
    }
}
