//! The simulator's implementation of the live [`Transport`] trait.
//!
//! `edgelet-live` runs protocol actors over a pluggable message fabric
//! ([`edgelet_wire::Transport`]). [`SimEndpoint`] is the simulator-side
//! implementation of that same trait: envelopes submitted to it are
//! buffered — in serialized wire form, exactly like a real transport —
//! and later flushed into a [`Simulation`] as ordinary `Deliver` events
//! carrying the envelope's intrinsic `(deliver_at, from, seq)` key.
//! Because the key is preserved end to end, a message that crossed a
//! `SimEndpoint` schedules identically to one the simulator transmitted
//! natively, which is what lets the cross-engine parity harness treat
//! the two paths as interchangeable.

use crate::engine::Simulation;
use crate::time::SimTime;
use edgelet_wire::{Envelope, Transport, TransportError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A bounded, epoch-checked transport endpoint backed by the simulator.
pub struct SimEndpoint {
    epoch: u64,
    lanes: usize,
    capacity: usize,
    closed: AtomicBool,
    queued: Mutex<Vec<Vec<u8>>>,
}

impl SimEndpoint {
    /// Creates an endpoint accepting envelopes for `epoch`, hashing
    /// destinations into `lanes` mailing lanes, holding at most
    /// `capacity` envelopes before applying backpressure.
    pub fn new(epoch: u64, lanes: usize, capacity: usize) -> Self {
        Self {
            epoch,
            lanes: lanes.max(1),
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
            queued: Mutex::new(Vec::new()),
        }
    }

    /// Stops accepting new envelopes (already queued ones still flush).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Number of envelopes currently buffered.
    pub fn queued_len(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Vec<u8>>> {
        self.queued.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Drains every buffered envelope into the simulation as `Deliver`
    /// events keyed by the envelope header. Returns how many were
    /// injected. Corrupt buffers (impossible unless memory was scribbled
    /// on) are dropped silently, mirroring a transport-level checksum
    /// discard.
    pub fn flush_into(&self, sim: &mut Simulation) -> usize {
        let drained: Vec<Vec<u8>> = std::mem::take(&mut *self.lock());
        let mut injected = 0;
        for bytes in drained {
            let Ok(env) = Envelope::from_wire(&bytes) else {
                continue;
            };
            sim.deliver_external(
                env.from,
                env.to,
                env.seq,
                SimTime::from_micros(env.sent_at_us),
                SimTime::from_micros(env.deliver_at_us),
                env.payload,
            );
            injected += 1;
        }
        injected
    }
}

impl Transport for SimEndpoint {
    fn submit(&self, env: Envelope) -> Result<(), TransportError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        if env.epoch != self.epoch {
            return Err(TransportError::UnknownEpoch(env.epoch));
        }
        let mut q = self.lock();
        if q.len() >= self.capacity {
            return Err(TransportError::Backpressure);
        }
        q.push(env.to_wire());
        Ok(())
    }

    fn drain(&self, epoch: u64, lane: usize) -> Vec<Envelope> {
        if epoch != self.epoch {
            return Vec::new();
        }
        let mut q = self.lock();
        let mut out = Vec::new();
        let mut keep = Vec::with_capacity(q.len());
        for bytes in q.drain(..) {
            match Envelope::from_wire(&bytes) {
                Ok(env) if env.to.index() % self.lanes == lane => out.push(env),
                _ => keep.push(bytes),
            }
        }
        *q = keep;
        out
    }

    fn pending(&self, epoch: u64, lane: usize) -> Option<(usize, u64)> {
        if epoch != self.epoch {
            return None;
        }
        let q = self.lock();
        let mut count = 0usize;
        let mut min_at = u64::MAX;
        for bytes in q.iter() {
            if let Ok(env) = Envelope::from_wire(bytes) {
                if env.to.index() % self.lanes == lane {
                    count += 1;
                    min_at = min_at.min(env.deliver_at_us);
                }
            }
        }
        (count > 0).then_some((count, min_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DeviceConfig, SimConfig, Simulation};
    use crate::network::NetworkModel;
    use crate::time::Duration;
    use crate::{Actor, Context};
    use edgelet_util::ids::DeviceId;
    use edgelet_util::Payload;
    use std::sync::Arc;

    fn env(epoch: u64, to: u64, deliver_at_us: u64) -> Envelope {
        Envelope {
            epoch,
            from: DeviceId::new(0),
            to: DeviceId::new(to),
            seq: 100,
            sent_at_us: 0,
            deliver_at_us,
            payload: Payload::from(b"hello".as_ref()),
        }
    }

    #[test]
    fn endpoint_enforces_epoch_capacity_and_close() {
        let ep = SimEndpoint::new(7, 2, 2);
        assert_eq!(
            ep.submit(env(8, 1, 10)),
            Err(TransportError::UnknownEpoch(8))
        );
        ep.submit(env(7, 1, 10)).unwrap();
        ep.submit(env(7, 0, 20)).unwrap();
        assert_eq!(ep.submit(env(7, 1, 30)), Err(TransportError::Backpressure));
        assert_eq!(ep.pending(7, 1), Some((1, 10)));
        assert_eq!(ep.pending(7, 0), Some((1, 20)));
        assert_eq!(ep.pending(9, 0), None);
        let drained = ep.drain(7, 1);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].to, DeviceId::new(1));
        assert_eq!(ep.queued_len(), 1);
        ep.close();
        assert_eq!(ep.submit(env(7, 1, 40)), Err(TransportError::Closed));
    }

    #[test]
    fn flushed_envelopes_deliver_in_the_simulation() {
        struct Sink {
            seen: Arc<std::sync::Mutex<Vec<Vec<u8>>>>,
        }
        impl Actor for Sink {
            fn on_message(&mut self, _ctx: &mut Context<'_>, _from: DeviceId, payload: &[u8]) {
                self.seen.lock().unwrap().push(payload.to_vec());
            }
        }
        let mut sim = Simulation::new(
            SimConfig {
                network: NetworkModel::reliable(Duration::from_millis(1)),
                ..SimConfig::default()
            },
            1,
        );
        let a = sim.add_device(DeviceConfig::default());
        let b = sim.add_device(DeviceConfig::default());
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        sim.install_actor(b, Box::new(Sink { seen: seen.clone() }));
        let ep = SimEndpoint::new(1, 1, 16);
        ep.submit(Envelope {
            epoch: 1,
            from: a,
            to: b,
            seq: 5,
            sent_at_us: 0,
            deliver_at_us: 1_000,
            payload: Payload::from(b"over-the-wire".as_ref()),
        })
        .unwrap();
        assert_eq!(ep.flush_into(&mut sim), 1);
        sim.run();
        assert_eq!(*seen.lock().unwrap(), vec![b"over-the-wire".to_vec()]);
        assert_eq!(sim.metrics().messages_delivered, 1);
    }
}
