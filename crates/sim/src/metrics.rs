//! Simulation metrics: message/byte counters, delays, custom observations.

use edgelet_util::stats::OnlineStats;
use std::collections::BTreeMap;

/// Delivery-delay statistics kept in integer microseconds.
///
/// Unlike [`OnlineStats`], every field is an exact integer sum or extremum,
/// so partial per-shard statistics merge to **bit-identical** totals no
/// matter how the samples were partitioned or ordered — the property the
/// sharded engine's determinism guarantee rests on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelayStats {
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl DelayStats {
    /// Records one delay sample, in microseconds.
    pub fn push_micros(&mut self, us: u64) {
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += 1;
        self.sum_us += us;
    }

    /// Folds another partial statistic into this one (commutative and
    /// associative).
    pub fn merge(&mut self, other: &DelayStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean delay in seconds (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1e6
        }
    }

    /// Smallest sample in seconds (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.min_us as f64 / 1e6
    }

    /// Largest sample in seconds (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.max_us as f64 / 1e6
    }

    /// The exact integer fields `(count, sum_us, min_us, max_us)`, for
    /// wire transfer of partial statistics between processes. Paired
    /// with [`DelayStats::from_raw_parts`] this is lossless, so merged
    /// remote partials stay bit-identical to an in-process merge.
    pub fn raw_parts(&self) -> (u64, u64, u64, u64) {
        (self.count, self.sum_us, self.min_us, self.max_us)
    }

    /// Rebuilds a statistic from [`DelayStats::raw_parts`] output.
    pub fn from_raw_parts(count: u64, sum_us: u64, min_us: u64, max_us: u64) -> Self {
        DelayStats {
            count,
            sum_us,
            min_us,
            max_us,
        }
    }
}

/// Counters and distributions collected during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Messages submitted by actors.
    pub messages_sent: u64,
    /// Messages handed to receiving actors.
    pub messages_delivered: u64,
    /// Messages dropped by the network model.
    pub messages_dropped: u64,
    /// Messages corrupted in transit (delivered with a flipped byte).
    pub messages_corrupted: u64,
    /// Messages discarded because sender or receiver crashed.
    pub messages_to_crashed: u64,
    /// Messages that waited in a store-and-forward queue at least once.
    pub messages_deferred: u64,
    /// Payload bytes submitted by actors.
    pub bytes_sent: u64,
    /// End-to-end delivery delay distribution (integer microseconds inside;
    /// accessors report seconds).
    pub delivery_delay: DelayStats,
    /// Number of device up→down transitions.
    pub disconnections: u64,
    /// Number of device crashes.
    pub crashes: u64,
    /// Number of events processed by the engine.
    pub events_processed: u64,
    /// Named scalar observations recorded by actors.
    pub observations: BTreeMap<&'static str, OnlineStats>,
}

impl SimMetrics {
    /// Records a named observation.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.observations.entry(name).or_default().push(value);
    }

    /// Fraction of sent messages that were delivered (1.0 when none sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero() {
        let m = SimMetrics::default();
        assert_eq!(m.delivery_ratio(), 1.0);
    }

    #[test]
    fn delay_stats_merge_is_order_independent() {
        let samples = [5u64, 900, 17, 17, 0, 42_000];
        let mut whole = DelayStats::default();
        for &s in &samples {
            whole.push_micros(s);
        }
        let mut left = DelayStats::default();
        let mut right = DelayStats::default();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.push_micros(s);
            } else {
                right.push_micros(s);
            }
        }
        let mut merged = DelayStats::default();
        merged.merge(&right);
        merged.merge(&left);
        assert_eq!(merged, whole);
        assert_eq!(whole.count(), 6);
        assert!((whole.min() - 0.0).abs() < 1e-12);
        assert!((whole.max() - 0.042).abs() < 1e-12);
    }

    #[test]
    fn observations_accumulate() {
        let mut m = SimMetrics::default();
        m.observe("inertia", 2.0);
        m.observe("inertia", 4.0);
        let s = &m.observations["inertia"];
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
