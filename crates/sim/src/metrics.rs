//! Simulation metrics: message/byte counters, delays, custom observations.

use edgelet_util::stats::OnlineStats;
use std::collections::BTreeMap;

/// Counters and distributions collected during one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Messages submitted by actors.
    pub messages_sent: u64,
    /// Messages handed to receiving actors.
    pub messages_delivered: u64,
    /// Messages dropped by the network model.
    pub messages_dropped: u64,
    /// Messages corrupted in transit (delivered with a flipped byte).
    pub messages_corrupted: u64,
    /// Messages discarded because sender or receiver crashed.
    pub messages_to_crashed: u64,
    /// Messages that waited in a store-and-forward queue at least once.
    pub messages_deferred: u64,
    /// Payload bytes submitted by actors.
    pub bytes_sent: u64,
    /// End-to-end delivery delay distribution (seconds).
    pub delivery_delay: OnlineStats,
    /// Number of device up→down transitions.
    pub disconnections: u64,
    /// Number of device crashes.
    pub crashes: u64,
    /// Number of events processed by the engine.
    pub events_processed: u64,
    /// Named scalar observations recorded by actors.
    pub observations: BTreeMap<&'static str, OnlineStats>,
}

impl SimMetrics {
    /// Records a named observation.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.observations.entry(name).or_default().push(value);
    }

    /// Fraction of sent messages that were delivered (1.0 when none sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero() {
        let m = SimMetrics::default();
        assert_eq!(m.delivery_ratio(), 1.0);
    }

    #[test]
    fn observations_accumulate() {
        let mut m = SimMetrics::default();
        m.observe("inertia", 2.0);
        m.observe("inertia", 4.0);
        let s = &m.observations["inertia"];
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
