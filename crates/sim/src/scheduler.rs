//! Event representation and the bucketed calendar queue.
//!
//! The engine used to keep every pending event in one global `BinaryHeap`
//! keyed by `(time, global_seq)`. That had two scaling problems: the heap
//! is `O(log n)` per operation with poor locality at million-event
//! populations, and a *global* sequence number makes event identity depend
//! on execution order, which rules out sharded execution.
//!
//! This module replaces both:
//!
//! * Every [`Event`] carries an **intrinsic key** `(at, origin, seq)`
//!   where `origin` is the device that spawned it and `seq` is that
//!   device's private spawn counter. The key is a pure function of the
//!   spawning device's history, so it is identical for every shard count
//!   — the foundation of the sharded engine's bit-exact determinism.
//! * The [`CalendarQueue`] buckets events into fixed-width time cells
//!   (cell width = the engine's lookahead). Pushes are amortised `O(1)`;
//!   only the minimum cell is ever sorted, and in windowed execution it
//!   isn't sorted at all — the whole cell is handed to the executor as a
//!   batch. Emptied cell buffers are pooled and reused, so steady-state
//!   scheduling performs no allocation.

use crate::actor::TimerToken;
use crate::fault::CrashCause;
use crate::time::SimTime;
use edgelet_util::ids::DeviceId;
use edgelet_util::Payload;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// What a scheduled event does when it pops.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Run the actor's `on_start` on the device.
    Start(DeviceId),
    /// Hand a message to the receiving device.
    Deliver {
        /// Receiver.
        to: DeviceId,
        /// Sender.
        from: DeviceId,
        /// Message bytes.
        payload: Payload,
        /// When the sender submitted it (for delay accounting).
        sent_at: SimTime,
    },
    /// Fire a timer on the device.
    Timer {
        /// Owning device.
        device: DeviceId,
        /// Token returned by `set_timer`.
        token: TimerToken,
    },
    /// Flip the device's availability (up <-> down).
    ChurnToggle(DeviceId),
    /// Crash-stop the device.
    Crash(DeviceId, CrashCause),
}

impl EventKind {
    /// The device this event executes on; its shard owns the event.
    pub fn target(&self) -> DeviceId {
        match *self {
            EventKind::Start(d) => d,
            EventKind::Deliver { to, .. } => to,
            EventKind::Timer { device, .. } => device,
            EventKind::ChurnToggle(d) => d,
            EventKind::Crash(d, _) => d,
        }
    }

    /// Churn toggles don't count toward quiescence: on their own they
    /// cannot create protocol work.
    pub fn is_churn(&self) -> bool {
        matches!(self, EventKind::ChurnToggle(_))
    }
}

/// A scheduled event with its globally unique, shard-independent key.
#[derive(Debug)]
pub(crate) struct Event {
    /// Virtual time at which the event executes.
    pub at: SimTime,
    /// Raw id of the device whose processing spawned this event.
    pub origin: u64,
    /// The origin device's private spawn counter at spawn time.
    pub seq: u64,
    /// What happens when the event pops.
    pub kind: EventKind,
}

impl Event {
    /// Canonical total order: `(time, origin, seq)`. `(origin, seq)` is
    /// unique per event, so ties cannot occur and the order is the same
    /// under any shard layout.
    pub fn key(&self) -> (SimTime, u64, u64) {
        (self.at, self.origin, self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so `BinaryHeap<Event>` is a min-heap on the key.
        other.key().cmp(&self.key())
    }
}

/// A bucketed calendar queue: pending events grouped into fixed-width
/// time cells.
///
/// Cells other than the minimum are unsorted `Vec`s (push is an amortised
/// `O(1)` append). For one-at-a-time consumption ([`CalendarQueue::pop_min`],
/// used by the sequential fallback executor) the minimum cell is sorted
/// once, descending, and popped from the back. For windowed execution the
/// minimum cell is taken wholesale with [`CalendarQueue::take_cell`] and
/// never sorted here. Emptied buffers return to an internal pool.
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    width_us: u64,
    /// Cell index (`at_us / width_us`) -> pending events. Vecs in the map
    /// are never empty.
    cells: BTreeMap<u64, Vec<Event>>,
    /// The minimum cell, sorted descending by key (pop from the back).
    /// Invariant: when occupied, its index is <= every key in `cells`.
    cur: Option<(u64, Vec<Event>)>,
    len: usize,
    /// Recycled cell buffers.
    pool: Vec<Vec<Event>>,
}

impl CalendarQueue {
    /// Creates a queue with the given cell width (clamped to >= 1 µs).
    pub fn new(width_us: u64) -> Self {
        CalendarQueue {
            width_us: width_us.max(1),
            cells: BTreeMap::new(),
            cur: None,
            len: 0,
            pool: Vec::new(),
        }
    }

    /// Number of pending events.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Schedules an event.
    pub fn push(&mut self, ev: Event) {
        self.len += 1;
        let cell = ev.at.as_micros() / self.width_us;
        match self.cur.as_mut() {
            Some((ci, vec)) if *ci == cell => {
                // Keep the minimum cell sorted (descending) so pop_min
                // stays O(1); in-cell inserts are rare and small.
                let key = ev.key();
                let pos = vec.partition_point(|e| e.key() > key);
                vec.insert(pos, ev);
                return;
            }
            Some((ci, _)) if cell < *ci => {
                // The minimum moved earlier: demote the current cell
                // back into the map (it stays sorted; harmless).
                if let Some((old_ci, old_vec)) = self.cur.take() {
                    self.cells.insert(old_ci, old_vec);
                }
            }
            _ => {}
        }
        self.cells
            .entry(cell)
            .or_insert_with(|| self.pool.pop().unwrap_or_default())
            .push(ev);
    }

    /// Drains `buf` into the queue, amortising the per-event cell lookup
    /// by batching consecutive same-cell runs: the destination cell's
    /// buffer is taken out of the map once per run instead of once per
    /// event. Barrier mailboxes and window remainders arrive in key
    /// order, so their runs are long. Leaves `buf` empty (capacity
    /// kept) for reuse.
    pub fn push_batch(&mut self, buf: &mut Vec<Event>) {
        if self.cur.is_some() {
            // The sorted cursor is live (fallback executor): route
            // through `push` so in-cursor inserts stay ordered.
            for ev in buf.drain(..) {
                self.push(ev);
            }
            return;
        }
        self.len += buf.len();
        let mut run: Option<(u64, Vec<Event>)> = None;
        for ev in buf.drain(..) {
            let cell = ev.at.as_micros() / self.width_us;
            match run.as_mut() {
                Some((ci, vec)) if *ci == cell => vec.push(ev),
                _ => {
                    if let Some((ci, vec)) = run.take() {
                        self.cells.insert(ci, vec);
                    }
                    let mut vec = self
                        .cells
                        .remove(&cell)
                        .unwrap_or_else(|| self.pool.pop().unwrap_or_default());
                    vec.push(ev);
                    run = Some((cell, vec));
                }
            }
        }
        if let Some((ci, vec)) = run.take() {
            self.cells.insert(ci, vec);
        }
    }

    /// Promotes the minimum map cell to `cur` (sorted) if `cur` is empty.
    fn refill(&mut self) {
        if let Some((_, vec)) = self.cur.as_ref() {
            if !vec.is_empty() {
                return;
            }
        }
        if let Some((_, vec)) = self.cur.take() {
            self.pool.push(vec);
        }
        if let Some((ci, mut vec)) = self.cells.pop_first() {
            vec.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.cur = Some((ci, vec));
        }
    }

    /// Key of the earliest pending event, if any (sorts the minimum cell).
    pub fn peek_min_key(&mut self) -> Option<(SimTime, u64, u64)> {
        self.refill();
        self.cur
            .as_ref()
            .and_then(|(_, vec)| vec.last().map(Event::key))
    }

    /// Removes and returns the earliest pending event.
    pub fn pop_min(&mut self) -> Option<Event> {
        self.refill();
        let (_, vec) = self.cur.as_mut()?;
        let ev = vec.pop()?;
        self.len -= 1;
        Some(ev)
    }

    /// Earliest pending event *time* without sorting anything: scans only
    /// the minimum cell. Used by the windowed executor to decide which
    /// cell to open next.
    pub fn peek_min_at(&mut self) -> Option<SimTime> {
        if let Some((_, vec)) = self.cur.as_ref() {
            if let Some(m) = vec.iter().map(|e| e.at).min() {
                return Some(m);
            }
        }
        self.cells
            .iter()
            .next()
            .and_then(|(_, vec)| vec.iter().map(|e| e.at).min())
    }

    /// Removes the whole cell at `idx`, unsorted. Returns `None` when the
    /// cell has no events.
    pub fn take_cell(&mut self, idx: u64) -> Option<Vec<Event>> {
        if let Some((ci, _)) = self.cur.as_ref() {
            if *ci == idx {
                if let Some((_, vec)) = self.cur.take() {
                    if vec.is_empty() {
                        self.pool.push(vec);
                        return None;
                    }
                    self.len -= vec.len();
                    return Some(vec);
                }
            }
        }
        if let Some(vec) = self.cells.remove(&idx) {
            self.len -= vec.len();
            return Some(vec);
        }
        None
    }

    /// Returns an emptied cell buffer to the allocation pool.
    pub fn recycle(&mut self, mut vec: Vec<Event>) {
        vec.clear();
        self.pool.push(vec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, origin: u64, seq: u64) -> Event {
        Event {
            at: SimTime::from_micros(at_us),
            origin,
            seq,
            kind: EventKind::ChurnToggle(DeviceId::new(origin)),
        }
    }

    #[test]
    fn pops_in_key_order_across_cells() {
        let mut q = CalendarQueue::new(1_000);
        let keys = [
            (5_000, 1, 0),
            (100, 0, 0),
            (100, 0, 1),
            (2_500, 7, 2),
            (100, 2, 0),
            (999, 9, 9),
            (1_000, 0, 3),
        ];
        for (at, o, s) in keys {
            q.push(ev(at, o, s));
        }
        assert_eq!(q.len(), keys.len());
        let mut sorted: Vec<_> = keys
            .iter()
            .map(|&(at, o, s)| (SimTime::from_micros(at), o, s))
            .collect();
        sorted.sort();
        let mut popped = Vec::new();
        while let Some(e) = q.pop_min() {
            popped.push(e.key());
        }
        assert_eq!(popped, sorted);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn push_below_current_cell_is_seen_first() {
        let mut q = CalendarQueue::new(1_000);
        q.push(ev(5_000, 0, 0));
        assert_eq!(q.peek_min_key(), Some((SimTime::from_micros(5_000), 0, 0)));
        // cur now holds cell 5; a push into an earlier cell must win.
        q.push(ev(100, 1, 0));
        assert_eq!(q.peek_min_key(), Some((SimTime::from_micros(100), 1, 0)));
        assert_eq!(q.pop_min().map(|e| e.at.as_micros()), Some(100));
        assert_eq!(q.pop_min().map(|e| e.at.as_micros()), Some(5_000));
    }

    #[test]
    fn take_cell_returns_whole_bucket() {
        let mut q = CalendarQueue::new(1_000);
        q.push(ev(1_100, 0, 0));
        q.push(ev(1_900, 1, 0));
        q.push(ev(2_000, 2, 0));
        assert_eq!(q.peek_min_at(), Some(SimTime::from_micros(1_100)));
        let cell = q.take_cell(1).map(|v| v.len());
        assert_eq!(cell, Some(2));
        assert_eq!(q.len(), 1);
        assert!(q.take_cell(1).is_none());
        assert_eq!(q.peek_min_at(), Some(SimTime::from_micros(2_000)));
    }

    #[test]
    fn take_cell_grabs_the_sorted_cursor_too() {
        let mut q = CalendarQueue::new(1_000);
        q.push(ev(1_100, 0, 0));
        q.push(ev(1_200, 1, 0));
        // Sorting promotes cell 1 into the cursor.
        let _ = q.peek_min_key();
        let cell = q.take_cell(1).map(|v| v.len());
        assert_eq!(cell, Some(2));
        assert_eq!(q.len(), 0);
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn push_batch_is_equivalent_to_push() {
        let keys = [
            (100, 0, 0),
            (150, 0, 1),
            (1_200, 1, 0),
            (1_300, 1, 1),
            (100, 2, 0),
            (7_000, 3, 0),
            (1_250, 4, 0),
        ];
        let mut a = CalendarQueue::new(1_000);
        let mut b = CalendarQueue::new(1_000);
        for (at, o, s) in keys {
            a.push(ev(at, o, s));
        }
        let mut buf: Vec<Event> = keys.iter().map(|&(at, o, s)| ev(at, o, s)).collect();
        b.push_batch(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(a.len(), b.len());
        loop {
            let (x, y) = (a.pop_min().map(|e| e.key()), b.pop_min().map(|e| e.key()));
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
        // Batching into a queue with a live sorted cursor keeps order.
        let mut c = CalendarQueue::new(1_000);
        c.push(ev(500, 9, 0));
        let _ = c.peek_min_key();
        let mut buf: Vec<Event> = vec![ev(400, 8, 0), ev(600, 8, 1), ev(2_000, 8, 2)];
        c.push_batch(&mut buf);
        let popped: Vec<u64> =
            std::iter::from_fn(|| c.pop_min().map(|e| e.at.as_micros())).collect();
        assert_eq!(popped, vec![400, 500, 600, 2_000]);
    }

    #[test]
    fn mixed_peek_and_pop_after_windowed_use() {
        let mut q = CalendarQueue::new(500);
        for i in 0..100u64 {
            q.push(ev(i * 137 % 5_000, i, 0));
        }
        // Windowed-style consumption of the two earliest cells.
        let mut drained = 0;
        for _ in 0..2 {
            if let Some(min) = q.peek_min_at() {
                if let Some(v) = q.take_cell(min.as_micros() / 500) {
                    drained += v.len();
                    q.recycle(Vec::new());
                }
            }
        }
        // Remaining events still pop in order.
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some(e) = q.pop_min() {
            assert!(e.at >= last);
            last = e.at;
            popped += 1;
        }
        assert_eq!(drained + popped, 100);
    }
}
