//! Attested secure channels between enclaves.
//!
//! Handshake (simulated in a single logical exchange; the simulator charges
//! the network round-trips at the protocol layer):
//!
//! 1. each side holds an X25519 key pair and an attestation quote whose
//!    nonce binds its ephemeral public key (so a quote cannot be replayed
//!    for a different key);
//! 2. both sides verify the peer's quote against the expected operator
//!    measurement via the [`TrustAnchor`];
//! 3. the shared secret is fed through HKDF into two directional
//!    ChaCha20-Poly1305 keys; nonces are message counters.

use edgelet_crypto::aead::ChaCha20Poly1305;
use edgelet_crypto::attest::{AttestationQuote, Measurement, TrustAnchor};
use edgelet_crypto::hmac::hkdf;
use edgelet_crypto::sha256::sha256;
use edgelet_crypto::x25519::{x25519, x25519_public};
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::{Error, Result};

/// One endpoint's handshake material.
#[derive(Debug, Clone)]
pub struct Handshake {
    /// This endpoint's device.
    pub device: DeviceId,
    /// Ephemeral X25519 public key.
    pub public_key: [u8; 32],
    /// Quote binding the device, its enclave measurement and `public_key`.
    pub quote: AttestationQuote,
    secret_key: [u8; 32],
}

impl Handshake {
    /// Creates handshake material for an enclave on `device` whose code
    /// measurement is `measurement`.
    pub fn new(
        device: DeviceId,
        measurement: Measurement,
        anchor: &TrustAnchor,
        rng: &mut DetRng,
    ) -> Self {
        let mut secret_key = [0u8; 32];
        for chunk in secret_key.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let public_key = x25519_public(&secret_key);
        // The quote nonce binds the ephemeral key.
        let nonce = sha256(&public_key);
        let quote = anchor.quote(device, measurement, nonce);
        Self {
            device,
            public_key,
            quote,
            secret_key,
        }
    }

    /// Completes the handshake against a peer's public material, verifying
    /// its quote, and derives the session.
    pub fn establish(
        &self,
        peer_public: &[u8; 32],
        peer_quote: &AttestationQuote,
        expected_peer_measurement: &Measurement,
        anchor: &TrustAnchor,
    ) -> Result<SecureChannel> {
        let expected_nonce = sha256(peer_public);
        anchor.verify(peer_quote, expected_peer_measurement, &expected_nonce)?;
        let shared = x25519(&self.secret_key, peer_public);
        if shared == [0u8; 32] {
            return Err(Error::Crypto("degenerate X25519 shared secret".into()));
        }
        // Directional keys: sort the two public keys so both sides derive
        // the same pair, then pick send/recv by comparison.
        let (lo, hi) = if self.public_key <= *peer_public {
            (self.public_key, *peer_public)
        } else {
            (*peer_public, self.public_key)
        };
        let mut salt = Vec::with_capacity(64);
        salt.extend_from_slice(&lo);
        salt.extend_from_slice(&hi);
        let keys = hkdf(&salt, &shared, b"edgelet-channel-v1", 64);
        let mut key_lo = [0u8; 32];
        let mut key_hi = [0u8; 32];
        key_lo.copy_from_slice(&keys[..32]);
        key_hi.copy_from_slice(&keys[32..]);
        let i_am_lo = self.public_key == lo;
        let (send_key, recv_key) = if i_am_lo {
            (key_lo, key_hi)
        } else {
            (key_hi, key_lo)
        };
        Ok(SecureChannel {
            seal: ChaCha20Poly1305::new(send_key),
            open: ChaCha20Poly1305::new(recv_key),
            send_counter: 0,
            recv_counter: 0,
        })
    }
}

/// An established, attested, encrypted channel.
#[derive(Debug, Clone)]
pub struct SecureChannel {
    seal: ChaCha20Poly1305,
    open: ChaCha20Poly1305,
    send_counter: u64,
    recv_counter: u64,
}

impl SecureChannel {
    /// Encrypts a record for the peer.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = Self::nonce(self.send_counter);
        self.send_counter += 1;
        self.seal.seal(&nonce, &[], plaintext)
    }

    /// Decrypts the next record from the peer (strict ordering).
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>> {
        let nonce = Self::nonce(self.recv_counter);
        let out = self.open.open(&nonce, &[], sealed)?;
        self.recv_counter += 1;
        Ok(out)
    }

    fn nonce(counter: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[4..].copy_from_slice(&counter.to_le_bytes());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_crypto::attest::measure;

    fn setup() -> (TrustAnchor, Handshake, Handshake, Measurement, Measurement) {
        let anchor = TrustAnchor::new([7u8; 32]);
        let m_a = measure(b"snapshot-builder-v1");
        let m_b = measure(b"computer-v1");
        let mut rng_a = DetRng::new(100);
        let mut rng_b = DetRng::new(200);
        let a = Handshake::new(DeviceId::new(1), m_a, &anchor, &mut rng_a);
        let b = Handshake::new(DeviceId::new(2), m_b, &anchor, &mut rng_b);
        (anchor, a, b, m_a, m_b)
    }

    #[test]
    fn channel_roundtrip_both_directions() {
        let (anchor, a, b, m_a, m_b) = setup();
        let mut chan_a = a.establish(&b.public_key, &b.quote, &m_b, &anchor).unwrap();
        let mut chan_b = b.establish(&a.public_key, &a.quote, &m_a, &anchor).unwrap();

        let c1 = chan_a.seal(b"partition 3 partial aggregate");
        assert_ne!(c1, b"partition 3 partial aggregate".to_vec());
        assert_eq!(chan_b.open(&c1).unwrap(), b"partition 3 partial aggregate");

        let c2 = chan_b.seal(b"ack");
        assert_eq!(chan_a.open(&c2).unwrap(), b"ack");

        // Multiple records keep distinct nonces.
        let c3 = chan_a.seal(b"same plaintext");
        let c4 = chan_a.seal(b"same plaintext");
        assert_ne!(c3, c4);
        assert_eq!(chan_b.open(&c3).unwrap(), b"same plaintext");
        assert_eq!(chan_b.open(&c4).unwrap(), b"same plaintext");
    }

    #[test]
    fn wrong_measurement_is_rejected() {
        let (anchor, a, b, _m_a, _m_b) = setup();
        let wrong = measure(b"unexpected-code");
        let err = a.establish(&b.public_key, &b.quote, &wrong, &anchor);
        assert!(err.is_err());
    }

    #[test]
    fn quote_does_not_transfer_to_another_key() {
        let (anchor, a, b, _m_a, m_b) = setup();
        // Attacker presents its own key with b's quote.
        let mut rng = DetRng::new(999);
        let mut attacker_sk = [0u8; 32];
        for chunk in attacker_sk.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        let attacker_pk = x25519_public(&attacker_sk);
        let err = a.establish(&attacker_pk, &b.quote, &m_b, &anchor);
        assert!(err.is_err(), "quote must be bound to the ephemeral key");
    }

    #[test]
    fn revoked_device_cannot_establish() {
        let (mut anchor, a, b, _m_a, m_b) = setup();
        anchor.revoke(DeviceId::new(2));
        assert!(a.establish(&b.public_key, &b.quote, &m_b, &anchor).is_err());
    }

    #[test]
    fn tampered_record_fails_open() {
        let (anchor, a, b, m_a, m_b) = setup();
        let mut chan_a = a.establish(&b.public_key, &b.quote, &m_b, &anchor).unwrap();
        let mut chan_b = b.establish(&a.public_key, &a.quote, &m_a, &anchor).unwrap();
        let mut c = chan_a.seal(b"payload");
        c[0] ^= 1;
        assert!(chan_b.open(&c).is_err());
    }

    #[test]
    fn out_of_order_records_fail() {
        let (anchor, a, b, m_a, m_b) = setup();
        let mut chan_a = a.establish(&b.public_key, &b.quote, &m_b, &anchor).unwrap();
        let mut chan_b = b.establish(&a.public_key, &a.quote, &m_a, &anchor).unwrap();
        let _c1 = chan_a.seal(b"first");
        let c2 = chan_a.seal(b"second");
        // Receiving record 2 first violates the strict counter.
        assert!(chan_b.open(&c2).is_err());
    }
}
