//! Device classes and performance profiles.
//!
//! Speed factors are calibrated relative to the demo's laptop (Intel Core
//! i5-9400H with SGX): the home box's STM32F417 microcontroller runs at
//! 168 MHz without caches worth speaking of, so a ~100x slowdown for
//! data-crunching work is the right order of magnitude; a mid-range
//! TrustZone smartphone lands at a few times slower than the laptop.

use std::fmt;

/// The three hardware families of the demonstration platform (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceClass {
    /// Laptop/desktop with Intel SGX (Open Enclave host).
    SgxPc,
    /// Smartphone with ARM TrustZone.
    TrustZonePhone,
    /// DomYcile-style home box: STM32F417 + TPM + micro-SD.
    TpmHomeBox,
}

impl DeviceClass {
    /// All classes, for sweeps.
    pub const ALL: [DeviceClass; 3] = [
        DeviceClass::SgxPc,
        DeviceClass::TrustZonePhone,
        DeviceClass::TpmHomeBox,
    ];

    /// Default profile for the class.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceClass::SgxPc => DeviceProfile {
                class: self,
                // Tuples of work processed per second (aggregate kernel).
                tuples_per_sec: 2_000_000.0,
                // Enclave memory budget expressed in resident tuples.
                max_resident_tuples: 1_000_000,
                // Fixed cost to enter/exit the enclave per protocol step.
                enclave_call_overhead_us: 50,
            },
            DeviceClass::TrustZonePhone => DeviceProfile {
                class: self,
                tuples_per_sec: 500_000.0,
                max_resident_tuples: 200_000,
                enclave_call_overhead_us: 120,
            },
            DeviceClass::TpmHomeBox => DeviceProfile {
                class: self,
                tuples_per_sec: 20_000.0,
                max_resident_tuples: 20_000,
                enclave_call_overhead_us: 2_000,
            },
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeviceClass::SgxPc => "sgx-pc",
            DeviceClass::TrustZonePhone => "trustzone-phone",
            DeviceClass::TpmHomeBox => "tpm-home-box",
        };
        f.write_str(name)
    }
}

/// Performance/capacity profile of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Hardware class.
    pub class: DeviceClass,
    /// Throughput of the aggregation/ML kernels, in tuples per second.
    pub tuples_per_sec: f64,
    /// Maximum number of tuples the enclave may hold at once.
    pub max_resident_tuples: usize,
    /// Fixed overhead per enclave invocation, microseconds.
    pub enclave_call_overhead_us: u64,
}

impl DeviceProfile {
    /// Time to process `tuples` tuples of work, in seconds, including one
    /// enclave call overhead.
    pub fn compute_seconds(&self, tuples: usize) -> f64 {
        self.enclave_call_overhead_us as f64 / 1e6 + tuples as f64 / self.tuples_per_sec
    }

    /// Whether a partition of `tuples` tuples fits in enclave memory.
    pub fn fits(&self, tuples: usize) -> bool {
        tuples <= self.max_resident_tuples
    }

    /// Relative speed vs. the SGX PC baseline (1.0 for the PC itself).
    pub fn relative_speed(&self) -> f64 {
        self.tuples_per_sec / DeviceClass::SgxPc.profile().tuples_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ordering_of_speed() {
        let pc = DeviceClass::SgxPc.profile();
        let phone = DeviceClass::TrustZonePhone.profile();
        let boxp = DeviceClass::TpmHomeBox.profile();
        assert!(pc.tuples_per_sec > phone.tuples_per_sec);
        assert!(phone.tuples_per_sec > boxp.tuples_per_sec);
        assert!(pc.max_resident_tuples > boxp.max_resident_tuples);
        assert_eq!(pc.relative_speed(), 1.0);
        assert!(boxp.relative_speed() < 0.05);
    }

    #[test]
    fn compute_time_scales_linearly() {
        let p = DeviceClass::SgxPc.profile();
        let t1 = p.compute_seconds(10_000);
        let t2 = p.compute_seconds(20_000);
        let overhead = p.enclave_call_overhead_us as f64 / 1e6;
        assert!(((t2 - overhead) - 2.0 * (t1 - overhead)).abs() < 1e-12);
        // Zero work still pays the enclave call.
        assert!(p.compute_seconds(0) > 0.0);
    }

    #[test]
    fn box_is_much_slower_than_pc() {
        let pc = DeviceClass::SgxPc.profile();
        let boxp = DeviceClass::TpmHomeBox.profile();
        let ratio = boxp.compute_seconds(100_000) / pc.compute_seconds(100_000);
        assert!(ratio > 50.0, "ratio {ratio}");
    }

    #[test]
    fn memory_caps() {
        let boxp = DeviceClass::TpmHomeBox.profile();
        assert!(boxp.fits(20_000));
        assert!(!boxp.fits(20_001));
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceClass::SgxPc.to_string(), "sgx-pc");
        assert_eq!(DeviceClass::TrustZonePhone.to_string(), "trustzone-phone");
        assert_eq!(DeviceClass::TpmHomeBox.to_string(), "tpm-home-box");
        assert_eq!(DeviceClass::ALL.len(), 3);
    }
}
