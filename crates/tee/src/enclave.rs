//! Enclave runtime model: measurement, lifecycle, sealed-glass compromise.
//!
//! The paper's threat model (§2.1, §3.3) is that side-channel attacks may
//! place a TEE in "sealed glass" mode \[23\]: the *integrity* of the
//! computation is preserved — attestations still verify, results are still
//! correct — but the *confidentiality* of data present in the enclave is
//! lost. The QEP-level counter-measures are horizontal and vertical
//! partitioning, whose benefit the privacy crate quantifies from the
//! exposure log kept here.

use edgelet_crypto::attest::{measure, AttestationQuote, Measurement, TrustAnchor};
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Result};
use std::collections::BTreeSet;

/// Lifecycle state of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveStatus {
    /// Loaded and attestable.
    Running,
    /// Confidentiality compromised (sealed glass): integrity intact.
    SealedGlass,
    /// Integrity compromised: attestation revoked, unusable for queries.
    IntegrityBroken,
}

/// An operator's enclave instance on one device.
#[derive(Debug, Clone)]
pub struct Enclave {
    device: DeviceId,
    measurement: Measurement,
    status: EnclaveStatus,
    /// Attribute names observed in cleartext inside this enclave, and the
    /// number of raw tuples seen: the inputs to the exposure analysis.
    observed_attributes: BTreeSet<String>,
    observed_tuples: u64,
}

impl Enclave {
    /// Loads operator code (identified by `code_id`) into an enclave.
    pub fn load(device: DeviceId, code_id: &str) -> Self {
        Self {
            device,
            measurement: measure(code_id.as_bytes()),
            status: EnclaveStatus::Running,
            observed_attributes: BTreeSet::new(),
            observed_tuples: 0,
        }
    }

    /// The hosting device.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The code measurement this enclave attests to.
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// Current status.
    pub fn status(&self) -> EnclaveStatus {
        self.status
    }

    /// Marks the enclave as sealed-glass compromised.
    pub fn compromise_confidentiality(&mut self) {
        if self.status == EnclaveStatus::Running {
            self.status = EnclaveStatus::SealedGlass;
        }
    }

    /// Marks the enclave integrity as broken (and revokes it at the anchor).
    pub fn compromise_integrity(&mut self, anchor: &mut TrustAnchor) {
        self.status = EnclaveStatus::IntegrityBroken;
        anchor.revoke(self.device);
    }

    /// Whether results produced by this enclave can still be trusted.
    pub fn integrity_intact(&self) -> bool {
        self.status != EnclaveStatus::IntegrityBroken
    }

    /// Whether data processed inside is visible to an attacker.
    pub fn confidentiality_lost(&self) -> bool {
        self.status != EnclaveStatus::Running
    }

    /// Produces an attestation quote bound to `nonce`.
    ///
    /// Sealed-glass enclaves still attest (integrity holds); integrity-
    /// broken enclaves fail.
    pub fn attest(&self, anchor: &TrustAnchor, nonce: [u8; 32]) -> Result<AttestationQuote> {
        if self.status == EnclaveStatus::IntegrityBroken {
            return Err(Error::Crypto(format!(
                "enclave on {} cannot attest: integrity broken",
                self.device
            )));
        }
        Ok(anchor.quote(self.device, self.measurement, nonce))
    }

    /// Records that `tuples` raw tuples carrying `attributes` entered the
    /// enclave in cleartext.
    pub fn record_exposure<'a>(
        &mut self,
        attributes: impl IntoIterator<Item = &'a str>,
        tuples: u64,
    ) {
        for a in attributes {
            self.observed_attributes.insert(a.to_string());
        }
        self.observed_tuples += tuples;
    }

    /// Attribute names that have been present in cleartext.
    pub fn observed_attributes(&self) -> &BTreeSet<String> {
        &self.observed_attributes
    }

    /// Raw tuples that have been present in cleartext.
    pub fn observed_tuples(&self) -> u64 {
        self.observed_tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchor() -> TrustAnchor {
        TrustAnchor::new([1u8; 32])
    }

    #[test]
    fn lifecycle_and_attestation() {
        let ta = anchor();
        let e = Enclave::load(DeviceId::new(1), "snapshot-builder-v1");
        assert_eq!(e.status(), EnclaveStatus::Running);
        assert!(e.integrity_intact());
        assert!(!e.confidentiality_lost());
        let nonce = [9u8; 32];
        let q = e.attest(&ta, nonce).unwrap();
        ta.verify(&q, e.measurement(), &nonce).unwrap();
    }

    #[test]
    fn sealed_glass_still_attests() {
        let ta = anchor();
        let mut e = Enclave::load(DeviceId::new(2), "computer-v1");
        e.compromise_confidentiality();
        assert_eq!(e.status(), EnclaveStatus::SealedGlass);
        assert!(e.integrity_intact());
        assert!(e.confidentiality_lost());
        let nonce = [3u8; 32];
        let q = e.attest(&ta, nonce).unwrap();
        ta.verify(&q, e.measurement(), &nonce).unwrap();
    }

    #[test]
    fn integrity_break_revokes() {
        let mut ta = anchor();
        let mut e = Enclave::load(DeviceId::new(3), "combiner-v1");
        e.compromise_integrity(&mut ta);
        assert_eq!(e.status(), EnclaveStatus::IntegrityBroken);
        assert!(!e.integrity_intact());
        assert!(e.attest(&ta, [0u8; 32]).is_err());
        assert!(ta.is_revoked(DeviceId::new(3)));
        // Sealed-glass after integrity break does not downgrade the status.
        e.compromise_confidentiality();
        assert_eq!(e.status(), EnclaveStatus::IntegrityBroken);
    }

    #[test]
    fn different_code_different_measurement() {
        let a = Enclave::load(DeviceId::new(1), "op-a");
        let b = Enclave::load(DeviceId::new(1), "op-b");
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn exposure_log_accumulates() {
        let mut e = Enclave::load(DeviceId::new(4), "computer-v1");
        e.record_exposure(["age", "bmi"], 500);
        e.record_exposure(["age"], 250);
        assert_eq!(e.observed_tuples(), 750);
        let attrs: Vec<_> = e.observed_attributes().iter().cloned().collect();
        assert_eq!(attrs, vec!["age".to_string(), "bmi".to_string()]);
    }
}
