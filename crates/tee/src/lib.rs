//! Simulated Trusted Execution Environment devices ("edgelets").
//!
//! The demo platform of the paper spans heterogeneous hardware: PCs with
//! Intel SGX, smartphones with ARM TrustZone and STM32F417 home boxes with a
//! TPM. This crate models the properties of those devices that the Edgelet
//! protocols actually depend on:
//!
//! * [`device`] — device classes and profiles: compute speed, memory
//!   capacity, typical availability;
//! * [`enclave`] — the enclave runtime: code measurement, lifecycle, the
//!   "sealed glass" compromise mode of §2.1 (integrity preserved,
//!   confidentiality lost) and an exposure log feeding the privacy
//!   analysis;
//! * [`channel`] — attested secure channels between enclaves: X25519 key
//!   agreement bound to attestation quotes, HKDF-derived session keys,
//!   ChaCha20-Poly1305 record protection;
//! * [`directory`] — the device directory a query deployer consults to
//!   pick Data Processors;
//! * [`sealed_storage`] — data at rest sealed under device-bound keys
//!   with rollback protection (the box's micro-SD + TPM arrangement).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod device;
pub mod directory;
pub mod enclave;
pub mod sealed_storage;

pub use channel::SecureChannel;
pub use device::{DeviceClass, DeviceProfile};
pub use directory::{Directory, DirectoryEntry};
pub use enclave::{Enclave, EnclaveStatus};
pub use sealed_storage::{seal_store, unseal_store, SealedStore};
