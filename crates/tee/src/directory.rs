//! The device directory a query deployer consults.
//!
//! Holds, for every enrolled edgelet, its class, its long-term identity key
//! (hash of which drives the paper's "secure assignment by hashing public
//! keys") and whether it volunteers as Data Processor, Data Contributor, or
//! both.

use crate::device::{DeviceClass, DeviceProfile};
use edgelet_crypto::sha256::sha256;
use edgelet_util::ids::DeviceId;
use edgelet_util::rng::DetRng;
use edgelet_util::{Error, Result};

/// A directory record for one enrolled device.
#[derive(Debug, Clone)]
pub struct DirectoryEntry {
    /// The device.
    pub device: DeviceId,
    /// Hardware class.
    pub class: DeviceClass,
    /// Long-term identity public key (32 bytes).
    pub identity_key: [u8; 32],
    /// Volunteers its data.
    pub contributes_data: bool,
    /// Volunteers compute (can host Data Processor operators).
    pub processes_queries: bool,
}

impl DirectoryEntry {
    /// Stable 64-bit hash of the identity key, used for assignments.
    pub fn key_hash(&self) -> u64 {
        let digest = sha256(&self.identity_key);
        u64::from_le_bytes(digest[..8].try_into().expect("8 bytes"))
    }

    /// The device's performance profile.
    pub fn profile(&self) -> DeviceProfile {
        self.class.profile()
    }
}

/// Registry of enrolled devices.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: Vec<DirectoryEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enrolls a device, deriving its identity key deterministically.
    pub fn enroll(
        &mut self,
        device: DeviceId,
        class: DeviceClass,
        contributes_data: bool,
        processes_queries: bool,
        rng: &mut DetRng,
    ) -> &DirectoryEntry {
        let mut identity_key = [0u8; 32];
        for chunk in identity_key.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
        }
        self.entries.push(DirectoryEntry {
            device,
            class,
            identity_key,
            contributes_data,
            processes_queries,
        });
        self.entries.last().expect("just pushed")
    }

    /// All entries.
    pub fn entries(&self) -> &[DirectoryEntry] {
        &self.entries
    }

    /// Number of enrolled devices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is enrolled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one device.
    pub fn get(&self, device: DeviceId) -> Option<&DirectoryEntry> {
        self.entries.iter().find(|e| e.device == device)
    }

    /// Devices volunteering as Data Contributors.
    pub fn contributors(&self) -> Vec<DeviceId> {
        self.entries
            .iter()
            .filter(|e| e.contributes_data)
            .map(|e| e.device)
            .collect()
    }

    /// Devices volunteering as Data Processors.
    pub fn processors(&self) -> Vec<DeviceId> {
        self.entries
            .iter()
            .filter(|e| e.processes_queries)
            .map(|e| e.device)
            .collect()
    }

    /// Selects `count` distinct processors for operator hosting.
    ///
    /// Selection is randomized over eligible devices (a targeted attacker
    /// must not predict placements — the paper's "secure assignment"), yet
    /// deterministic given the query's RNG stream.
    pub fn select_processors(&self, count: usize, rng: &mut DetRng) -> Result<Vec<DeviceId>> {
        let eligible = self.processors();
        if eligible.len() < count {
            return Err(Error::Unsatisfiable(format!(
                "need {count} processors, directory has {}",
                eligible.len()
            )));
        }
        let idx = rng.sample_indices(eligible.len(), count);
        Ok(idx.into_iter().map(|i| eligible[i]).collect())
    }

    /// Buckets contributors among `buckets` Snapshot Builders by hashing
    /// their identity keys (the paper's Figure 2 assignment).
    pub fn assign_contributors(&self, buckets: usize) -> Vec<Vec<DeviceId>> {
        assert!(buckets > 0, "at least one bucket required");
        let mut out = vec![Vec::new(); buckets];
        for e in self.entries.iter().filter(|e| e.contributes_data) {
            let b = (e.key_hash() % buckets as u64) as usize;
            out[b].push(e.device);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> Directory {
        let mut dir = Directory::new();
        let mut rng = DetRng::new(1);
        for i in 0..n {
            let class = DeviceClass::ALL[i % 3];
            dir.enroll(DeviceId::new(i as u64), class, true, i % 2 == 0, &mut rng);
        }
        dir
    }

    #[test]
    fn enroll_and_lookup() {
        let dir = build(10);
        assert_eq!(dir.len(), 10);
        assert!(!dir.is_empty());
        let e = dir.get(DeviceId::new(3)).unwrap();
        assert_eq!(e.class, DeviceClass::SgxPc);
        assert!(dir.get(DeviceId::new(99)).is_none());
        assert_eq!(dir.contributors().len(), 10);
        assert_eq!(dir.processors().len(), 5);
    }

    #[test]
    fn identity_keys_are_distinct() {
        let dir = build(50);
        let mut keys: Vec<_> = dir.entries().iter().map(|e| e.identity_key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 50);
    }

    #[test]
    fn select_processors_distinct_and_eligible() {
        let dir = build(40);
        let mut rng = DetRng::new(9);
        let picked = dir.select_processors(10, &mut rng).unwrap();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        for d in &picked {
            assert!(dir.get(*d).unwrap().processes_queries);
        }
        // Too many requested fails.
        assert!(dir.select_processors(30, &mut rng).is_err());
    }

    #[test]
    fn selection_is_seed_deterministic() {
        let dir = build(40);
        let a = dir.select_processors(8, &mut DetRng::new(5)).unwrap();
        let b = dir.select_processors(8, &mut DetRng::new(5)).unwrap();
        let c = dir.select_processors(8, &mut DetRng::new(6)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_assignment_is_total_and_roughly_uniform() {
        let dir = build(3000);
        let buckets = dir.assign_contributors(10);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 3000);
        for (i, b) in buckets.iter().enumerate() {
            assert!(
                (b.len() as f64 - 300.0).abs() < 75.0,
                "bucket {i} has {} devices",
                b.len()
            );
        }
        // Deterministic: same directory, same assignment.
        let again = dir.assign_contributors(10);
        assert_eq!(buckets, again);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        build(3).assign_contributors(0);
    }
}
