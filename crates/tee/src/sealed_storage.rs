//! Sealed storage: data at rest on the device, readable only by its TEE.
//!
//! The DomYcile box keeps the owner's raw data on a micro-SD card; the
//! TPM holds the keys, so a stolen card leaks nothing. This module models
//! that: a [`DataStore`] is serialized and AEAD-sealed under a key derived
//! from the device's provisioned attestation secret, bound to a version
//! counter so stale snapshots cannot be replayed.

use edgelet_crypto::aead::ChaCha20Poly1305;
use edgelet_crypto::attest::TrustAnchor;
use edgelet_crypto::hmac::hkdf;
use edgelet_store::DataStore;
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Result};
use edgelet_wire::{from_bytes, to_bytes};

/// A sealed data-store blob as it would sit on the micro-SD card.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedStore {
    /// The owning device (part of the key derivation, so a blob moved to
    /// another device cannot be opened).
    pub device: DeviceId,
    /// Monotonic version, bound into the AEAD as associated data.
    pub version: u64,
    /// Nonce + ciphertext + tag.
    pub blob: Vec<u8>,
}

fn storage_key(anchor: &TrustAnchor, device: DeviceId) -> [u8; 32] {
    let device_secret = anchor.provision_device_key(device);
    let okm = hkdf(b"edgelet-sealed-storage", &device_secret, b"v1", 32);
    let mut key = [0u8; 32];
    key.copy_from_slice(&okm);
    key
}

fn version_nonce(version: u64) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&version.to_le_bytes());
    n
}

/// Seals a store for the given device at the given version.
pub fn seal_store(
    anchor: &TrustAnchor,
    device: DeviceId,
    version: u64,
    store: &DataStore,
) -> SealedStore {
    let key = storage_key(anchor, device);
    let cipher = ChaCha20Poly1305::new(key);
    let plaintext = to_bytes(store);
    let blob = cipher.seal(&version_nonce(version), &version.to_le_bytes(), &plaintext);
    SealedStore {
        device,
        version,
        blob,
    }
}

/// Opens a sealed store on its owning device.
///
/// Fails on a wrong device, a tampered blob, or a version mismatch
/// (rollback attempt): `expected_version` is the device's trusted
/// monotonic counter (a TPM NV counter in the real hardware).
pub fn unseal_store(
    anchor: &TrustAnchor,
    device: DeviceId,
    expected_version: u64,
    sealed: &SealedStore,
) -> Result<DataStore> {
    if sealed.device != device {
        return Err(Error::Crypto(format!(
            "sealed blob belongs to {} but was presented on {device}",
            sealed.device
        )));
    }
    if sealed.version != expected_version {
        return Err(Error::Crypto(format!(
            "rollback detected: blob version {} but trusted counter is {expected_version}",
            sealed.version
        )));
    }
    let key = storage_key(anchor, device);
    let cipher = ChaCha20Poly1305::new(key);
    let plaintext = cipher.open(
        &version_nonce(sealed.version),
        &sealed.version.to_le_bytes(),
        &sealed.blob,
    )?;
    from_bytes(&plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_store::synth;
    use edgelet_util::rng::DetRng;

    fn setup() -> (TrustAnchor, DataStore) {
        let anchor = TrustAnchor::new([3u8; 32]);
        let mut rng = DetRng::new(1);
        (anchor, synth::health_store(50, &mut rng))
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let (anchor, store) = setup();
        let dev = DeviceId::new(7);
        let sealed = seal_store(&anchor, dev, 3, &store);
        assert_ne!(sealed.blob, to_bytes(&store), "blob must be ciphertext");
        let back = unseal_store(&anchor, dev, 3, &sealed).unwrap();
        assert_eq!(back.rows(), store.rows());
    }

    #[test]
    fn wrong_device_cannot_open() {
        let (anchor, store) = setup();
        let sealed = seal_store(&anchor, DeviceId::new(7), 1, &store);
        // Declared device mismatch.
        assert!(unseal_store(&anchor, DeviceId::new(8), 1, &sealed).is_err());
        // Forged declaration: right id, but the key won't match.
        let mut forged = sealed.clone();
        forged.device = DeviceId::new(8);
        assert!(unseal_store(&anchor, DeviceId::new(8), 1, &forged).is_err());
    }

    #[test]
    fn rollback_is_detected() {
        let (anchor, store) = setup();
        let dev = DeviceId::new(7);
        let old = seal_store(&anchor, dev, 1, &store);
        let _new = seal_store(&anchor, dev, 2, &store);
        // The trusted counter moved to 2; replaying version 1 fails.
        assert!(unseal_store(&anchor, dev, 2, &old).is_err());
        // And lying about the version breaks the AEAD binding.
        let mut lied = old.clone();
        lied.version = 2;
        assert!(unseal_store(&anchor, dev, 2, &lied).is_err());
    }

    #[test]
    fn tampered_blob_rejected() {
        let (anchor, store) = setup();
        let dev = DeviceId::new(7);
        let mut sealed = seal_store(&anchor, dev, 1, &store);
        let mid = sealed.blob.len() / 2;
        sealed.blob[mid] ^= 1;
        assert!(unseal_store(&anchor, dev, 1, &sealed).is_err());
    }

    #[test]
    fn different_anchor_cannot_open() {
        let (anchor, store) = setup();
        let dev = DeviceId::new(7);
        let sealed = seal_store(&anchor, dev, 1, &store);
        let other = TrustAnchor::new([4u8; 32]);
        assert!(unseal_store(&other, dev, 1, &sealed).is_err());
    }
}
