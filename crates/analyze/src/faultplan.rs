//! Static checks for chaos [`FaultPlan`]s.
//!
//! A fault plan that targets devices outside the world, or whose rules
//! can never fire, silently tests nothing — a campaign would sweep it
//! and report a false "all clean". This lint catches those plans before
//! any seed is spent:
//!
//! * `E060` — a rule's `from`/`to` matcher names a device id the world
//!   does not contain;
//! * `E061` — a rule can never match: empty `[after, until)` window or
//!   a zero firing limit;
//! * `W062` — the rule only activates (or its injected delay only
//!   lands) after the query deadline, so it cannot affect the outcome;
//! * `W063` — first-firing-rule-wins shadowing: an earlier rule with a
//!   wider matcher, zero skip, and no firing limit consumes every match
//!   the later rule could see.

use crate::diagnostic::{codes, Diagnostic};
use edgelet_sim::{FaultAction, FaultPlan, FaultRule};

/// Checks `plan` against a world of `device_count` devices (ids
/// `0..device_count`) and a query deadline in seconds.
pub fn check_fault_plan(
    plan: &FaultPlan,
    device_count: u64,
    deadline_secs: f64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, rule) in plan.rules.iter().enumerate() {
        let loc = format!("fault_plan.rules[{i}]");
        for devices in [&rule.matcher.from, &rule.matcher.to].into_iter().flatten() {
            for d in devices {
                if d.raw() >= device_count {
                    out.push(
                        Diagnostic::error(
                            codes::FAULT_TARGET_OOB,
                            loc.clone(),
                            format!(
                                "rule targets device {d}, but the world has \
                                 device ids 0..{device_count}"
                            ),
                        )
                        .with_help(
                            "fault plans are built against one world's QEP; \
                             rebuild the plan for this seed"
                                .to_string(),
                        ),
                    );
                }
            }
        }
        if let (Some(after), Some(until)) = (rule.matcher.after, rule.matcher.until) {
            if after >= until {
                out.push(Diagnostic::error(
                    codes::FAULT_WINDOW_EMPTY,
                    loc.clone(),
                    format!(
                        "time window [{:.3}s, {:.3}s) is empty; the rule can never match",
                        after.as_secs_f64(),
                        until.as_secs_f64()
                    ),
                ));
            }
        }
        if rule.limit == Some(0) {
            out.push(Diagnostic::error(
                codes::FAULT_WINDOW_EMPTY,
                loc.clone(),
                "firing limit is 0; the rule can never fire".to_string(),
            ));
        }
        if let Some(after) = rule.matcher.after {
            if after.as_secs_f64() >= deadline_secs {
                out.push(Diagnostic::warning(
                    codes::FAULT_DELAY_BEYOND_DEADLINE,
                    loc.clone(),
                    format!(
                        "rule activates at {:.3}s, past the {deadline_secs:.3}s deadline",
                        after.as_secs_f64()
                    ),
                ));
            }
        }
        let extra = match rule.action {
            FaultAction::Delay(d) => Some(d),
            FaultAction::Duplicate { extra_delay } => Some(extra_delay),
            _ => None,
        };
        if let Some(extra) = extra {
            if extra.as_secs_f64() >= deadline_secs {
                out.push(Diagnostic::warning(
                    codes::FAULT_DELAY_BEYOND_DEADLINE,
                    loc.clone(),
                    format!(
                        "injected delay of {:.3}s pushes delivery past the \
                         {deadline_secs:.3}s deadline",
                        extra.as_secs_f64()
                    ),
                ));
            }
        }
        for (j, earlier) in plan.rules.iter().enumerate().take(i) {
            if shadows(earlier, rule) {
                out.push(
                    Diagnostic::warning(
                        codes::FAULT_RULE_UNREACHABLE,
                        loc.clone(),
                        format!(
                            "rule is unreachable: rules[{j}] matches a superset of its \
                             messages with no skip or firing limit, and evaluation is \
                             first-firing-rule-wins"
                        ),
                    )
                    .with_help("narrow the earlier rule or reorder the plan".to_string()),
                );
                break;
            }
        }
    }
    out
}

/// Does `earlier` consume every match `later` could see? Conservative:
/// only flags when `earlier` fires on its first match, never stops, and
/// each matcher dimension is a (non-strict) superset of `later`'s.
fn shadows(earlier: &FaultRule, later: &FaultRule) -> bool {
    if earlier.skip != 0 || earlier.limit.is_some() {
        return false;
    }
    let superset_u16 = |wide: &Option<Vec<u16>>, narrow: &Option<Vec<u16>>| match (wide, narrow) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(w), Some(n)) => n.iter().all(|k| w.contains(k)),
    };
    let superset_dev = |wide: &Option<Vec<edgelet_util::ids::DeviceId>>,
                        narrow: &Option<Vec<edgelet_util::ids::DeviceId>>| {
        match (wide, narrow) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(w), Some(n)) => n.iter().all(|d| w.contains(d)),
        }
    };
    let window_superset = {
        let e_after = earlier.matcher.after.map_or(0, |t| t.as_micros());
        let l_after = later.matcher.after.map_or(0, |t| t.as_micros());
        let e_until = earlier.matcher.until.map_or(u64::MAX, |t| t.as_micros());
        let l_until = later.matcher.until.map_or(u64::MAX, |t| t.as_micros());
        e_after <= l_after && e_until >= l_until
    };
    superset_u16(&earlier.matcher.kinds, &later.matcher.kinds)
        && superset_dev(&earlier.matcher.from, &later.matcher.from)
        && superset_dev(&earlier.matcher.to, &later.matcher.to)
        && window_superset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use edgelet_sim::{Duration, FaultPlan, FaultRule, SimTime};
    use edgelet_util::ids::DeviceId;

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    #[test]
    fn clean_plan_has_no_findings() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new(FaultAction::Drop).on_kinds(&[4]).limit(1))
            .rule(
                FaultRule::new(FaultAction::Delay(Duration::from_secs(2)))
                    .on_kinds(&[3])
                    .to(&[DeviceId::new(5)]),
            );
        assert!(check_fault_plan(&plan, 10, 60.0).is_empty());
    }

    #[test]
    fn out_of_bounds_target_is_an_error() {
        let plan =
            FaultPlan::new().rule(FaultRule::new(FaultAction::Drop).from(&[DeviceId::new(99)]));
        let ds = check_fault_plan(&plan, 10, 60.0);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::FAULT_TARGET_OOB);
        assert_eq!(ds[0].severity, Severity::Error);
    }

    #[test]
    fn empty_window_and_zero_limit_are_errors() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new(FaultAction::Drop).after(t(10)).until(t(10)))
            .rule(FaultRule::new(FaultAction::Drop).on_kinds(&[2]).limit(0));
        let ds = check_fault_plan(&plan, 10, 60.0);
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.code == codes::FAULT_WINDOW_EMPTY));
    }

    #[test]
    fn late_activation_and_huge_delay_warn() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new(FaultAction::Drop).after(t(100)))
            .rule(FaultRule::new(FaultAction::Delay(Duration::from_secs(120))));
        let ds = check_fault_plan(&plan, 10, 60.0);
        assert_eq!(ds.len(), 2);
        assert!(ds
            .iter()
            .all(|d| d.code == codes::FAULT_DELAY_BEYOND_DEADLINE));
        assert!(ds.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn shadowed_rule_warns() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new(FaultAction::Drop).on_kinds(&[4, 6]))
            .rule(FaultRule::new(FaultAction::Reorder).on_kinds(&[4]).limit(2));
        let ds = check_fault_plan(&plan, 10, 60.0);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::FAULT_RULE_UNREACHABLE);
    }

    #[test]
    fn bounded_earlier_rule_does_not_shadow() {
        let plan = FaultPlan::new()
            .rule(FaultRule::new(FaultAction::Drop).on_kinds(&[4]).limit(1))
            .rule(FaultRule::new(FaultAction::Reorder).on_kinds(&[4]));
        assert!(check_fault_plan(&plan, 10, 60.0).is_empty());
    }
}
