//! Simulator-configuration checks.
//!
//! The sharded parallel engine derives its conservative lookahead from
//! the network model's minimum latency: each window, shards execute
//! `[m, m + L)` of virtual time without coordination — `m` the global
//! minimum pending event time, `L` the latency floor — because no
//! cross-shard message sent inside the window can arrive before
//! `m + L`. A model whose minimum latency is zero (e.g. a log-normal
//! delay distribution, or a uniform bound starting at zero) makes
//! every window empty, so every run silently falls back to the global
//! sequential executor — results stay bit-identical, but `--shards N`
//! buys nothing. `W110` surfaces that degenerate configuration before
//! a long run is launched.

use crate::diagnostic::{codes, Diagnostic};

/// Checks the simulator configuration the world will run under.
/// `min_latency_us` is the network model's guaranteed lower bound on
/// every message delay (microseconds); `shards` is the configured shard
/// count.
pub fn check_sim_config(min_latency_us: u64, shards: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if min_latency_us == 0 {
        let mut d = Diagnostic::warning(
            codes::SIM_ZERO_LOOKAHEAD,
            "network.latency",
            if shards > 1 {
                format!(
                    "minimum network latency is 0, so the conservative lookahead \
                     window is empty: the requested {shards} shards fall back to \
                     the sequential executor"
                )
            } else {
                "minimum network latency is 0: the sharded engine's lookahead \
                 window is empty, so parallel runs would fall back to the \
                 sequential executor"
                    .to_string()
            },
        );
        d = d.with_help(
            "give the latency model a positive lower bound (any uniform or fixed \
             floor works); the engine executes dynamic windows [m, m + L) of \
             virtual time, so the window length is exactly that bound",
        );
        out.push(d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_min_latency_warns() {
        let found = check_sim_config(0, 4);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::SIM_ZERO_LOOKAHEAD);
        assert!(found[0].message.contains("4 shards"), "{found:?}");
        // Still warned at shards=1 (the config is latent either way).
        assert_eq!(check_sim_config(0, 1).len(), 1);
    }

    #[test]
    fn positive_min_latency_is_clean() {
        assert!(check_sim_config(1, 8).is_empty());
        assert!(check_sim_config(20_000, 1).is_empty());
    }
}
