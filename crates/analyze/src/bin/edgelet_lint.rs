//! `edgelet-lint` — walks `crates/**/src/**/*.rs` of a workspace and
//! reports determinism/panic-hygiene findings (`E101`–`E104`), Layer-3
//! concurrency findings (`E130`-series), and stale suppression
//! directives (`W131`).
//!
//! Usage: `edgelet-lint [--format json|human] [--no-concurrency]
//! [workspace_root]` (the root defaults to the current directory). Exits
//! nonzero when any finding is reported, so CI can gate on it.

use edgelet_analyze::diagnostic::{render_human, render_json};
use edgelet_analyze::sourcepass::{analyze_sources_with, SourcePassOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut opts = SourcePassOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("human") => json = false,
                other => {
                    eprintln!("edgelet-lint: bad --format {other:?} (json|human)");
                    return ExitCode::from(2);
                }
            },
            "--no-concurrency" => opts.concurrency = false,
            "--concurrency" => opts.concurrency = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: edgelet-lint [--format json|human] [--no-concurrency] [workspace_root]"
                );
                return ExitCode::SUCCESS;
            }
            path => root = PathBuf::from(path),
        }
    }
    if !root.join("crates").is_dir() {
        eprintln!("edgelet-lint: {} has no crates/ directory", root.display());
        return ExitCode::from(2);
    }
    let findings = analyze_sources_with(&root, opts);
    if json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
