//! Privacy pass: vertical-partitioning safety and the horizontal
//! raw-tuple cap (`E010`, `E011`, `W012`).
//!
//! Vertical partitioning exists so that no single Computer (and hence no
//! single device owner) ever sees a separated quasi-identifier pair
//! together; horizontal partitioning exists so that no edgelet holds more
//! raw tuples than the configured cap. Both are static properties of the
//! plan against its [`PrivacyConfig`].

use crate::diagnostic::{codes, Diagnostic};
use edgelet_query::{PrivacyConfig, QueryPlan};
use std::collections::BTreeSet;

/// Runs the privacy checks, appending findings to `out`.
pub fn check(plan: &QueryPlan, privacy: &PrivacyConfig, out: &mut Vec<Diagnostic>) {
    // E010: no separated pair may co-reside in one vertical group.
    for (g, group) in plan.attr_groups.iter().enumerate() {
        let set: BTreeSet<&str> = group.iter().map(|s| s.as_str()).collect();
        for (a, b) in &privacy.separated_attribute_pairs {
            if set.contains(a.as_str()) && set.contains(b.as_str()) {
                out.push(
                    Diagnostic::error(
                        codes::VERTICAL_PRIVACY,
                        format!("plan.attr_groups[{g}]"),
                        format!(
                            "separated pair (`{a}`, `{b}`) co-resides in one \
                             computer slice"
                        ),
                    )
                    .with_help(
                        "a Computer hosting both attributes can link the \
                         quasi-identifiers; re-plan so the pair lands in \
                         different vertical groups",
                    ),
                );
            }
        }
    }

    // E011: horizontal partitioning must honor the raw-tuple cap and
    // still cover the snapshot.
    let c = plan.spec.snapshot_cardinality;
    if let Some(cap) = privacy.max_tuples_per_edgelet {
        if plan.partition_quota > cap {
            out.push(
                Diagnostic::error(
                    codes::HORIZONTAL_CAP,
                    "plan.partition_quota",
                    format!(
                        "partition quota of {} tuples exceeds the raw-tuple \
                         cap of {cap}",
                        plan.partition_quota
                    ),
                )
                .with_help(format!(
                    "cardinality {c} needs at least {} partitions at this cap",
                    (c as u64).div_ceil(cap as u64).max(1)
                )),
            );
        }
    }
    if plan.n == 0 || (plan.n as usize).saturating_mul(plan.partition_quota) < c {
        out.push(Diagnostic::error(
            codes::HORIZONTAL_CAP,
            "plan.partition_quota",
            format!(
                "{} partitions of {} tuples cannot cover the snapshot \
                 cardinality {c}",
                plan.n, plan.partition_quota
            ),
        ));
    }

    // W012: a partition whose contributor bucket is smaller than its
    // quota can never complete, even with full eligibility.
    let thin = plan
        .contributors
        .iter()
        .filter(|bucket| bucket.len() < plan.partition_quota)
        .count();
    if thin > 0 {
        out.push(
            Diagnostic::warning(
                codes::THIN_BUCKET,
                "plan.contributors",
                format!(
                    "{thin} of {} partitions have fewer contributors than \
                     their quota of {} tuples",
                    plan.contributors.len(),
                    plan.partition_quota
                ),
            )
            .with_help("enroll more contributors or raise the raw-tuple cap"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;
    use crate::testutil::{good_plan, grouping_spec, plan_with};
    use edgelet_query::{ResilienceConfig, Strategy};

    #[test]
    fn good_plan_is_clean() {
        let (plan, privacy, _) = good_plan();
        let mut out = Vec::new();
        check(&plan, &privacy, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn colocated_pair_is_e010() {
        let (mut plan, privacy, _) = good_plan();
        // Merge the two vertical groups into one slice.
        let merged: Vec<String> = plan.attr_groups.concat();
        plan.attr_groups = vec![merged];
        let mut out = Vec::new();
        check(&plan, &privacy, &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::VERTICAL_PRIVACY),
            "{out:?}"
        );
    }

    #[test]
    fn quota_over_cap_is_e011() {
        let (mut plan, privacy, _) = good_plan();
        plan.partition_quota = 101; // cap is 100
        let mut out = Vec::new();
        check(&plan, &privacy, &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::HORIZONTAL_CAP),
            "{out:?}"
        );
    }

    #[test]
    fn uncovered_snapshot_is_e011() {
        let (mut plan, privacy, _) = good_plan();
        plan.partition_quota = 10; // n * 10 < C = 600
        let mut out = Vec::new();
        check(&plan, &privacy, &mut out);
        assert!(has_errors(&out), "{out:?}");
    }

    #[test]
    fn thin_buckets_are_w012() {
        let (mut plan, privacy, _) = good_plan();
        for bucket in plan.contributors.iter_mut() {
            bucket.truncate(1);
        }
        let mut out = Vec::new();
        check(&plan, &privacy, &mut out);
        let w = out.iter().find(|d| d.code == codes::THIN_BUCKET);
        assert!(w.is_some(), "{out:?}");
        assert!(
            !has_errors(&out[..]),
            "thin buckets warn, not error: {out:?}"
        );
    }

    #[test]
    fn no_cap_no_findings() {
        let spec = grouping_spec(400, 600.0);
        let privacy = PrivacyConfig::none();
        let resilience = ResilienceConfig {
            strategy: Strategy::Naive,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, &privacy, &resilience);
        let mut out = Vec::new();
        check(&plan, &privacy, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
