//! Resiliency pass: provisioning vs. the binomial survival tail (`E020`,
//! `W021`, `W022`).
//!
//! The paper's Overcollection strategy keeps a query valid when at least
//! `n` of the `n + m` partitions survive; the Backup strategy replicates
//! every Data Processor operator. Both reduce to closed-form survival
//! probabilities, so whether a plan's provisioning actually reaches the
//! configured validity target is statically checkable — this pass redoes
//! the planner's math from the plan as built and flags shortfalls.

use crate::diagnostic::{codes, Diagnostic};
use edgelet_query::{QueryPlan, ResilienceConfig, Strategy};
use edgelet_util::binom::overcollection_validity;

/// Numeric slack for re-deriving the planner's floating-point math.
const EPS: f64 = 1e-9;

/// Runs the resiliency checks, appending findings to `out`.
pub fn check(plan: &QueryPlan, resilience: &ResilienceConfig, out: &mut Vec<Diagnostic>) {
    let p = resilience.failure_probability;
    let target = resilience.target_validity;
    let v = plan.attr_groups.len() as u64;

    match plan.strategy {
        Strategy::Overcollection => {
            // A partition pipeline spans one builder plus `v` computers;
            // it survives only if every one of them does.
            let p_partition = 1.0 - (1.0 - p).powi((1 + v) as i32);
            let partition_validity = overcollection_validity(plan.n, plan.m, p_partition);
            let replicas = plan
                .operators_where(|r| matches!(r, edgelet_query::OperatorRole::Combiner { .. }))
                .len() as i32;
            let combiner_survival = 1.0 - p.powi(replicas.max(1));
            // Mirror the planner's budget split: the partition supply must
            // cover `target / combiner_survival`; when the combination
            // stage alone cannot reach the target, the planner falls back
            // to the best achievable partition-side validity.
            let budgeted_target = if combiner_survival < target + EPS {
                0.999_999
            } else {
                (target / combiner_survival).min(0.999_999)
            };
            if partition_validity + EPS < budgeted_target {
                out.push(
                    Diagnostic::error(
                        codes::RESILIENCY_TARGET,
                        format!("plan (n={}, m={})", plan.n, plan.m),
                        format!(
                            "overcollection reaches partition-side validity \
                             {partition_validity:.6} under fault presumption {p}, \
                             below the budgeted target {budgeted_target:.6}"
                        ),
                    )
                    .with_help(
                        "raise the overcollection degree m, add combiner \
                         replicas, or lower the target",
                    ),
                );
            }
            if combiner_survival < target + EPS {
                out.push(
                    Diagnostic::warning(
                        codes::COMBINER_SURVIVAL,
                        format!("plan ({replicas} combiner replicas)"),
                        format!(
                            "combiner replica survival {combiner_survival:.6} caps \
                             overall validity below the target {target}; no \
                             partition supply can compensate"
                        ),
                    )
                    .with_help("the combination stage caps overall validity"),
                );
            }
        }
        Strategy::Backup => {
            // Every Data Processor operator must survive through its
            // replica set: builders and computers per mandatory
            // partition, plus the combiner.
            let ops = plan.n * (1 + v) + 1;
            let per_op = 1.0 - p.powi((1 + plan.backup_degree) as i32);
            let achieved = per_op.powi(ops as i32);
            if achieved + EPS < target {
                out.push(
                    Diagnostic::error(
                        codes::RESILIENCY_TARGET,
                        format!("plan (backup_degree={})", plan.backup_degree),
                        format!(
                            "backup replication reaches validity {achieved:.6} \
                             under fault presumption {p}, below the target {target}"
                        ),
                    )
                    .with_help("raise the backup degree or lower the target"),
                );
            }
        }
        Strategy::Naive => {
            if p > 0.0 {
                out.push(
                    Diagnostic::warning(
                        codes::NAIVE_WITH_FAULTS,
                        "plan.strategy",
                        format!(
                            "naive strategy provisions no resiliency under a \
                             fault presumption of {p}"
                        ),
                    )
                    .with_help(
                        "any single Data Processor fault invalidates the query; \
                         use Overcollection or Backup",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;
    use crate::testutil::{good_plan, grouping_spec, plan_with};
    use edgelet_query::PrivacyConfig;

    #[test]
    fn built_overcollection_plan_meets_its_target() {
        let (plan, _, resilience) = good_plan();
        let mut out = Vec::new();
        check(&plan, &resilience, &mut out);
        assert!(!has_errors(&out), "{out:?}");
    }

    #[test]
    fn stripped_overcollection_is_e020() {
        let (mut plan, _, resilience) = good_plan();
        // Discard the overcollected partitions the planner provisioned.
        plan.m = 0;
        let mut out = Vec::new();
        check(&plan, &resilience, &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::RESILIENCY_TARGET),
            "{out:?}"
        );
    }

    #[test]
    fn combiner_capped_target_warns_but_does_not_error() {
        // With p = 0.1 and target 0.999 the planner provisions exactly
        // three combiner replicas (survival 0.999); the combination stage
        // alone pins overall validity at the target, which the planner
        // knowingly accepts. The analyzer must mirror that: W022, no E020.
        let spec = grouping_spec(600, 600.0);
        let privacy = PrivacyConfig::none().with_max_tuples(100);
        let resilience = ResilienceConfig {
            strategy: Strategy::Overcollection,
            failure_probability: 0.1,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, &privacy, &resilience);
        let mut out = Vec::new();
        check(&plan, &resilience, &mut out);
        assert!(!has_errors(&out), "{out:?}");
        assert!(
            out.iter().any(|d| d.code == codes::COMBINER_SURVIVAL),
            "{out:?}"
        );
    }

    #[test]
    fn built_backup_plan_meets_its_target() {
        let spec = grouping_spec(400, 600.0);
        let privacy = PrivacyConfig::none().with_max_tuples(100);
        let resilience = ResilienceConfig {
            strategy: Strategy::Backup,
            failure_probability: 0.15,
            target_validity: 0.99,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, &privacy, &resilience);
        let mut out = Vec::new();
        check(&plan, &resilience, &mut out);
        assert!(!has_errors(&out), "{out:?}");

        // Stripping the provisioned backups breaks the target.
        let mut stripped = plan.clone();
        stripped.backup_degree = 0;
        let mut out = Vec::new();
        check(&stripped, &resilience, &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::RESILIENCY_TARGET),
            "{out:?}"
        );
    }

    #[test]
    fn naive_under_faults_is_w021() {
        let spec = grouping_spec(400, 600.0);
        let privacy = PrivacyConfig::none().with_max_tuples(100);
        let resilience = ResilienceConfig {
            strategy: Strategy::Naive,
            failure_probability: 0.1,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, &privacy, &resilience);
        let mut out = Vec::new();
        check(&plan, &resilience, &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::NAIVE_WITH_FAULTS),
            "{out:?}"
        );
        assert!(
            !has_errors(&out),
            "naive is a warning, not an error: {out:?}"
        );
    }

    #[test]
    fn naive_without_faults_is_clean() {
        let spec = grouping_spec(400, 600.0);
        let privacy = PrivacyConfig::none().with_max_tuples(100);
        let resilience = ResilienceConfig {
            strategy: Strategy::Naive,
            failure_probability: 0.0,
            ..ResilienceConfig::default()
        };
        let plan = plan_with(&spec, &privacy, &resilience);
        let mut out = Vec::new();
        check(&plan, &resilience, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
