//! Layer 1: semantic analysis of a [`QueryPlan`] and its configuration.
//!
//! The paper's guarantees — resiliency (complete before the deadline under
//! a fault presumption rate), validity, and crowd liability — are
//! properties of the QEP and the scenario configuration, so most
//! violations are statically detectable before a single simulated message
//! is sent. Each pass inspects one property family and emits
//! [`Diagnostic`]s with stable codes:
//!
//! * [`structure`] — DAG shape and wiring (`E001`–`E005`), subsuming and
//!   extending `edgelet_query::check_plan`;
//! * [`privacy`] — vertical-partitioning safety and the horizontal
//!   raw-tuple cap (`E010`, `E011`, `W012`);
//! * [`resiliency`] — provisioning vs. the binomial survival tail
//!   (`E020`, `W021`, `W022`);
//! * [`liability`] — crowd-liability skew bounds (`E030`, `W031`);
//! * [`deadline`] — deadline feasibility against the cost model's
//!   critical path (`E040`, `W041`).

use crate::diagnostic::{Diagnostic, Severity};
use edgelet_query::{PrivacyConfig, QueryPlan, ResilienceConfig};
use edgelet_util::{Error, Result};

pub mod deadline;
pub mod liability;
pub mod privacy;
pub mod resiliency;
pub mod structure;

/// Tunable bounds for the semantic passes.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeOptions {
    /// Expected one-hop message latency, used to lower-bound the critical
    /// path for deadline feasibility. Conservative by default; set it from
    /// the network profile for sharper results (e.g. the opportunistic
    /// median).
    pub expected_hop_latency_secs: f64,
    /// Crowd-liability bound: the maximum Data Processor operator
    /// instances one device may host. The paper's secure assignment
    /// spreads operators, so 1 is the faithful bound.
    pub max_operators_per_device: usize,
    /// Contributor-assignment skew bound: warn when the fullest partition
    /// bucket exceeds this multiple of the mean bucket size.
    pub contributor_skew_factor: f64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            expected_hop_latency_secs: 1.0,
            max_operators_per_device: 1,
            contributor_skew_factor: 4.0,
        }
    }
}

/// Runs the passes that need only the plan itself: structure, liability,
/// and deadline feasibility. This is the execution-driver preflight set.
pub fn analyze_plan(plan: &QueryPlan, opts: &AnalyzeOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    structure::check(plan, &mut out);
    liability::check(plan, opts, &mut out);
    deadline::check(plan, opts, &mut out);
    out
}

/// Runs every pass: the plan-only set plus the privacy and resiliency
/// passes, which need the configurations the plan was built from.
pub fn analyze(
    plan: &QueryPlan,
    privacy_config: &PrivacyConfig,
    resilience: &ResilienceConfig,
    opts: &AnalyzeOptions,
) -> Vec<Diagnostic> {
    let mut out = analyze_plan(plan, opts);
    privacy::check(plan, privacy_config, &mut out);
    resiliency::check(plan, resilience, &mut out);
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// Deny-by-default preflight: analyzes the plan and converts the first
/// `Error`-severity finding into an [`Error::InvalidConfig`]. The
/// execution driver calls this before wiring actors.
pub fn preflight(plan: &QueryPlan) -> Result<()> {
    let findings = analyze_plan(plan, &AnalyzeOptions::default());
    match findings.iter().find(|d| d.severity == Severity::Error) {
        None => Ok(()),
        Some(d) => Err(Error::InvalidConfig(format!(
            "static analysis rejected the plan: [{}] {} ({})",
            d.code, d.message, d.location
        ))),
    }
}
