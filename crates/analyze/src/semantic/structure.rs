//! Structural pass: DAG shape and wiring (`E001`–`E005`).
//!
//! Subsumes `edgelet_query::check_plan` but collects *every* violation
//! instead of stopping at the first, and reports each under a stable
//! diagnostic code. (The device-collision invariant lives in the
//! [liability pass](super::liability) as `E030`, since it is a bound, not
//! a shape property.)

use crate::diagnostic::{codes, Diagnostic};
use edgelet_query::{OperatorRole, QueryPlan};
use std::collections::{BTreeMap, BTreeSet};

/// Runs the structural checks, appending findings to `out`.
pub fn check(plan: &QueryPlan, out: &mut Vec<Diagnostic>) {
    let total = plan.total_partitions();

    // E001: exactly one Snapshot Builder per partition, covering 0..n+m.
    let mut builders: BTreeSet<u64> = BTreeSet::new();
    for op in &plan.operators {
        if let OperatorRole::SnapshotBuilder { partition } = op.role {
            if !builders.insert(partition.raw()) {
                out.push(Diagnostic::error(
                    codes::BUILDER_COVERAGE,
                    format!("operator {}", op.id),
                    format!("duplicate snapshot builder for partition {partition}"),
                ));
            }
        }
    }
    if builders.len() as u64 != total || builders.last() != Some(&total.saturating_sub(1)) {
        out.push(
            Diagnostic::error(
                codes::BUILDER_COVERAGE,
                "plan.operators",
                format!(
                    "snapshot builders cover {} partitions, expected 0..{total}",
                    builders.len()
                ),
            )
            .with_help("every partition needs exactly one Snapshot Builder"),
        );
    }

    // E002: exactly one Computer per (partition, attr group), full grid,
    // and aggregate assignment aligned with the groups.
    let groups = plan.attr_groups.len() as u32;
    let mut computers: BTreeSet<(u64, u32)> = BTreeSet::new();
    for op in &plan.operators {
        if let OperatorRole::Computer {
            partition,
            attr_group,
        } = op.role
        {
            if attr_group >= groups {
                out.push(Diagnostic::error(
                    codes::COMPUTER_GRID,
                    format!("operator {}", op.id),
                    format!("computer references unknown attr group g{attr_group}"),
                ));
            } else if !computers.insert((partition.raw(), attr_group)) {
                out.push(Diagnostic::error(
                    codes::COMPUTER_GRID,
                    format!("operator {}", op.id),
                    format!("duplicate computer for ({partition}, g{attr_group})"),
                ));
            }
        }
    }
    let expected_cells = total * u64::from(groups);
    if (computers.len() as u64) != expected_cells {
        out.push(
            Diagnostic::error(
                codes::COMPUTER_GRID,
                "plan.operators",
                format!(
                    "computer grid has {} cells, expected {expected_cells}",
                    computers.len()
                ),
            )
            .with_help("each partition needs one Computer per vertical attribute group"),
        );
    }
    if !plan.attr_group_aggregates.is_empty()
        && plan.attr_group_aggregates.len() != plan.attr_groups.len()
    {
        out.push(Diagnostic::error(
            codes::COMPUTER_GRID,
            "plan.attr_group_aggregates",
            format!(
                "aggregate assignment has {} entries for {} attr groups",
                plan.attr_group_aggregates.len(),
                plan.attr_groups.len()
            ),
        ));
    }

    // E003: combiner replicas contiguous from 0, exactly one querier.
    let mut replicas: Vec<u32> = plan
        .operators
        .iter()
        .filter_map(|o| match o.role {
            OperatorRole::Combiner { replica } => Some(replica),
            _ => None,
        })
        .collect();
    replicas.sort_unstable();
    if replicas.first() != Some(&0) {
        out.push(
            Diagnostic::error(
                codes::COMBINER_ARITY,
                "plan.operators",
                "missing primary combiner (replica 0)",
            )
            .with_help("the Computing Combiner primary must exist; backups are replicas 1.."),
        );
    } else if replicas.iter().enumerate().any(|(i, r)| *r != i as u32) {
        out.push(Diagnostic::error(
            codes::COMBINER_ARITY,
            "plan.operators",
            format!("combiner replica indices not contiguous: {replicas:?}"),
        ));
    }
    let queriers = plan
        .operators_where(|r| matches!(r, OperatorRole::Querier))
        .len();
    if queriers != 1 {
        out.push(Diagnostic::error(
            codes::COMBINER_ARITY,
            "plan.operators",
            format!("expected exactly one querier, found {queriers}"),
        ));
    }

    // E004: edges reference existing operators and respect the stage
    // order builder -> computer -> combiner -> querier.
    let role_of: BTreeMap<u64, &OperatorRole> = plan
        .operators
        .iter()
        .map(|o| (o.id.raw(), &o.role))
        .collect();
    for (a, b) in &plan.edges {
        let (ra, rb) = match (role_of.get(&a.raw()), role_of.get(&b.raw())) {
            (Some(ra), Some(rb)) => (ra, rb),
            _ => {
                out.push(Diagnostic::error(
                    codes::EDGE_ORDER,
                    format!("edge ({a}, {b})"),
                    "edge references unknown operators",
                ));
                continue;
            }
        };
        let ok = matches!(
            (ra, rb),
            (
                OperatorRole::SnapshotBuilder { .. },
                OperatorRole::Computer { .. }
            ) | (OperatorRole::Computer { .. }, OperatorRole::Combiner { .. })
                | (OperatorRole::Combiner { .. }, OperatorRole::Querier)
        );
        if !ok {
            out.push(
                Diagnostic::error(
                    codes::EDGE_ORDER,
                    format!("edge ({a}, {b})"),
                    format!(
                        "edge {} -> {} violates the QEP stage order",
                        ra.label(),
                        rb.label()
                    ),
                )
                .with_help("dataflow must run builder -> computer -> combiner -> querier"),
            );
        }
    }

    // E005: contributor buckets match the partition count.
    if plan.contributors.len() as u64 != total {
        out.push(Diagnostic::error(
            codes::CONTRIBUTOR_BUCKETS,
            "plan.contributors",
            format!(
                "{} contributor buckets for {total} partitions",
                plan.contributors.len()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;
    use crate::testutil::good_plan;

    fn codes_of(plan: &QueryPlan) -> Vec<&'static str> {
        let mut out = Vec::new();
        check(plan, &mut out);
        out.iter().map(|d| d.code).collect()
    }

    #[test]
    fn good_plan_is_clean() {
        let (plan, _, _) = good_plan();
        let mut out = Vec::new();
        check(&plan, &mut out);
        assert!(!has_errors(&out), "{out:?}");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_builder_is_e001() {
        let (mut plan, _, _) = good_plan();
        let idx = plan
            .operators
            .iter()
            .position(|o| matches!(o.role, OperatorRole::SnapshotBuilder { .. }))
            .unwrap();
        plan.operators.remove(idx);
        assert!(codes_of(&plan).contains(&codes::BUILDER_COVERAGE));
    }

    #[test]
    fn missing_computer_is_e002() {
        let (mut plan, _, _) = good_plan();
        let idx = plan
            .operators
            .iter()
            .position(|o| matches!(o.role, OperatorRole::Computer { .. }))
            .unwrap();
        plan.operators.remove(idx);
        assert!(codes_of(&plan).contains(&codes::COMPUTER_GRID));
    }

    #[test]
    fn duplicate_computer_is_e002() {
        let (mut plan, _, _) = good_plan();
        let comp = plan
            .operators
            .iter()
            .find(|o| matches!(o.role, OperatorRole::Computer { .. }))
            .unwrap()
            .clone();
        plan.operators.push(comp);
        assert!(codes_of(&plan).contains(&codes::COMPUTER_GRID));
    }

    #[test]
    fn missing_primary_combiner_is_e003() {
        let (mut plan, _, _) = good_plan();
        plan.operators
            .retain(|o| !matches!(o.role, OperatorRole::Combiner { replica: 0 }));
        let found = codes_of(&plan);
        assert!(found.contains(&codes::COMBINER_ARITY), "{found:?}");
    }

    #[test]
    fn backwards_edge_is_e004() {
        let (mut plan, _, _) = good_plan();
        let (a, b) = plan.edges[0];
        plan.edges.push((b, a));
        assert!(codes_of(&plan).contains(&codes::EDGE_ORDER));
    }

    #[test]
    fn bucket_mismatch_is_e005() {
        let (mut plan, _, _) = good_plan();
        plan.contributors.pop();
        assert!(codes_of(&plan).contains(&codes::CONTRIBUTOR_BUCKETS));
    }

    #[test]
    fn multiple_violations_all_reported() {
        let (mut plan, _, _) = good_plan();
        plan.contributors.pop();
        let (a, b) = plan.edges[0];
        plan.edges.push((b, a));
        let found = codes_of(&plan);
        assert!(found.contains(&codes::CONTRIBUTOR_BUCKETS));
        assert!(found.contains(&codes::EDGE_ORDER));
    }
}
