//! Deadline pass: feasibility against the cost model's critical path
//! (`E040`, `W041`).
//!
//! Resiliency in the paper means *completing before the deadline* despite
//! faults. A deadline shorter than the protocol's critical path cannot be
//! met even on a perfect network, so it is a plan error, not a runtime
//! surprise. The floor comes from [`edgelet_query::cost::estimate`]'s
//! critical-path hop count (request → contribution → partition data →
//! partial → final result), plus one sequential peer-knowledge round per
//! K-Means heartbeat, scaled by the expected one-hop latency.

use super::AnalyzeOptions;
use crate::diagnostic::{codes, Diagnostic};
use edgelet_query::{cost, QueryKind, QueryPlan};

/// The minimum time the protocol needs under `opts`' latency model.
pub fn critical_path_floor_secs(plan: &QueryPlan, opts: &AnalyzeOptions) -> f64 {
    let est = cost::estimate(plan);
    let extra_rounds = match &plan.spec.kind {
        QueryKind::KMeans { heartbeats, .. } => *heartbeats as u64,
        _ => 0,
    };
    (f64::from(est.critical_path_hops) + extra_rounds as f64) * opts.expected_hop_latency_secs
}

/// Runs the deadline checks, appending findings to `out`.
pub fn check(plan: &QueryPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    let deadline = plan.spec.deadline_secs;
    if !deadline.is_finite() || deadline <= 0.0 {
        out.push(
            Diagnostic::error(
                codes::DEADLINE_INFEASIBLE,
                "spec.deadline_secs",
                format!("deadline of {deadline} seconds is not a positive duration"),
            )
            .with_help("set a positive, finite deadline"),
        );
        return;
    }
    let floor = critical_path_floor_secs(plan, opts);
    if deadline < floor {
        out.push(
            Diagnostic::error(
                codes::DEADLINE_INFEASIBLE,
                "spec.deadline_secs",
                format!(
                    "deadline of {deadline} s is below the critical-path floor of \
                     {floor:.1} s at {} s per hop",
                    opts.expected_hop_latency_secs
                ),
            )
            .with_help("even a fault-free run cannot finish; extend the deadline"),
        );
    } else if deadline < 2.0 * floor {
        out.push(
            Diagnostic::warning(
                codes::DEADLINE_TIGHT,
                "spec.deadline_secs",
                format!(
                    "deadline of {deadline} s leaves less than 2x the \
                     critical-path floor of {floor:.1} s; faults or stragglers \
                     will likely miss it"
                ),
            )
            .with_help("extend the deadline or reduce per-hop latency expectations"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;
    use crate::testutil::{good_plan, grouping_spec, plan_with};
    use edgelet_query::{PrivacyConfig, ResilienceConfig};

    #[test]
    fn generous_deadline_is_clean() {
        let (plan, _, _) = good_plan();
        let mut out = Vec::new();
        check(&plan, &AnalyzeOptions::default(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn nonpositive_deadline_is_e040() {
        let (mut plan, _, _) = good_plan();
        plan.spec.deadline_secs = 0.0;
        let mut out = Vec::new();
        check(&plan, &AnalyzeOptions::default(), &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::DEADLINE_INFEASIBLE),
            "{out:?}"
        );
    }

    #[test]
    fn sub_floor_deadline_is_e040() {
        let (mut plan, _, _) = good_plan();
        let floor = critical_path_floor_secs(&plan, &AnalyzeOptions::default());
        plan.spec.deadline_secs = floor / 2.0;
        let mut out = Vec::new();
        check(&plan, &AnalyzeOptions::default(), &mut out);
        assert!(has_errors(&out), "{out:?}");
    }

    #[test]
    fn tight_deadline_is_w041_only() {
        let (mut plan, _, _) = good_plan();
        let floor = critical_path_floor_secs(&plan, &AnalyzeOptions::default());
        plan.spec.deadline_secs = 1.5 * floor;
        let mut out = Vec::new();
        check(&plan, &AnalyzeOptions::default(), &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::DEADLINE_TIGHT),
            "{out:?}"
        );
        assert!(!has_errors(&out), "{out:?}");
    }

    #[test]
    fn slow_network_raises_the_floor() {
        // The same 600 s deadline that is fine at 1 s/hop becomes
        // infeasible at opportunistic-network latencies.
        let spec = grouping_spec(400, 600.0);
        let privacy = PrivacyConfig::none().with_max_tuples(100);
        let plan = plan_with(&spec, &privacy, &ResilienceConfig::default());
        let slow = AnalyzeOptions {
            expected_hop_latency_secs: 600.0,
            ..AnalyzeOptions::default()
        };
        let mut out = Vec::new();
        check(&plan, &slow, &mut out);
        assert!(has_errors(&out), "{out:?}");
    }
}
