//! Liability pass: crowd-liability skew bounds (`E030`, `W031`).
//!
//! The paper's secure assignment spreads Data Processor operators over
//! randomly drawn volunteer devices so no single owner concentrates
//! liability for the crowd's data. This pass bounds two skews: operator
//! instances per device (`E030`, bound 1 by default — the planner's own
//! guarantee) and contributor-assignment skew across partitions (`W031`).

use super::AnalyzeOptions;
use crate::diagnostic::{codes, Diagnostic};
use edgelet_query::QueryPlan;
use std::collections::BTreeMap;

/// Runs the liability checks, appending findings to `out`.
pub fn check(plan: &QueryPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    // E030: no device may host more Data Processor operator instances
    // (primaries or backup replicas) than the bound allows.
    let mut hosted: BTreeMap<u64, (usize, String)> = BTreeMap::new();
    for op in plan.operators.iter().filter(|o| o.role.is_data_processor()) {
        for dev in std::iter::once(op.device).chain(op.backups.iter().copied()) {
            let entry = hosted.entry(dev.raw()).or_insert((0, String::new()));
            entry.0 += 1;
            if !entry.1.is_empty() {
                entry.1.push_str(", ");
            }
            entry.1.push_str(&op.role.label());
        }
    }
    for (dev, (count, roles)) in &hosted {
        if *count > opts.max_operators_per_device {
            out.push(
                Diagnostic::error(
                    codes::LIABILITY_SKEW,
                    format!("device {dev}"),
                    format!(
                        "device hosts {count} Data Processor operators ({roles}), \
                         bound is {}",
                        opts.max_operators_per_device
                    ),
                )
                .with_help(
                    "concentrating operators concentrates crowd liability; \
                     re-draw the assignment over more volunteers",
                ),
            );
        }
    }

    // W031: contributor buckets should be roughly balanced — identity-key
    // hashing makes them so; a heavily skewed assignment concentrates
    // raw-data liability on one partition's builder.
    let total: usize = plan.contributors.iter().map(|b| b.len()).sum();
    let buckets = plan.contributors.len();
    if buckets >= 2 && total > 0 {
        let mean = total as f64 / buckets as f64;
        let (worst_idx, worst) = plan
            .contributors
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.len()))
            .max_by_key(|(_, len)| *len)
            .unwrap_or((0, 0));
        if worst as f64 > opts.contributor_skew_factor * mean {
            out.push(
                Diagnostic::warning(
                    codes::CONTRIBUTOR_SKEW,
                    format!("plan.contributors[{worst_idx}]"),
                    format!(
                        "partition {worst_idx} holds {worst} contributors against \
                         a mean of {mean:.1} (> {:.0}x skew)",
                        opts.contributor_skew_factor
                    ),
                )
                .with_help("check the identity-key hashing; buckets should balance"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;
    use crate::testutil::good_plan;

    #[test]
    fn good_plan_is_clean() {
        let (plan, _, _) = good_plan();
        let mut out = Vec::new();
        check(&plan, &AnalyzeOptions::default(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn device_collision_is_e030() {
        let (mut plan, _, _) = good_plan();
        let d0 = plan.operators[0].device;
        for op in plan.operators.iter_mut() {
            if matches!(op.role, edgelet_query::OperatorRole::Combiner { .. }) {
                op.device = d0;
            }
        }
        let mut out = Vec::new();
        check(&plan, &AnalyzeOptions::default(), &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::LIABILITY_SKEW),
            "{out:?}"
        );
    }

    #[test]
    fn relaxed_bound_accepts_collisions() {
        let (mut plan, _, _) = good_plan();
        let d0 = plan.operators[0].device;
        plan.operators[1].device = d0;
        let opts = AnalyzeOptions {
            max_operators_per_device: 2,
            ..AnalyzeOptions::default()
        };
        let mut out = Vec::new();
        check(&plan, &opts, &mut out);
        assert!(!has_errors(&out), "{out:?}");
    }

    #[test]
    fn skewed_buckets_are_w031() {
        let (mut plan, _, _) = good_plan();
        // Pile every contributor into bucket 0.
        let all: Vec<_> = plan.contributors.concat();
        for bucket in plan.contributors.iter_mut() {
            bucket.clear();
        }
        plan.contributors[0] = all;
        let mut out = Vec::new();
        check(&plan, &AnalyzeOptions::default(), &mut out);
        assert!(
            out.iter().any(|d| d.code == codes::CONTRIBUTOR_SKEW),
            "{out:?}"
        );
    }
}
