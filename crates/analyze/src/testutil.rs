//! Shared fixtures for the semantic-pass unit tests: a populated device
//! directory and plans built exactly as the planner builds them, so the
//! analyzer can be tested against both faithful plans and seeded
//! mutations of them.

use edgelet_ml::grouping::GroupingQuery;
use edgelet_ml::{AggKind, AggSpec};
use edgelet_query::plan::build_plan;
use edgelet_query::{PrivacyConfig, QueryKind, QueryPlan, QuerySpec, ResilienceConfig, Strategy};
use edgelet_store::synth::health_schema;
use edgelet_store::Predicate;
use edgelet_tee::{DeviceClass, Directory};
use edgelet_util::ids::{DeviceId, QueryId};
use edgelet_util::rng::DetRng;

/// A directory with `contributors` data contributors and `processors`
/// volunteer processors.
pub fn directory(contributors: u64, processors: u64) -> Directory {
    let mut dir = Directory::new();
    let mut rng = DetRng::new(91);
    for i in 0..contributors + processors {
        dir.enroll(
            DeviceId::new(i),
            DeviceClass::SgxPc,
            i < contributors,
            i >= contributors,
            &mut rng,
        );
    }
    dir
}

/// A Grouping-Sets spec over the synthetic health schema with two
/// separable statistic columns (`bmi`, `systolic_bp`).
pub fn grouping_spec(cardinality: usize, deadline_secs: f64) -> QuerySpec {
    QuerySpec {
        id: QueryId::new(7),
        filter: Predicate::True,
        snapshot_cardinality: cardinality,
        kind: QueryKind::GroupingSets(GroupingQuery::new(
            &[&["sex"], &[]],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggKind::Avg, "bmi"),
                AggSpec::over(AggKind::Avg, "systolic_bp"),
            ],
        )),
        deadline_secs,
    }
}

/// Builds a plan the way production code does.
pub fn plan_with(
    spec: &QuerySpec,
    privacy: &PrivacyConfig,
    resilience: &ResilienceConfig,
) -> QueryPlan {
    let dir = directory(4000, 400);
    let mut rng = DetRng::new(13);
    build_plan(
        spec,
        &health_schema(),
        privacy,
        resilience,
        &dir,
        DeviceId::new(0),
        &mut rng,
    )
    .expect("fixture plan builds")
}

/// A well-formed Overcollection plan: C=600, cap=100 (n=6), one separated
/// pair (2 vertical groups), p=0.15.
pub fn good_plan() -> (QueryPlan, PrivacyConfig, ResilienceConfig) {
    let spec = grouping_spec(600, 600.0);
    let privacy = PrivacyConfig::none()
        .with_max_tuples(100)
        .separate("bmi", "systolic_bp");
    let resilience = ResilienceConfig {
        strategy: Strategy::Overcollection,
        failure_probability: 0.15,
        ..ResilienceConfig::default()
    };
    let plan = plan_with(&spec, &privacy, &resilience);
    (plan, privacy, resilience)
}
