//! Layer 3: cross-crate concurrency static analysis.
//!
//! The live runtime (`crates/live`) and the sharded simulator
//! (`crates/sim`) put protocol actors on real threads behind
//! lock-striped mailboxes. The refactors the roadmap calls for on those
//! hot paths — finer-grained mailboxes, work stealing, wider lookahead —
//! are exactly the kind that silently introduce deadlocks and
//! schedule-dependent divergence. This pass models every lock site in
//! the workspace from source (the shared [`crate::scanner`], no parser
//! dependency) and reports:
//!
//! * `E130` — **lock-order cycles**: two lock classes acquired in
//!   opposite orders on different code paths (including through calls:
//!   holding `a` while calling a function that acquires `b` orders
//!   `a -> b`). Two threads taking the two paths can deadlock holding
//!   one lock each.
//! * `E132` — a **lock held across a blocking or transport call**
//!   (`submit`, `send`, `recv`, `join`, sleep): the holder can stall
//!   every thread contending for that lock behind the slow call.
//!   `Condvar::wait`/`wait_timeout` are deliberately *not* blocking
//!   needles — they release the guard while waiting.
//! * `W133` — a **channel constructed without a capacity bound**
//!   (`mpsc::channel`, `unbounded`): the code-level generalization of
//!   the config-level `W121` mailbox check.
//! * `E134` — **unsynchronized shared mutable state** (`static mut`
//!   anywhere; `Rc`/`RefCell`/`Cell` in a crate that spawns threads).
//!   `thread_local!` blocks are exempt — they are per-thread by
//!   construction.
//!
//! ## The model
//!
//! Functions are parsed by brace depth. A **lock class** is the last
//! identifier path segment of the lock expression: `lock(&self.epochs)`
//! and `lock(&lanes[lane])` acquire classes `epochs` and `lanes` — the
//! stripe index is erased, which is deliberately conservative for
//! ordering (two stripes of one class count as one lock). Guard scopes
//! follow the binding shape: a `let`-bound guard lives to the end of its
//! enclosing block (or an explicit `drop(var)`); a guard inside a
//! `for`/`while`/`if`/`match` head lives through that construct
//! (scrutinee and iterator temporaries survive the whole block); a bare
//! temporary lives only through its own statement line. Acquisition
//! order is propagated interprocedurally: per-function acquisition sets
//! reach a fixpoint over same-crate calls resolved by name (conservative
//! union for same-named functions), and class graphs never cross crate
//! boundaries.
//!
//! Findings are suppressed exactly like lint findings: a justified
//! `lint: allow(E130 reason)` on the same or preceding line.

use crate::diagnostic::{codes, Diagnostic};
use crate::scanner::{load_workspace, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts the lock class from a lock expression: strip borrows and
/// derefs, erase stripe indices (`[..]`), and take the last non-numeric
/// path segment. `&self.0.in_flight` -> `in_flight`; `&lanes[lane]` ->
/// `lanes`.
fn class_of_expr(expr: &str) -> Option<String> {
    let e = expr.trim().trim_start_matches(&['&', '*'][..]).trim_start();
    let e = e.strip_prefix("mut ").unwrap_or(e).trim_start();
    let base = &e[..e.find('[').unwrap_or(e.len())];
    let seg = base
        .split('.')
        .rev()
        .map(str::trim)
        .find(|s| !s.is_empty() && !s.bytes().all(|b| b.is_ascii_digit()) && *s != "self")?;
    let class: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!class.is_empty()).then_some(class)
}

/// Finds the `fn name` declared on this line, if any.
fn fn_decl_name(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while let Some(pos) = line[i..].find("fn ") {
        let p = i + pos;
        i = p + 3;
        if p > 0 && is_ident(bytes[p - 1]) {
            continue;
        }
        let mut j = p + 3;
        while j < bytes.len() && bytes[j] == b' ' {
            j += 1;
        }
        let start = j;
        while j < bytes.len() && is_ident(bytes[j]) {
            j += 1;
        }
        if j > start && !bytes[start].is_ascii_digit() {
            return Some(line[start..j].to_string());
        }
    }
    None
}

/// Lock acquisitions on a line: `(column, class)` for both the
/// workspace's `lock(expr)` helper idiom and method-style `x.lock()`.
fn find_locks(line: &str) -> Vec<(usize, String)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = line[i..].find("lock(") {
        let p = i + pos;
        i = p + 5;
        if p > 0 && (is_ident(bytes[p - 1]) || bytes[p - 1] == b'.') {
            continue; // `.lock(`, `try_lock(`, `unlock(` are not the helper
        }
        if line[..p].trim_end().ends_with("fn") {
            continue; // the helper's own definition
        }
        let mut depth = 1u32;
        let mut j = p + 5;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let end = if depth == 0 { j - 1 } else { j };
        if let Some(class) = class_of_expr(&line[p + 5..end]) {
            out.push((p, class));
        }
    }
    let mut i = 0;
    while let Some(pos) = line[i..].find(".lock()") {
        let p = i + pos;
        i = p + 7;
        let mut s = p;
        while s > 0 && (is_ident(bytes[s - 1]) || bytes[s - 1] == b'.') {
            s -= 1;
        }
        if s < p {
            if let Some(class) = class_of_expr(&line[s..p]) {
                out.push((p, class));
            }
        }
    }
    out.sort();
    out
}

/// Calls on a line to functions defined in the same crate, resolved by
/// bare name. The `lock` helper is modeled as a direct acquisition, not
/// a call.
fn find_calls(line: &str, known: &BTreeSet<String>) -> Vec<(usize, String)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        if start > 0 && is_ident(bytes[start - 1]) {
            continue;
        }
        let ident = &line[start..i];
        if ident == "append" && i < bytes.len() && bytes[i] == b'(' {
            // `OpenOptions::append(true)` is the file-open builder
            // flag, not a log append: a bool argument is never a
            // record.
            let rest = line[i + 1..].trim_start();
            if rest.starts_with("true") || rest.starts_with("false") {
                continue;
            }
        }
        if i < bytes.len()
            && bytes[i] == b'('
            && ident != "lock"
            && known.contains(ident)
            && !line[..start].trim_end().ends_with("fn")
        {
            out.push((start, ident.to_string()));
        }
    }
    out
}

/// `drop(var)` sites: `(column, variable)`.
fn find_drops(line: &str) -> Vec<(usize, String)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = line[i..].find("drop(") {
        let p = i + pos;
        i = p + 5;
        if p > 0 && (is_ident(bytes[p - 1]) || bytes[p - 1] == b'.') {
            continue;
        }
        let var: String = line[p + 5..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !var.is_empty() {
            out.push((p, var));
        }
    }
    out
}

/// Blocking/transport needles: the call shapes a lock must not be held
/// across. `Condvar` waits release the guard, so `.wait(`/`.wait_timeout(`
/// are deliberately absent.
const BLOCKING: &[(&str, &str)] = &[
    (".submit(", "transport submit"),
    ("transport.drain(", "transport drain"),
    (".send(", "blocking send"),
    (".recv(", "blocking receive"),
    (".join(", "thread join"),
    ("thread::sleep", "sleep"),
];

/// First blocking needle on the line, skipping the simulator's virtual
/// `ctx.send` hop and string `join(", ")`-style calls.
fn find_blocking(line: &str) -> Option<(usize, &'static str)> {
    let mut best: Option<(usize, &'static str)> = None;
    for (needle, what) in BLOCKING {
        let mut i = 0;
        while let Some(pos) = line[i..].find(needle) {
            let p = i + pos;
            i = p + needle.len();
            if *needle == ".send(" {
                // `ctx.send` is the simulator's virtual hop — it
                // enqueues an event, it cannot block.
                let bytes = line.as_bytes();
                let mut s = p;
                while s > 0 && is_ident(bytes[s - 1]) {
                    s -= 1;
                }
                if &line[s..p] == "ctx" {
                    continue;
                }
            }
            if *needle == ".join(" {
                // `parts.join(", ")` is string/slice concatenation.
                let rest = line[p + needle.len()..].trim_start();
                if rest.starts_with('"') {
                    continue;
                }
            }
            if best.is_none_or(|(bp, _)| p < bp) {
                best = Some((p, what));
            }
            break;
        }
    }
    best
}

#[derive(Debug, PartialEq)]
enum GuardKind {
    /// `let g = lock(..)`: lives until the enclosing block closes or an
    /// explicit `drop(g)`.
    Let,
    /// `for`/`while`/`if`/`match` head: the guard temporary lives
    /// through the whole construct.
    Block,
}

#[derive(Debug)]
struct Guard {
    class: String,
    kind: GuardKind,
    block_depth: i32,
    var: Option<String>,
}

#[derive(Debug)]
struct Edge {
    from: String,
    to: String,
    line: usize,
}

#[derive(Debug)]
struct CallSite {
    callee: String,
    line: usize,
    held: Vec<String>,
}

#[derive(Debug)]
struct BlockSite {
    what: &'static str,
    line: usize,
    held: Vec<String>,
}

#[derive(Debug)]
struct FnInfo {
    name: String,
    file: usize,
    locks: Vec<(String, usize)>,
    edges: Vec<Edge>,
    calls: Vec<CallSite>,
    blocking: Vec<BlockSite>,
}

/// The binding shape at a lock site decides the guard's lifetime.
fn guard_kind(prefix: &str) -> Option<(GuardKind, Option<String>)> {
    if ["for ", "while ", "if ", "match "]
        .iter()
        .any(|k| prefix.contains(k))
    {
        return Some((GuardKind::Block, None));
    }
    let let_pos = prefix.rfind("let ")?;
    let after = prefix[let_pos + 4..].trim_start();
    let after = after.strip_prefix("mut ").unwrap_or(after);
    let var: String = after
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    Some((GuardKind::Let, (!var.is_empty()).then_some(var)))
}

/// Parses every function body in `file` into lock/call/blocking
/// summaries, tracking guard scopes by brace depth.
fn parse_functions(file: &SourceFile, file_idx: usize, known: &BTreeSet<String>) -> Vec<FnInfo> {
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut pending: Option<String> = None;
    let mut current: Option<(FnInfo, i32, Vec<Guard>)> = None;

    enum Ev {
        Lock(String),
        Drop(String),
        Call(String),
        Blocking(&'static str),
    }

    for (idx, line) in file.lines.iter().enumerate() {
        let ln = idx + 1;
        let masked = file.test_mask.get(idx).copied().unwrap_or(false);
        if !masked && current.is_none() && pending.is_none() {
            pending = fn_decl_name(line);
        }

        // Semantic events at their columns, interleaved with the brace
        // scan below so guard scopes and same-line releases are
        // positionally exact.
        let mut events: Vec<(usize, Ev)> = Vec::new();
        if !masked {
            for (col, class) in find_locks(line) {
                events.push((col, Ev::Lock(class)));
            }
            for (col, var) in find_drops(line) {
                events.push((col, Ev::Drop(var)));
            }
            for (col, callee) in find_calls(line, known) {
                events.push((col, Ev::Call(callee)));
            }
            if let Some((col, what)) = find_blocking(line) {
                events.push((col, Ev::Blocking(what)));
            }
            events.sort_by_key(|(col, _)| *col);
        }

        let mut line_temps: Vec<String> = Vec::new();
        let mut ei = 0;
        for (ci, b) in line.bytes().enumerate() {
            // Events fire at their column, before any brace that follows
            // them on the line.
            while ei < events.len() && events[ei].0 == ci {
                if let Some((info, _, guards)) = current.as_mut() {
                    match &events[ei].1 {
                        Ev::Lock(class) => {
                            for g in guards.iter() {
                                info.edges.push(Edge {
                                    from: g.class.clone(),
                                    to: class.clone(),
                                    line: ln,
                                });
                            }
                            for t in &line_temps {
                                info.edges.push(Edge {
                                    from: t.clone(),
                                    to: class.clone(),
                                    line: ln,
                                });
                            }
                            info.locks.push((class.clone(), ln));
                            match guard_kind(&line[..ci]) {
                                Some((kind, var)) => guards.push(Guard {
                                    class: class.clone(),
                                    kind,
                                    // The scope the binding belongs to is
                                    // the one open at its column.
                                    block_depth: depth,
                                    var,
                                }),
                                None => line_temps.push(class.clone()),
                            }
                        }
                        Ev::Drop(var) => {
                            guards.retain(|g| g.var.as_deref() != Some(var.as_str()));
                        }
                        Ev::Call(callee) => info.calls.push(CallSite {
                            callee: callee.clone(),
                            line: ln,
                            held: guards.iter().map(|g| g.class.clone()).collect(),
                        }),
                        Ev::Blocking(what) => info.blocking.push(BlockSite {
                            what,
                            line: ln,
                            held: guards.iter().map(|g| g.class.clone()).collect(),
                        }),
                    }
                }
                ei += 1;
            }
            match b {
                b'{' => {
                    depth += 1;
                    if current.is_none() {
                        if let Some(name) = pending.take() {
                            current = Some((
                                FnInfo {
                                    name,
                                    file: file_idx,
                                    locks: Vec::new(),
                                    edges: Vec::new(),
                                    calls: Vec::new(),
                                    blocking: Vec::new(),
                                },
                                depth,
                                Vec::new(),
                            ));
                        }
                    }
                }
                b'}' => {
                    depth -= 1;
                    if let Some((_, body_depth, guards)) = current.as_mut() {
                        // A closing brace ends every scope opened at or
                        // below it: `let` guards die with their block,
                        // construct-head guards with their construct.
                        guards.retain(|g| match g.kind {
                            GuardKind::Let => depth >= g.block_depth,
                            GuardKind::Block => depth > g.block_depth,
                        });
                        if depth < *body_depth {
                            let (info, _, _) = current.take().expect("current checked above");
                            out.push(info);
                        }
                    }
                }
                b';' if current.is_none() => pending = None, // trait method decl
                _ => {}
            }
        }
        // A construct-head guard whose construct opened and closed on
        // this line dies with it; bare temporaries never outlive a line.
        if let Some((_, _, guards)) = current.as_mut() {
            guards.retain(|g| match g.kind {
                GuardKind::Let => depth >= g.block_depth,
                GuardKind::Block => depth > g.block_depth,
            });
        }
    }
    if let Some((info, _, _)) = current.take() {
        out.push(info);
    }
    out
}

/// Every `fn` name declared outside test regions, per file set.
fn known_fns(files: &[&SourceFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in files {
        for (idx, line) in file.lines.iter().enumerate() {
            if file.test_mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            if let Some(name) = fn_decl_name(line) {
                out.insert(name);
            }
        }
    }
    out
}

/// An ordered-acquisition edge in the per-crate class graph.
#[derive(Debug, Clone)]
struct EdgeInfo {
    file: String,
    line: usize,
    via: Option<String>,
}

fn needle_has_boundary(line: &str, pos: usize) -> bool {
    pos == 0 || !is_ident(line.as_bytes()[pos - 1])
}

/// Enumerates simple cycles whose lexicographically smallest class is
/// `start` (each cycle reported once), capped for sanity.
fn cycles_from(
    start: &str,
    cur: &str,
    adj: &BTreeMap<String, BTreeMap<String, EdgeInfo>>,
    path: &mut Vec<String>,
    on_path: &mut BTreeSet<String>,
    out: &mut Vec<Vec<String>>,
) {
    if out.len() >= 16 {
        return;
    }
    let Some(nexts) = adj.get(cur) else {
        return;
    };
    for next in nexts.keys() {
        if next.as_str() < start {
            continue;
        }
        if next == start {
            out.push(path.clone());
            continue;
        }
        if on_path.contains(next) {
            continue;
        }
        path.push(next.clone());
        on_path.insert(next.clone());
        cycles_from(start, next, adj, path, on_path, out);
        path.pop();
        on_path.remove(next);
    }
}

/// Runs the concurrency pass over one crate's files.
fn check_crate(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // A crate is "threaded" when its library code spawns or scopes
    // threads; the shared-state rules only apply there.
    let threaded = files.iter().any(|f| {
        f.lines.iter().enumerate().any(|(idx, line)| {
            !f.test_mask.get(idx).copied().unwrap_or(false)
                && (line.contains("thread::spawn") || line.contains("thread::scope"))
        })
    });

    // Per-line scans: unbounded channels (W133) and unsynchronized
    // shared state (E134).
    for file in files {
        for (idx, line) in file.lines.iter().enumerate() {
            if file.test_mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let ln = idx + 1;
            for needle in ["mpsc::channel", "unbounded("] {
                let Some(pos) = line.find(needle) else {
                    continue;
                };
                // `mpsc::channel` may continue with a turbofish; it must
                // not be a longer identifier (e.g. `sync_channel`).
                let end = pos + needle.len();
                if line.as_bytes().get(end).copied().is_some_and(is_ident)
                    || !needle_has_boundary(line, pos)
                    || file.allows(codes::CONC_UNBOUNDED_CHANNEL, ln)
                {
                    continue;
                }
                out.push(
                    Diagnostic::warning(
                        codes::CONC_UNBOUNDED_CHANNEL,
                        format!("{}:{ln}", file.display_path),
                        format!("channel constructed without a capacity bound: `{needle}..`"),
                    )
                    .with_help(
                        "a producer can outrun its consumer without ever seeing \
                         backpressure; use a bounded channel (sync_channel) sized \
                         like the transport mailboxes",
                    ),
                );
                break;
            }
            let shared_state: &[&str] = if threaded {
                &["static mut ", "Rc<", "RefCell<", "Cell<"]
            } else {
                &["static mut "]
            };
            let in_thread_local = file.thread_local_mask.get(idx).copied().unwrap_or(false);
            for needle in shared_state {
                if in_thread_local && *needle != "static mut " {
                    continue; // thread-locals are per-thread by construction
                }
                let Some(pos) = line.find(needle) else {
                    continue;
                };
                if !needle_has_boundary(line, pos)
                    || file.allows(codes::CONC_UNSYNC_SHARED_STATE, ln)
                {
                    continue;
                }
                out.push(
                    Diagnostic::error(
                        codes::CONC_UNSYNC_SHARED_STATE,
                        format!("{}:{ln}", file.display_path),
                        format!(
                            "unsynchronized shared mutable state in a thread-spawning \
                             crate: `{}`",
                            needle.trim_end()
                        ),
                    )
                    .with_help(
                        "worker threads can reach this without a lock: use \
                         Arc<Mutex<..>>/atomics, or keep it inside thread_local!",
                    ),
                );
                break;
            }
        }
    }

    // Function-level lock model.
    let known = known_fns(files);
    let mut fns: Vec<FnInfo> = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        fns.extend(parse_functions(file, file_idx, &known));
    }

    // Fixpoint: per-name acquisition sets and blocking reachability,
    // propagated through same-crate calls (same-named fns are unioned —
    // conservative, never misses an order).
    let mut acquires: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut blocks: BTreeMap<String, &'static str> = BTreeMap::new();
    for f in &fns {
        let entry = acquires.entry(f.name.clone()).or_default();
        entry.extend(f.locks.iter().map(|(c, _)| c.clone()));
        if let Some(b) = f.blocking.first() {
            blocks.entry(f.name.clone()).or_insert(b.what);
        }
    }
    for _ in 0..32 {
        let mut changed = false;
        for f in &fns {
            for call in &f.calls {
                let from_callee: Option<BTreeSet<String>> = acquires.get(&call.callee).cloned();
                if let Some(set) = from_callee {
                    let entry = acquires.entry(f.name.clone()).or_default();
                    for c in set {
                        changed |= entry.insert(c);
                    }
                }
                if let Some(&what) = blocks.get(&call.callee) {
                    if !blocks.contains_key(&f.name) {
                        blocks.insert(f.name.clone(), what);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // The class order graph: direct edges plus call-mediated ones.
    let mut adj: BTreeMap<String, BTreeMap<String, EdgeInfo>> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, info: EdgeInfo| {
        adj.entry(from.to_string())
            .or_default()
            .entry(to.to_string())
            .or_insert(info);
    };
    for f in &fns {
        let path = &files[f.file].display_path;
        for e in &f.edges {
            add_edge(
                &e.from,
                &e.to,
                EdgeInfo {
                    file: path.clone(),
                    line: e.line,
                    via: None,
                },
            );
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(acq) = acquires.get(&call.callee) else {
                continue;
            };
            for h in &call.held {
                for c in acq {
                    add_edge(
                        h,
                        c,
                        EdgeInfo {
                            file: path.clone(),
                            line: call.line,
                            via: Some(call.callee.clone()),
                        },
                    );
                }
            }
        }
    }

    // E130: cycles in the class order graph.
    let by_path: BTreeMap<&str, &SourceFile> = files
        .iter()
        .map(|f| (f.display_path.as_str(), *f))
        .collect();
    let mut found_cycles = Vec::new();
    for start in adj.keys() {
        let mut path = vec![start.clone()];
        let mut on_path: BTreeSet<String> = [start.clone()].into_iter().collect();
        cycles_from(
            start,
            start,
            &adj,
            &mut path,
            &mut on_path,
            &mut found_cycles,
        );
    }
    for cycle in found_cycles {
        let mut sites = Vec::new();
        let mut best: Option<(&str, usize)> = None;
        for i in 0..cycle.len() {
            let from = &cycle[i];
            let to = &cycle[(i + 1) % cycle.len()];
            let info = &adj[from][to];
            let via = info
                .via
                .as_ref()
                .map(|v| format!(" via `{v}`"))
                .unwrap_or_default();
            sites.push(format!(
                "`{from}` -> `{to}` at {}:{}{via}",
                info.file, info.line
            ));
            let key = (info.file.as_str(), info.line);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (file, line) = best.expect("cycle has at least one edge");
        let suppressed = cycle.iter().enumerate().any(|(i, from)| {
            let to = &cycle[(i + 1) % cycle.len()];
            let info = &adj[from][to];
            by_path
                .get(info.file.as_str())
                .is_some_and(|f| f.allows(codes::CONC_LOCK_ORDER_CYCLE, info.line))
        });
        if suppressed {
            continue;
        }
        let ring = cycle
            .iter()
            .chain(cycle.first())
            .map(|c| format!("`{c}`"))
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push(
            Diagnostic::error(
                codes::CONC_LOCK_ORDER_CYCLE,
                format!("{file}:{line}"),
                format!("lock-order cycle {ring}: {}", sites.join("; ")),
            )
            .with_help(
                "two threads taking these paths deadlock holding one lock \
                 each; pick one global acquisition order (or drop the first \
                 guard before taking the second)",
            ),
        );
    }

    // E132: a guard held across a blocking call, directly or through a
    // same-crate call that (transitively) blocks.
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for f in &fns {
        let file = files[f.file];
        for b in &f.blocking {
            if b.held.is_empty() || !reported.insert((f.file, b.line)) {
                continue;
            }
            if file.allows(codes::CONC_LOCK_ACROSS_BLOCKING, b.line) {
                continue;
            }
            out.push(
                Diagnostic::error(
                    codes::CONC_LOCK_ACROSS_BLOCKING,
                    format!("{}:{}", file.display_path, b.line),
                    format!("{} while holding lock `{}`", b.what, b.held.join("`, `")),
                )
                .with_help(
                    "every thread contending for this lock stalls behind the \
                     call; release the guard first (drop it or narrow its block)",
                ),
            );
        }
        for call in &f.calls {
            if call.held.is_empty() || !reported.insert((f.file, call.line)) {
                continue;
            }
            let Some(&what) = blocks.get(&call.callee) else {
                continue;
            };
            if file.allows(codes::CONC_LOCK_ACROSS_BLOCKING, call.line) {
                continue;
            }
            out.push(
                Diagnostic::error(
                    codes::CONC_LOCK_ACROSS_BLOCKING,
                    format!("{}:{}", file.display_path, call.line),
                    format!(
                        "call to `{}` (which performs a {}) while holding lock `{}`",
                        call.callee,
                        what,
                        call.held.join("`, `")
                    ),
                )
                .with_help(
                    "every thread contending for this lock stalls behind the \
                     call; release the guard first (drop it or narrow its block)",
                ),
            );
        }
    }

    out
}

/// Runs the Layer-3 concurrency pass over a set of parsed files,
/// grouping them per crate (lock classes and call resolution never
/// cross crate boundaries).
pub fn check_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut by_crate: BTreeMap<&str, Vec<&SourceFile>> = BTreeMap::new();
    for f in files {
        by_crate.entry(f.crate_name.as_str()).or_default().push(f);
    }
    let mut out = Vec::new();
    for group in by_crate.values() {
        out.extend(check_crate(group));
    }
    out
}

/// Parses and checks every `crates/**/src/**/*.rs` under
/// `workspace_root`.
pub fn check_workspace(workspace_root: &Path) -> Vec<Diagnostic> {
    check_files(&load_workspace(workspace_root))
}

/// Checks one file's source — the fixture-test entry point.
pub fn check_source(display_path: &str, crate_name: &str, source: &str) -> Vec<Diagnostic> {
    check_files(&[SourceFile::parse(display_path, crate_name, source)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_in(found: &[Diagnostic]) -> Vec<&'static str> {
        found.iter().map(|d| d.code).collect()
    }

    const HELPER: &str =
        "use std::sync::{Mutex, MutexGuard};\n\
         fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap_or_else(|e| e.into_inner()) }\n";

    #[test]
    fn opposite_acquisition_orders_are_a_cycle() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32>, b: Mutex<u32> }}\n\
             impl S {{\n\
                 fn forward(&self) {{\n\
                     let ga = lock(&self.a);\n\
                     let gb = lock(&self.b);\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }}\n\
                 fn backward(&self) {{\n\
                     let gb = lock(&self.b);\n\
                     let ga = lock(&self.a);\n\
                     drop(ga);\n\
                     drop(gb);\n\
                 }}\n\
             }}\n"
        );
        let found = check_source("crates/live/src/x.rs", "live", &src);
        assert_eq!(
            codes_in(&found),
            vec![codes::CONC_LOCK_ORDER_CYCLE],
            "{found:#?}"
        );
        assert!(found[0].message.contains("`a` -> `b`"), "{found:#?}");
        assert!(found[0].message.contains("`b` -> `a`"), "{found:#?}");
    }

    #[test]
    fn call_mediated_cycle_is_found() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32>, b: Mutex<u32> }}\n\
             impl S {{\n\
                 fn forward(&self) {{\n\
                     let ga = lock(&self.a);\n\
                     self.takes_b();\n\
                     drop(ga);\n\
                 }}\n\
                 fn takes_b(&self) {{\n\
                     let _gb = lock(&self.b);\n\
                 }}\n\
                 fn backward(&self) {{\n\
                     let gb = lock(&self.b);\n\
                     let ga = lock(&self.a);\n\
                     drop(ga);\n\
                     drop(gb);\n\
                 }}\n\
             }}\n"
        );
        let found = check_source("crates/live/src/x.rs", "live", &src);
        assert_eq!(
            codes_in(&found),
            vec![codes::CONC_LOCK_ORDER_CYCLE],
            "{found:#?}"
        );
        assert!(found[0].message.contains("via `takes_b`"), "{found:#?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32>, b: Mutex<u32> }}\n\
             impl S {{\n\
                 fn one(&self) {{ let ga = lock(&self.a); let _gb = lock(&self.b); drop(ga); }}\n\
                 fn two(&self) {{ let ga = lock(&self.a); let _gb = lock(&self.b); drop(ga); }}\n\
             }}\n"
        );
        assert!(check_source("crates/live/src/x.rs", "live", &src).is_empty());
    }

    #[test]
    fn drop_releases_the_guard_before_the_second_lock() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32>, b: Mutex<u32> }}\n\
             impl S {{\n\
                 fn fwd(&self) {{ let ga = lock(&self.a); drop(ga); let _gb = lock(&self.b); }}\n\
                 fn bwd(&self) {{ let gb = lock(&self.b); drop(gb); let _ga = lock(&self.a); }}\n\
             }}\n"
        );
        assert!(check_source("crates/live/src/x.rs", "live", &src).is_empty());
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<Vec<u8>>, b: Mutex<u32> }}\n\
             impl S {{\n\
                 fn fwd(&self) {{\n\
                     {{ let _ga = lock(&self.a); }}\n\
                     let _gb = lock(&self.b);\n\
                 }}\n\
                 fn bwd(&self) {{\n\
                     {{ let _gb = lock(&self.b); }}\n\
                     let _ga = lock(&self.a);\n\
                 }}\n\
             }}\n"
        );
        assert!(check_source("crates/live/src/x.rs", "live", &src).is_empty());
    }

    #[test]
    fn lock_held_across_submit_is_reported() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32> }}\n\
             impl S {{\n\
                 fn bad(&self, t: &dyn Transport, env: Envelope) {{\n\
                     let g = lock(&self.a);\n\
                     let _ = t.submit(env);\n\
                     drop(g);\n\
                 }}\n\
             }}\n"
        );
        let found = check_source("crates/live/src/x.rs", "live", &src);
        assert_eq!(
            codes_in(&found),
            vec![codes::CONC_LOCK_ACROSS_BLOCKING],
            "{found:#?}"
        );
        assert!(found[0].message.contains("`a`"), "{found:#?}");
    }

    #[test]
    fn submit_after_guard_release_is_clean() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32> }}\n\
             impl S {{\n\
                 fn good(&self, t: &dyn Transport, env: Envelope) {{\n\
                     {{ let _g = lock(&self.a); }}\n\
                     let _ = t.submit(env);\n\
                 }}\n\
             }}\n"
        );
        assert!(check_source("crates/live/src/x.rs", "live", &src).is_empty());
    }

    #[test]
    fn condvar_wait_is_not_blocking() {
        // Condvar::wait releases the guard — the QueryService shutdown
        // idiom must stay clean.
        let src = format!(
            "{HELPER}\
             struct S {{ in_flight: Mutex<usize>, idle: Condvar }}\n\
             impl S {{\n\
                 fn shutdown(&self) {{\n\
                     let mut n = lock(&self.in_flight);\n\
                     while *n > 0 {{\n\
                         n = self.idle.wait(n).unwrap_or_else(|e| e.into_inner());\n\
                     }}\n\
                 }}\n\
             }}\n"
        );
        assert!(check_source("crates/live/src/x.rs", "live", &src).is_empty());
    }

    #[test]
    fn transitively_blocking_call_under_lock_is_reported() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32> }}\n\
             impl S {{\n\
                 fn flush(&self, t: &dyn Transport, env: Envelope) {{\n\
                     let _ = t.submit(env);\n\
                 }}\n\
                 fn bad(&self, t: &dyn Transport, env: Envelope) {{\n\
                     let g = lock(&self.a);\n\
                     self.flush(t, env);\n\
                     drop(g);\n\
                 }}\n\
             }}\n"
        );
        let found = check_source("crates/live/src/x.rs", "live", &src);
        assert_eq!(
            codes_in(&found),
            vec![codes::CONC_LOCK_ACROSS_BLOCKING],
            "{found:#?}"
        );
        assert!(found[0].message.contains("`flush`"), "{found:#?}");
    }

    #[test]
    fn openoptions_append_builder_is_not_a_log_append() {
        // `OpenOptions::append(true)` must not resolve to a same-crate
        // `fn append` that blocks: the bool flag is a builder, not a
        // record write.
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32> }}\n\
             impl S {{\n\
                 fn append(&self, t: &dyn Transport, env: Envelope) {{\n\
                     let _ = t.submit(env);\n\
                 }}\n\
                 fn reopen(&self) {{\n\
                     let g = lock(&self.a);\n\
                     let f = std::fs::OpenOptions::new().append(true).open(\"w\");\n\
                     drop(g);\n\
                 }}\n\
             }}\n"
        );
        let found = check_source("crates/store/src/x.rs", "store", &src);
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn unbounded_channel_is_warned_and_suppressible() {
        let src = "fn wire() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }\n";
        let found = check_source("crates/util/src/x.rs", "util", src);
        assert_eq!(
            codes_in(&found),
            vec![codes::CONC_UNBOUNDED_CHANNEL],
            "{found:#?}"
        );
        let allowed = format!("// lint: allow(W133 test-only control channel)\n{src}");
        assert!(check_source("crates/util/src/x.rs", "util", &allowed).is_empty());
    }

    #[test]
    fn shared_state_rules_apply_only_to_threaded_crates() {
        let src = "fn run() { std::thread::spawn(|| {}); }\n\
                   struct C { cache: RefCell<u32> }\n";
        let found = check_source("crates/live/src/x.rs", "live", src);
        assert_eq!(
            codes_in(&found),
            vec![codes::CONC_UNSYNC_SHARED_STATE],
            "{found:#?}"
        );
        // The same cell in a single-threaded crate is fine.
        let solo = "struct C { cache: RefCell<u32> }\n";
        assert!(check_source("crates/store/src/x.rs", "store", solo).is_empty());
        // thread_local! is per-thread by construction.
        let tls = "fn run() { std::thread::spawn(|| {}); }\n\
                   thread_local! {\n    static S: RefCell<u32> = RefCell::new(0);\n}\n";
        assert!(check_source("crates/live/src/x.rs", "live", tls).is_empty());
    }

    #[test]
    fn static_mut_is_always_an_error() {
        let src = "static mut COUNTER: u64 = 0;\n";
        let found = check_source("crates/store/src/x.rs", "store", src);
        assert_eq!(
            codes_in(&found),
            vec![codes::CONC_UNSYNC_SHARED_STATE],
            "{found:#?}"
        );
    }

    #[test]
    fn cycle_suppression_via_directive() {
        let src = format!(
            "{HELPER}\
             struct S {{ a: Mutex<u32>, b: Mutex<u32> }}\n\
             impl S {{\n\
                 fn forward(&self) {{\n\
                     let ga = lock(&self.a);\n\
                     // lint: allow(E130 startup-only path, never concurrent with backward)\n\
                     let gb = lock(&self.b);\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }}\n\
                 fn backward(&self) {{\n\
                     let gb = lock(&self.b);\n\
                     let ga = lock(&self.a);\n\
                     drop(ga);\n\
                     drop(gb);\n\
                 }}\n\
             }}\n"
        );
        assert!(check_source("crates/live/src/x.rs", "live", &src).is_empty());
    }

    #[test]
    fn workspace_is_concurrency_clean() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let findings = check_workspace(&root);
        assert!(
            findings.is_empty(),
            "workspace must be concurrency-clean:\n{}",
            crate::diagnostic::render_human(&findings)
        );
    }
}
