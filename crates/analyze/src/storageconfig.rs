//! Durable-storage configuration checks.
//!
//! The live service can anchor its state (liability ledgers, epochs,
//! in-flight query intents) in a WAL + checkpoint on disk
//! (`edgelet-store::wal`, `docs/STORAGE.md`). Three configurations
//! deserve a diagnostic before the first append:
//!
//! * `E140` — durability is enabled but the WAL directory is unset or
//!   unwritable: the first append would drain the service to read-only
//!   before it served anything;
//! * `W141` — a checkpoint interval of zero: the WAL is never
//!   compacted, so it grows without bound and every restart replays the
//!   service's entire history;
//! * `W142` — durability is *disabled* while the configuration plans
//!   for crashes (a crash-probability presumption, a crash-injecting
//!   fault plan, or a scripted `--crash-at`): every crash the plan
//!   provokes loses state the operator apparently cares about;
//! * `W143` — the group-commit window is a large share of the query's
//!   wall-deadline slack: every durable submit parks in the commit
//!   window before its sync, so a window the deadline cannot absorb
//!   turns coalescing into missed deadlines;
//! * `W144` — the WAL segment size is below one checkpoint interval's
//!   worth of append churn: the log rotates multiple times between
//!   checkpoints, paying seal/open costs without any compaction gain
//!   (sealed segments can only be deleted at a checkpoint).

use crate::diagnostic::{codes, Diagnostic};
use edgelet_sim::{FaultAction, FaultPlan};
use std::path::Path;

/// True when a fault plan contains crash-injecting rules
/// (`CrashSender`/`CrashReceiver`) — the condition under which running
/// without durability forfeits state by design (`W142`).
pub fn fault_plan_has_crashes(plan: &FaultPlan) -> bool {
    plan.rules.iter().any(|r| {
        matches!(
            r.action,
            FaultAction::CrashSender | FaultAction::CrashReceiver
        )
    })
}

/// Probes that `dir` exists (creating it if needed) and accepts writes,
/// the way [`edgelet_store::FileBackend`] will. Returns the failure as
/// a human-readable string.
fn probe_writable(dir: &Path) -> Result<(), String> {
    if dir.as_os_str().is_empty() {
        return Err("path is empty".into());
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Err(format!("cannot create directory: {e}"));
    }
    let probe = dir.join(".edgelet-wal-probe");
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(e) => Err(format!("cannot write in directory: {e}")),
    }
}

/// Ballpark framed bytes one completion record occupies in the WAL,
/// used to translate a checkpoint cadence into expected append churn
/// for the `W144` rotation-thrash check.
const TYPICAL_RECORD_BYTES: u64 = 4096;

/// How many commit windows the wall deadline must be able to absorb
/// before `W143` stays quiet: a durable submit can park in the window
/// twice (intent + completion), and the query itself needs the rest.
const WINDOW_SLACK_FACTOR: u64 = 4;

/// Checks a durable-storage configuration: whether durability is
/// enabled, the WAL directory, the checkpoint cadence (completions per
/// checkpoint; 0 = never), and whether the wider configuration plans
/// for crashes. The group-commit knobs (`commit_window_ms`,
/// `segment_bytes`) are checked against the query wall deadline and the
/// checkpoint cadence; pass 0 to mean "feature off" for either.
pub fn check_storage_config(
    durable: bool,
    wal_dir: Option<&Path>,
    checkpoint_every: u64,
    crash_risk: bool,
    commit_window_ms: u64,
    wall_deadline_ms: Option<u64>,
    segment_bytes: u64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if durable {
        match wal_dir {
            None => out.push(
                Diagnostic::error(
                    codes::STORAGE_WAL_DIR,
                    "storage.wal_dir",
                    "durability is enabled but no WAL directory is set: the \
                     service has nowhere to anchor its log",
                )
                .with_help("pass --wal-dir <dir>, or drop --durable"),
            ),
            Some(dir) => {
                if let Err(why) = probe_writable(dir) {
                    out.push(
                        Diagnostic::error(
                            codes::STORAGE_WAL_DIR,
                            "storage.wal_dir",
                            format!(
                                "WAL directory `{}` is unusable ({why}): the first \
                                 append would drain the service to read-only",
                                dir.display()
                            ),
                        )
                        .with_help("point --wal-dir at a writable directory"),
                    );
                }
            }
        }
        if checkpoint_every == 0 {
            out.push(
                Diagnostic::warning(
                    codes::STORAGE_NO_CHECKPOINT,
                    "storage.checkpoint_every",
                    "checkpoint interval is 0 (never): the WAL is never compacted, \
                     so it grows without bound and every restart replays the \
                     service's entire history",
                )
                .with_help("set --checkpoint-every to a small positive count (default 8)"),
            );
        }
        if commit_window_ms > 0 {
            if let Some(deadline) = wall_deadline_ms.filter(|&d| d > 0) {
                if commit_window_ms.saturating_mul(WINDOW_SLACK_FACTOR) > deadline {
                    out.push(
                        Diagnostic::warning(
                            codes::STORAGE_WINDOW_OVER_DEADLINE,
                            "storage.commit_window",
                            format!(
                                "the {commit_window_ms} ms group-commit window is more \
                                 than 1/{WINDOW_SLACK_FACTOR} of the {deadline} ms wall \
                                 deadline: durable submits park in the window before \
                                 every sync, leaving too little slack for the query \
                                 itself"
                            ),
                        )
                        .with_help(
                            "shrink --commit-window-ms, raise --wall-deadline-ms, or \
                             rely on byte-triggered flushes (window 0)",
                        ),
                    );
                }
            }
        }
        if segment_bytes > 0 && checkpoint_every > 0 {
            let churn = checkpoint_every.saturating_mul(TYPICAL_RECORD_BYTES);
            if segment_bytes < churn {
                out.push(
                    Diagnostic::warning(
                        codes::STORAGE_SEGMENT_THRASH,
                        "storage.segment_bytes",
                        format!(
                            "WAL segments of {segment_bytes} B are smaller than one \
                             checkpoint interval's append churn (~{churn} B at \
                             {checkpoint_every} completions x {TYPICAL_RECORD_BYTES} B): \
                             the log rotates repeatedly between checkpoints, paying \
                             seal/open costs with no compaction gain"
                        ),
                    )
                    .with_help(
                        "raise --segment-bytes above the per-checkpoint churn, or \
                         checkpoint more often",
                    ),
                );
            }
        }
    } else if crash_risk {
        out.push(
            Diagnostic::warning(
                codes::STORAGE_VOLATILE_UNDER_CRASHES,
                "storage.durable",
                "the configuration plans for crashes (crash probability, \
                 crash-injecting fault rules, or a scripted crash point) but \
                 durability is disabled: every crash loses ledgers, epochs, \
                 and in-flight queries",
            )
            .with_help("enable --durable with a --wal-dir to make crashes recoverable"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use edgelet_sim::{FaultPlan, FaultRule};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "edgelet-storageconfig-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_wal_dir_is_an_error() {
        let found = check_storage_config(true, None, 8, false, 0, None, 0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::STORAGE_WAL_DIR);
        assert_eq!(found[0].severity, Severity::Error);
    }

    #[test]
    fn writable_dir_is_created_and_accepted() {
        let dir = tmp_dir("ok");
        let found = check_storage_config(true, Some(&dir), 8, false, 0, None, 0);
        assert!(found.is_empty(), "{found:?}");
        assert!(dir.is_dir(), "the probe must have created the directory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_wal_dir_is_an_error() {
        // A regular file where the directory should be.
        let dir = tmp_dir("file");
        std::fs::write(&dir, b"not a directory").unwrap();
        let found = check_storage_config(true, Some(&dir), 8, false, 0, None, 0);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::STORAGE_WAL_DIR);
        assert!(found[0].message.contains("unusable"), "{found:?}");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn zero_checkpoint_interval_warns() {
        let dir = tmp_dir("ckpt");
        let found = check_storage_config(true, Some(&dir), 0, false, 0, None, 0);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::STORAGE_NO_CHECKPOINT);
        assert_eq!(found[0].severity, Severity::Warning);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn volatile_under_crash_risk_warns() {
        let found = check_storage_config(false, None, 8, true, 0, None, 0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::STORAGE_VOLATILE_UNDER_CRASHES);
        assert_eq!(found[0].severity, Severity::Warning);
        assert!(check_storage_config(false, None, 8, false, 0, None, 0).is_empty());
    }

    #[test]
    fn crash_detection_in_fault_plans() {
        assert!(!fault_plan_has_crashes(&FaultPlan::new()));
        let plan = FaultPlan::new().rule(FaultRule::new(FaultAction::Drop));
        assert!(!fault_plan_has_crashes(&plan));
        let plan = plan.rule(FaultRule::new(FaultAction::CrashSender));
        assert!(fault_plan_has_crashes(&plan));
        let plan = FaultPlan::new().rule(FaultRule::new(FaultAction::CrashReceiver));
        assert!(fault_plan_has_crashes(&plan));
    }

    #[test]
    fn oversized_commit_window_warns_against_the_deadline() {
        let dir = tmp_dir("window");
        // 40 ms window x 4 > 100 ms deadline: the slack is gone.
        let found = check_storage_config(true, Some(&dir), 8, false, 40, Some(100), 0);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::STORAGE_WINDOW_OVER_DEADLINE);
        assert_eq!(found[0].severity, Severity::Warning);
        // 10 ms window x 4 <= 100 ms deadline: fine.
        assert!(check_storage_config(true, Some(&dir), 8, false, 10, Some(100), 0).is_empty());
        // No deadline, or window off: nothing to compare against.
        assert!(check_storage_config(true, Some(&dir), 8, false, 40, None, 0).is_empty());
        assert!(check_storage_config(true, Some(&dir), 8, false, 0, Some(100), 0).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undersized_segments_warn_about_rotation_thrash() {
        let dir = tmp_dir("thrash");
        // 8 completions x 4096 B churn = 32 KiB > 1 KiB segments.
        let found = check_storage_config(true, Some(&dir), 8, false, 0, None, 1024);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::STORAGE_SEGMENT_THRASH);
        assert_eq!(found[0].severity, Severity::Warning);
        // A segment that holds a whole interval's churn is fine.
        assert!(check_storage_config(true, Some(&dir), 8, false, 0, None, 1 << 20).is_empty());
        // checkpoint_every = 0 already warns W141; W144 has no cadence
        // to size against and stays quiet.
        let never = check_storage_config(true, Some(&dir), 0, false, 0, None, 1024);
        assert_eq!(never.len(), 1, "{never:?}");
        assert_eq!(never[0].code, codes::STORAGE_NO_CHECKPOINT);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn problems_compose() {
        let found = check_storage_config(true, None, 0, false, 0, None, 0);
        assert_eq!(found.len(), 2);
    }
}
