//! Durable-storage configuration checks.
//!
//! The live service can anchor its state (liability ledgers, epochs,
//! in-flight query intents) in a WAL + checkpoint on disk
//! (`edgelet-store::wal`, `docs/STORAGE.md`). Three configurations
//! deserve a diagnostic before the first append:
//!
//! * `E140` — durability is enabled but the WAL directory is unset or
//!   unwritable: the first append would drain the service to read-only
//!   before it served anything;
//! * `W141` — a checkpoint interval of zero: the WAL is never
//!   compacted, so it grows without bound and every restart replays the
//!   service's entire history;
//! * `W142` — durability is *disabled* while the configuration plans
//!   for crashes (a crash-probability presumption, a crash-injecting
//!   fault plan, or a scripted `--crash-at`): every crash the plan
//!   provokes loses state the operator apparently cares about.

use crate::diagnostic::{codes, Diagnostic};
use edgelet_sim::{FaultAction, FaultPlan};
use std::path::Path;

/// True when a fault plan contains crash-injecting rules
/// (`CrashSender`/`CrashReceiver`) — the condition under which running
/// without durability forfeits state by design (`W142`).
pub fn fault_plan_has_crashes(plan: &FaultPlan) -> bool {
    plan.rules.iter().any(|r| {
        matches!(
            r.action,
            FaultAction::CrashSender | FaultAction::CrashReceiver
        )
    })
}

/// Probes that `dir` exists (creating it if needed) and accepts writes,
/// the way [`edgelet_store::FileBackend`] will. Returns the failure as
/// a human-readable string.
fn probe_writable(dir: &Path) -> Result<(), String> {
    if dir.as_os_str().is_empty() {
        return Err("path is empty".into());
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Err(format!("cannot create directory: {e}"));
    }
    let probe = dir.join(".edgelet-wal-probe");
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(e) => Err(format!("cannot write in directory: {e}")),
    }
}

/// Checks a durable-storage configuration: whether durability is
/// enabled, the WAL directory, the checkpoint cadence (completions per
/// checkpoint; 0 = never), and whether the wider configuration plans
/// for crashes.
pub fn check_storage_config(
    durable: bool,
    wal_dir: Option<&Path>,
    checkpoint_every: u64,
    crash_risk: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if durable {
        match wal_dir {
            None => out.push(
                Diagnostic::error(
                    codes::STORAGE_WAL_DIR,
                    "storage.wal_dir",
                    "durability is enabled but no WAL directory is set: the \
                     service has nowhere to anchor its log",
                )
                .with_help("pass --wal-dir <dir>, or drop --durable"),
            ),
            Some(dir) => {
                if let Err(why) = probe_writable(dir) {
                    out.push(
                        Diagnostic::error(
                            codes::STORAGE_WAL_DIR,
                            "storage.wal_dir",
                            format!(
                                "WAL directory `{}` is unusable ({why}): the first \
                                 append would drain the service to read-only",
                                dir.display()
                            ),
                        )
                        .with_help("point --wal-dir at a writable directory"),
                    );
                }
            }
        }
        if checkpoint_every == 0 {
            out.push(
                Diagnostic::warning(
                    codes::STORAGE_NO_CHECKPOINT,
                    "storage.checkpoint_every",
                    "checkpoint interval is 0 (never): the WAL is never compacted, \
                     so it grows without bound and every restart replays the \
                     service's entire history",
                )
                .with_help("set --checkpoint-every to a small positive count (default 8)"),
            );
        }
    } else if crash_risk {
        out.push(
            Diagnostic::warning(
                codes::STORAGE_VOLATILE_UNDER_CRASHES,
                "storage.durable",
                "the configuration plans for crashes (crash probability, \
                 crash-injecting fault rules, or a scripted crash point) but \
                 durability is disabled: every crash loses ledgers, epochs, \
                 and in-flight queries",
            )
            .with_help("enable --durable with a --wal-dir to make crashes recoverable"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;
    use edgelet_sim::{FaultPlan, FaultRule};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "edgelet-storageconfig-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_wal_dir_is_an_error() {
        let found = check_storage_config(true, None, 8, false);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::STORAGE_WAL_DIR);
        assert_eq!(found[0].severity, Severity::Error);
    }

    #[test]
    fn writable_dir_is_created_and_accepted() {
        let dir = tmp_dir("ok");
        let found = check_storage_config(true, Some(&dir), 8, false);
        assert!(found.is_empty(), "{found:?}");
        assert!(dir.is_dir(), "the probe must have created the directory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_wal_dir_is_an_error() {
        // A regular file where the directory should be.
        let dir = tmp_dir("file");
        std::fs::write(&dir, b"not a directory").unwrap();
        let found = check_storage_config(true, Some(&dir), 8, false);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::STORAGE_WAL_DIR);
        assert!(found[0].message.contains("unusable"), "{found:?}");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn zero_checkpoint_interval_warns() {
        let dir = tmp_dir("ckpt");
        let found = check_storage_config(true, Some(&dir), 0, false);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::STORAGE_NO_CHECKPOINT);
        assert_eq!(found[0].severity, Severity::Warning);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn volatile_under_crash_risk_warns() {
        let found = check_storage_config(false, None, 8, true);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::STORAGE_VOLATILE_UNDER_CRASHES);
        assert_eq!(found[0].severity, Severity::Warning);
        assert!(check_storage_config(false, None, 8, false).is_empty());
    }

    #[test]
    fn crash_detection_in_fault_plans() {
        assert!(!fault_plan_has_crashes(&FaultPlan::new()));
        let plan = FaultPlan::new().rule(FaultRule::new(FaultAction::Drop));
        assert!(!fault_plan_has_crashes(&plan));
        let plan = plan.rule(FaultRule::new(FaultAction::CrashSender));
        assert!(fault_plan_has_crashes(&plan));
        let plan = FaultPlan::new().rule(FaultRule::new(FaultAction::CrashReceiver));
        assert!(fault_plan_has_crashes(&plan));
    }

    #[test]
    fn problems_compose() {
        let found = check_storage_config(true, None, 0, false);
        assert_eq!(found.len(), 2);
    }
}
