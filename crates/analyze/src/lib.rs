//! Static analysis for Edgelet computing.
//!
//! Two layers share one [`Diagnostic`](diagnostic::Diagnostic) model:
//!
//! * [`semantic`] — analyzes a built [`QueryPlan`](edgelet_query::QueryPlan)
//!   plus its privacy/resiliency configuration against the paper's
//!   guarantees: DAG wiring, vertical-partitioning safety, the horizontal
//!   raw-tuple cap, resiliency provisioning vs. the binomial survival
//!   tail, crowd-liability skew, and deadline feasibility. The execution
//!   driver runs the plan-only subset as a deny-by-default
//!   [`preflight`](semantic::preflight); the CLI exposes the full set as
//!   `edgelet analyze`.
//! * [`faultplan`] — checks chaos-harness
//!   [`FaultPlan`](edgelet_sim::FaultPlan)s for rules that cannot fire
//!   (out-of-world targets, empty windows, post-deadline activation,
//!   first-firing-wins shadowing), so a campaign never sweeps a plan
//!   that silently tests nothing.
//! * [`liveconfig`] — preflights `edgelet serve`/`submit` runtime knobs
//!   (worker count, wall-clock deadline vs. the transport floor,
//!   mailbox capacity) before the live runtime spins up threads.
//! * [`storageconfig`] — preflights durable-storage knobs (WAL
//!   directory presence/writability, checkpoint cadence, durability
//!   disabled under crash-planning configurations) before the service's
//!   first append (`E140`/`W141`/`W142`; model in `docs/STORAGE.md`).
//! * [`lint`] — a token-level source scanner that keeps nondeterminism
//!   (default-hasher collections, wall clocks, ambient RNG) and panic
//!   paths out of the deterministic crates. It runs as a tier-1 test and
//!   as the standalone `edgelet-lint` binary for CI.
//! * [`concurrency`] — Layer 3: a cross-crate lock model built on the
//!   same [`scanner`] parse. It reports lock-order cycles (`E130`),
//!   locks held across blocking/transport calls (`E132`), unbounded
//!   channels (`W133`), and unsynchronized shared state in threaded
//!   crates (`E134`).
//! * [`sourcepass`] — runs both source layers in one workspace walk and
//!   audits `lint: allow(..)` directives for staleness (`W131`).
//!
//! Diagnostics carry stable codes (`E0xx`/`W0xx` semantic, `E1xx` lint,
//! `E13x` concurrency) documented in `docs/ANALYZER.md`, and render as
//! compiler-style text or JSON in a deterministic file/line/code order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod diagnostic;
pub mod faultplan;
pub mod lint;
pub mod liveconfig;
pub mod netconfig;
pub mod scanner;
pub mod semantic;
pub mod simconfig;
pub mod sourcepass;
pub mod storageconfig;

#[cfg(test)]
pub(crate) mod testutil;

pub use diagnostic::{
    has_errors, render_human, render_json, sort_diagnostics, Diagnostic, Severity,
};
pub use faultplan::check_fault_plan;
pub use liveconfig::check_live_config;
pub use netconfig::{check_net_config, NetSurface};
pub use semantic::{analyze, analyze_plan, preflight, AnalyzeOptions};
pub use simconfig::check_sim_config;
pub use sourcepass::{analyze_sources, analyze_sources_with, SourcePassOptions};
pub use storageconfig::{check_storage_config, fault_plan_has_crashes};
