//! Live-runtime configuration checks.
//!
//! The live runtime (`edgelet-live`) hosts a query's actors on worker
//! threads behind a bounded, lock-striped transport, with an optional
//! wall-clock deadline watchdog. Two configurations deserve a
//! diagnostic before any thread is spawned:
//!
//! * `E120` — a runtime that cannot make progress: zero workers (no
//!   thread ever drains a lane), or a wall-clock deadline below the
//!   transport floor (the watchdog fires before even one window
//!   barrier can complete, so every run exits `Aborted`);
//! * `W121` — an effectively unbounded mailbox capacity. Backpressure
//!   is the live fabric's only defense against a producer outrunning a
//!   stalled worker; a capacity past [`UNBOUNDED_MAILBOX`] envelopes
//!   never engages it, so memory grows with whatever the fastest
//!   sender can enqueue.

use crate::diagnostic::{codes, Diagnostic};

/// The transport floor in wall-clock milliseconds: the minimum real
/// time one submit→barrier→drain round needs. A wall deadline below
/// this aborts every run before the first window closes.
pub const LIVE_TRANSPORT_FLOOR_MS: u64 = 1;

/// Mailbox capacities at or above this many envelopes per lane never
/// exert backpressure in practice (a full run's traffic fits below it),
/// making the bound decorative.
pub const UNBOUNDED_MAILBOX: usize = 1 << 20;

/// Checks a live-runtime configuration: `workers` threads, an optional
/// wall-clock deadline in milliseconds, and the per-lane mailbox
/// capacity in envelopes.
pub fn check_live_config(
    workers: usize,
    wall_deadline_ms: Option<u64>,
    mailbox_capacity: usize,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if workers == 0 {
        out.push(
            Diagnostic::error(
                codes::LIVE_CONFIG_INFEASIBLE,
                "live.workers",
                "0 worker threads: no thread ever drains a transport lane, \
                 so the runtime cannot make progress",
            )
            .with_help("run with at least 1 worker (--workers)"),
        );
    }
    if let Some(ms) = wall_deadline_ms {
        if ms < LIVE_TRANSPORT_FLOOR_MS {
            out.push(
                Diagnostic::error(
                    codes::LIVE_CONFIG_INFEASIBLE,
                    "live.wall_deadline",
                    format!(
                        "wall-clock deadline of {ms} ms is below the transport \
                         floor ({LIVE_TRANSPORT_FLOOR_MS} ms): the watchdog fires \
                         before the first window barrier, so every run aborts"
                    ),
                )
                .with_help(
                    "raise --wall-deadline-ms past the transport floor, or drop \
                     it to bound the query by virtual deadline only",
                ),
            );
        }
    }
    if mailbox_capacity >= UNBOUNDED_MAILBOX {
        out.push(
            Diagnostic::warning(
                codes::LIVE_UNBOUNDED_MAILBOX,
                "live.mailbox_capacity",
                format!(
                    "mailbox capacity {mailbox_capacity} is effectively unbounded \
                     (>= {UNBOUNDED_MAILBOX}): lanes will never exert backpressure, \
                     so a stalled worker's queue grows without limit"
                ),
            )
            .with_help("pick a capacity the host can absorb; 4096 is the default"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    #[test]
    fn zero_workers_is_an_error() {
        let found = check_live_config(0, None, 4096);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::LIVE_CONFIG_INFEASIBLE);
        assert_eq!(found[0].severity, Severity::Error);
        assert!(found[0].message.contains("0 worker"), "{found:?}");
    }

    #[test]
    fn sub_floor_wall_deadline_is_an_error() {
        let found = check_live_config(4, Some(0), 4096);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::LIVE_CONFIG_INFEASIBLE);
        assert!(found[0].message.contains("transport floor"), "{found:?}");
        assert!(check_live_config(4, Some(LIVE_TRANSPORT_FLOOR_MS), 4096).is_empty());
        assert!(check_live_config(4, None, 4096).is_empty());
    }

    #[test]
    fn unbounded_mailbox_warns() {
        let found = check_live_config(4, None, UNBOUNDED_MAILBOX);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, codes::LIVE_UNBOUNDED_MAILBOX);
        assert_eq!(found[0].severity, Severity::Warning);
        assert!(check_live_config(4, None, UNBOUNDED_MAILBOX - 1).is_empty());
    }

    #[test]
    fn problems_compose() {
        let found = check_live_config(0, Some(0), usize::MAX);
        assert_eq!(found.len(), 3);
    }
}
