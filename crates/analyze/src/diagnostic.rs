//! The shared diagnostic model of both analysis layers.
//!
//! Every finding — whether from the semantic plan/config analyzer or the
//! source-level determinism lint — is a [`Diagnostic`] with a stable code
//! (`E0xx` errors, `W0xx` warnings for the semantic layer; `E1xx` for the
//! source lint), a severity, a location, and a human message. Diagnostics
//! render either as compiler-style text or as a JSON array, so tools and
//! CI can consume them without parsing prose.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: the configuration is legal but probably not what the
    /// operator wants (thin contributor buckets, tight deadlines...).
    Warning,
    /// The plan or source violates a property the paper's guarantees rest
    /// on; execution (or merge) should be denied.
    Error,
}

impl Severity {
    /// Lowercase label used in renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code, e.g. `E010` (see [`codes`]).
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Where it was found: a plan path (`operators[3]`) or a source
    /// location (`crates/sim/src/engine.rs:106`).
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it (optional).
    pub help: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help string.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.location
        )?;
        if let Some(help) = &self.help {
            write!(f, "\n  help: {help}")?;
        }
        Ok(())
    }
}

/// True when any diagnostic is [`Severity::Error`].
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

/// Compiler-style text rendering, one finding per paragraph, ending with a
/// one-line summary.
pub fn render_human(diagnostics: &[Diagnostic]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for d in diagnostics {
        let _ = writeln!(out, "{d}");
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    let _ = writeln!(
        out,
        "analysis: {errors} error{}, {warnings} warning{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    );
    out
}

/// Sorts diagnostics into the pinned output order: by file (the
/// location's path part), then line number, then code. Locations
/// without a `path:line` shape (semantic plan paths like
/// `operators[3]`) sort by the whole location string with line 0; the
/// sort is stable, so same-key findings keep their pass order.
pub fn sort_diagnostics(diagnostics: &mut [Diagnostic]) {
    fn key(d: &Diagnostic) -> (String, u64, &'static str) {
        match d.location.rsplit_once(':') {
            Some((path, line)) if !line.is_empty() && line.bytes().all(|b| b.is_ascii_digit()) => {
                (path.to_string(), line.parse().unwrap_or(0), d.code)
            }
            _ => (d.location.clone(), 0, d.code),
        }
    }
    diagnostics.sort_by(|a, b| key(a).cmp(&key(b)));
}

/// JSON rendering: an array of objects with `code`, `severity`,
/// `location`, `message`, and (when present) `help` fields. Hand-rolled —
/// the workspace registry is offline, so no serde.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"code\":{}", json_string(d.code)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_string(d.severity.label())
        ));
        out.push_str(&format!(",\"location\":{}", json_string(&d.location)));
        out.push_str(&format!(",\"message\":{}", json_string(&d.message)));
        if let Some(help) = &d.help {
            out.push_str(&format!(",\"help\":{}", json_string(help)));
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The stable diagnostic codes, with their default severity and a short
/// summary. `docs/ANALYZER.md` carries the full table with example fixes.
pub mod codes {
    use super::Severity;

    /// Planning itself failed before a plan existed to analyze.
    pub const PLANNING_FAILED: &str = "E000";
    /// Snapshot Builder coverage broken (missing/duplicate partitions).
    pub const BUILDER_COVERAGE: &str = "E001";
    /// Computer grid broken (missing/duplicate/unknown-group computers).
    pub const COMPUTER_GRID: &str = "E002";
    /// Combiner/Querier arity broken.
    pub const COMBINER_ARITY: &str = "E003";
    /// A dataflow edge violates the QEP stage order or dangles.
    pub const EDGE_ORDER: &str = "E004";
    /// Contributor buckets do not match the partition count.
    pub const CONTRIBUTOR_BUCKETS: &str = "E005";
    /// A separated (quasi-identifier) attribute pair co-resides in one
    /// vertical group, i.e. on one Computer.
    pub const VERTICAL_PRIVACY: &str = "E010";
    /// Horizontal partitioning violates the raw-tuple cap or cannot cover
    /// the snapshot.
    pub const HORIZONTAL_CAP: &str = "E011";
    /// A partition's contributor bucket cannot fill its quota.
    pub const THIN_BUCKET: &str = "W012";
    /// Provisioned resiliency misses the validity target (binomial tail
    /// below target for Overcollection; replica survival for Backup).
    pub const RESILIENCY_TARGET: &str = "E020";
    /// The Naive strategy is combined with a non-zero fault presumption.
    pub const NAIVE_WITH_FAULTS: &str = "W021";
    /// Combiner replica pool may not survive the fault presumption.
    pub const COMBINER_SURVIVAL: &str = "W022";
    /// A device hosts more Data Processor operators than the liability
    /// bound allows (crowd-liability skew).
    pub const LIABILITY_SKEW: &str = "E030";
    /// Contributor assignment is heavily skewed across partitions.
    pub const CONTRIBUTOR_SKEW: &str = "W031";
    /// The deadline is non-positive or below the critical-path floor.
    pub const DEADLINE_INFEASIBLE: &str = "E040";
    /// The deadline leaves less than 2x the critical-path floor.
    pub const DEADLINE_TIGHT: &str = "W041";
    /// A fault rule targets a device id outside the simulated world.
    pub const FAULT_TARGET_OOB: &str = "E060";
    /// A fault rule can never match (empty time window or zero firing
    /// limit).
    pub const FAULT_WINDOW_EMPTY: &str = "E061";
    /// An injected delay (or the rule's activation) lands past the query
    /// deadline, so the fault cannot affect the outcome.
    pub const FAULT_DELAY_BEYOND_DEADLINE: &str = "W062";
    /// A fault rule is shadowed by an earlier unbounded rule with a
    /// wider matcher (first-firing-rule-wins makes it unreachable).
    pub const FAULT_RULE_UNREACHABLE: &str = "W063";
    /// Default-hasher `HashMap`/`HashSet` in a deterministic crate.
    pub const LINT_HASHER: &str = "E101";
    /// Wall-clock (`Instant`/`SystemTime`) outside the bench crate.
    pub const LINT_WALL_CLOCK: &str = "E102";
    /// Ambient randomness (`thread_rng`/`rand::random`).
    pub const LINT_AMBIENT_RNG: &str = "E103";
    /// `unwrap`/`expect` in non-test `exec`/`sim` library code.
    pub const LINT_PANIC: &str = "E104";
    /// `.clone()` of a message payload (`payload`/`bytes`) in `exec`/`sim`
    /// send paths; share the buffer instead.
    pub const LINT_PAYLOAD_CLONE: &str = "W105";
    /// The network model's minimum latency is zero, so the sharded
    /// engine's conservative lookahead window is empty and every run
    /// falls back to the global sequential executor.
    pub const SIM_ZERO_LOOKAHEAD: &str = "W110";
    /// A live-runtime configuration that cannot make progress: zero
    /// worker threads, or a wall-clock deadline below the transport
    /// floor (the watchdog aborts before the first window barrier).
    pub const LIVE_CONFIG_INFEASIBLE: &str = "E120";
    /// Live transport mailbox capacity so large it never exerts
    /// backpressure, leaving queue growth unbounded in practice.
    pub const LIVE_UNBOUNDED_MAILBOX: &str = "W121";
    /// Durability is enabled but the WAL directory is unset or
    /// unwritable: the first append would drain the service read-only.
    pub const STORAGE_WAL_DIR: &str = "E140";
    /// The checkpoint interval is zero: the WAL is never compacted and
    /// every restart replays the service's entire history.
    pub const STORAGE_NO_CHECKPOINT: &str = "W141";
    /// The configuration plans for crashes but durability is disabled:
    /// every crash loses ledgers, epochs, and in-flight queries.
    pub const STORAGE_VOLATILE_UNDER_CRASHES: &str = "W142";
    /// The group-commit window eats a large share of the query's wall
    /// deadline slack: durable submits stall in the commit window.
    pub const STORAGE_WINDOW_OVER_DEADLINE: &str = "W143";
    /// The WAL segment size is below one checkpoint interval's churn:
    /// the log rotates several times per checkpoint for no compaction
    /// gain.
    pub const STORAGE_SEGMENT_THRASH: &str = "W144";
    /// A multi-process deployment that cannot form: unresolvable listen
    /// or connect address, a daemon dialing its own endpoint, a
    /// declared transport contradicting the address scheme, or a zero
    /// remote worker count.
    pub const NET_ENDPOINT_INVALID: &str = "E150";
    /// TCP reconnects left on the default backoff bounds.
    pub const NET_TCP_DEFAULT_BACKOFF: &str = "W151";
    /// A handshake timeout at or beyond the query deadline.
    pub const NET_HANDSHAKE_OVER_DEADLINE: &str = "W152";
    /// The lock-order graph has a cycle: two lock classes are acquired
    /// in opposite orders on different code paths, so two threads can
    /// deadlock holding one each.
    pub const CONC_LOCK_ORDER_CYCLE: &str = "E130";
    /// A `lint: allow(...)` directive no longer suppresses any finding.
    pub const CONC_STALE_ALLOW: &str = "W131";
    /// A lock guard is held across a blocking or transport call
    /// (`submit`, `send`, `recv`, `join`, sleep): the holder can stall
    /// every other thread contending for that lock.
    pub const CONC_LOCK_ACROSS_BLOCKING: &str = "E132";
    /// A channel or mailbox is constructed without a capacity bound —
    /// the code-level generalization of `W121`.
    pub const CONC_UNBOUNDED_CHANNEL: &str = "W133";
    /// Shared mutable state (`static mut`, `Rc`, `RefCell`, `Cell`) in a
    /// thread-spawning crate, reachable without a lock or `Arc`.
    pub const CONC_UNSYNC_SHARED_STATE: &str = "E134";

    /// Every code with its default severity and one-line summary, in code
    /// order. Drives the documentation table and its test.
    pub const ALL: &[(&str, Severity, &str)] = &[
        (
            PLANNING_FAILED,
            Severity::Error,
            "planning failed before analysis",
        ),
        (
            BUILDER_COVERAGE,
            Severity::Error,
            "snapshot-builder coverage broken",
        ),
        (COMPUTER_GRID, Severity::Error, "computer grid broken"),
        (
            COMBINER_ARITY,
            Severity::Error,
            "combiner/querier arity broken",
        ),
        (
            EDGE_ORDER,
            Severity::Error,
            "dataflow edge violates stage order",
        ),
        (
            CONTRIBUTOR_BUCKETS,
            Severity::Error,
            "contributor buckets mismatch partitions",
        ),
        (
            VERTICAL_PRIVACY,
            Severity::Error,
            "separated attribute pair co-located",
        ),
        (
            HORIZONTAL_CAP,
            Severity::Error,
            "raw-tuple cap violated or snapshot uncovered",
        ),
        (
            THIN_BUCKET,
            Severity::Warning,
            "contributor bucket below quota",
        ),
        (
            RESILIENCY_TARGET,
            Severity::Error,
            "provisioned validity below target",
        ),
        (
            NAIVE_WITH_FAULTS,
            Severity::Warning,
            "naive strategy under fault presumption",
        ),
        (
            COMBINER_SURVIVAL,
            Severity::Warning,
            "combiner replicas may not survive",
        ),
        (
            LIABILITY_SKEW,
            Severity::Error,
            "device exceeds operator liability bound",
        ),
        (
            CONTRIBUTOR_SKEW,
            Severity::Warning,
            "contributor assignment skewed",
        ),
        (
            DEADLINE_INFEASIBLE,
            Severity::Error,
            "deadline below critical-path floor",
        ),
        (
            DEADLINE_TIGHT,
            Severity::Warning,
            "deadline within 2x of the floor",
        ),
        (
            FAULT_TARGET_OOB,
            Severity::Error,
            "fault rule targets a device outside the world",
        ),
        (
            FAULT_WINDOW_EMPTY,
            Severity::Error,
            "fault rule can never match",
        ),
        (
            FAULT_DELAY_BEYOND_DEADLINE,
            Severity::Warning,
            "fault lands past the query deadline",
        ),
        (
            FAULT_RULE_UNREACHABLE,
            Severity::Warning,
            "fault rule shadowed by an earlier wider rule",
        ),
        (
            LINT_HASHER,
            Severity::Error,
            "default-hasher map/set in deterministic crate",
        ),
        (
            LINT_WALL_CLOCK,
            Severity::Error,
            "wall-clock read outside bench",
        ),
        (LINT_AMBIENT_RNG, Severity::Error, "ambient OS randomness"),
        (
            LINT_PANIC,
            Severity::Error,
            "unwrap/expect in exec/sim library code",
        ),
        (
            LINT_PAYLOAD_CLONE,
            Severity::Warning,
            "payload deep-copied on a send path",
        ),
        (
            SIM_ZERO_LOOKAHEAD,
            Severity::Warning,
            "zero minimum latency disables the sharded engine",
        ),
        (
            LIVE_CONFIG_INFEASIBLE,
            Severity::Error,
            "live runtime cannot make progress",
        ),
        (
            LIVE_UNBOUNDED_MAILBOX,
            Severity::Warning,
            "live mailbox capacity never exerts backpressure",
        ),
        (
            STORAGE_WAL_DIR,
            Severity::Error,
            "WAL directory unset or unwritable under durability",
        ),
        (
            STORAGE_NO_CHECKPOINT,
            Severity::Warning,
            "zero checkpoint interval leaves replay unbounded",
        ),
        (
            STORAGE_VOLATILE_UNDER_CRASHES,
            Severity::Warning,
            "crash-planning configuration without durability",
        ),
        (
            STORAGE_WINDOW_OVER_DEADLINE,
            Severity::Warning,
            "group-commit window eats the wall-deadline slack",
        ),
        (
            STORAGE_SEGMENT_THRASH,
            Severity::Warning,
            "WAL segment size below checkpoint churn causes rotation thrash",
        ),
        (
            CONC_LOCK_ORDER_CYCLE,
            Severity::Error,
            "lock-order cycle across code paths",
        ),
        (
            CONC_STALE_ALLOW,
            Severity::Warning,
            "allow directive suppresses nothing",
        ),
        (
            CONC_LOCK_ACROSS_BLOCKING,
            Severity::Error,
            "lock held across a blocking/transport call",
        ),
        (
            CONC_UNBOUNDED_CHANNEL,
            Severity::Warning,
            "channel constructed without a capacity bound",
        ),
        (
            CONC_UNSYNC_SHARED_STATE,
            Severity::Error,
            "unsynchronized shared mutable state in a threaded crate",
        ),
        (
            NET_ENDPOINT_INVALID,
            Severity::Error,
            "multi-process deployment endpoint cannot form",
        ),
        (
            NET_TCP_DEFAULT_BACKOFF,
            Severity::Warning,
            "TCP reconnect on default backoff bounds",
        ),
        (
            NET_HANDSHAKE_OVER_DEADLINE,
            Severity::Warning,
            "handshake timeout at or beyond the query deadline",
        ),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_render() {
        let d = Diagnostic::error(codes::VERTICAL_PRIVACY, "attr_groups[0]", "pair co-located")
            .with_help("add a separation");
        let text = d.to_string();
        assert!(text.contains("error[E010]"));
        assert!(text.contains("help: add a separation"));
        let all = vec![
            d,
            Diagnostic::warning(codes::THIN_BUCKET, "partition 3", "only 2 of 50"),
        ];
        let human = render_human(&all);
        assert!(human.contains("1 error, 1 warning"), "{human}");
        assert!(has_errors(&all));
        assert!(!has_errors(&all[1..]));
    }

    #[test]
    fn json_escapes_and_lists() {
        let all = vec![Diagnostic::error(
            codes::EDGE_ORDER,
            "edge (1, 2)",
            "a \"bad\"\nedge",
        )];
        let json = render_json(&all);
        assert!(json.contains("\"code\":\"E004\""));
        assert!(json.contains("\\\"bad\\\"\\nedge"));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn diagnostics_sort_by_file_line_code() {
        let mut diags = vec![
            Diagnostic::error("E132", "crates/b/src/x.rs:10", "b"),
            Diagnostic::error("E130", "crates/b/src/x.rs:10", "a"),
            Diagnostic::error("E101", "crates/b/src/x.rs:2", "c"),
            Diagnostic::error("E011", "operators[3]", "d"),
            Diagnostic::error("E102", "crates/a/src/y.rs:99", "e"),
        ];
        sort_diagnostics(&mut diags);
        let order: Vec<(&str, &str)> = diags
            .iter()
            .map(|d| (d.location.as_str(), d.code))
            .collect();
        assert_eq!(
            order,
            vec![
                ("crates/a/src/y.rs:99", "E102"),
                ("crates/b/src/x.rs:2", "E101"),
                ("crates/b/src/x.rs:10", "E130"),
                ("crates/b/src/x.rs:10", "E132"),
                ("operators[3]", "E011"),
            ]
        );
    }

    #[test]
    fn every_code_is_documented_in_the_analyzer_guide() {
        // CARGO_MANIFEST_DIR is crates/analyze; docs/ sits at the root.
        let doc_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join("docs/ANALYZER.md");
        let doc = std::fs::read_to_string(&doc_path)
            .unwrap_or_else(|e| panic!("cannot read {doc_path:?}: {e}"));
        for (code, _, summary) in codes::ALL {
            assert!(
                doc.contains(&format!("| {code} |")),
                "diagnostic {code} ({summary}) is missing from docs/ANALYZER.md"
            );
        }
    }

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for (code, severity, summary) in codes::ALL {
            assert!(seen.insert(*code), "duplicate code {code}");
            assert_eq!(code.len(), 4, "{code}");
            let expected = if code.starts_with('E') {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(*severity, expected, "{code}");
            assert!(!summary.is_empty());
        }
    }
}
