//! The combined source pass: Layer-2 lint + Layer-3 concurrency +
//! stale-suppression audit, in one workspace walk.
//!
//! Both source layers share one [`crate::scanner::SourceFile`] parse per
//! file, and every suppression that fires marks its directive used. The
//! final sweep then reports `W131` for any justified `lint: allow(..)`
//! directive that no longer suppresses anything — a stale directive is a
//! standing invitation to reintroduce the bug it once excused.
//! Directives inside `#[cfg(test)]` regions and directives without a
//! reason (which never suppressed anything to begin with — the lint
//! layer rejects them with `E120`) are exempt.
//!
//! Output is deterministic: diagnostics are sorted by file, line, then
//! code via [`crate::diagnostic::sort_diagnostics`].

use crate::concurrency;
use crate::diagnostic::{codes, sort_diagnostics, Diagnostic};
use crate::lint;
use crate::scanner::load_workspace;
use std::path::Path;

/// Options for [`analyze_sources_with`].
#[derive(Debug, Clone, Copy)]
pub struct SourcePassOptions {
    /// Run the Layer-3 concurrency pass (`E130`-series). On by default.
    pub concurrency: bool,
}

impl Default for SourcePassOptions {
    fn default() -> Self {
        Self { concurrency: true }
    }
}

/// Runs every enabled source layer over `crates/**/src/**/*.rs` under
/// `workspace_root` and returns the sorted findings.
pub fn analyze_sources_with(workspace_root: &Path, opts: SourcePassOptions) -> Vec<Diagnostic> {
    let files = load_workspace(workspace_root);
    let mut out = Vec::new();
    for file in &files {
        out.extend(lint::lint_file(file));
    }
    if opts.concurrency {
        out.extend(concurrency::check_files(&files));
    }
    // Staleness is judged after every layer has had its chance to use a
    // directive — a directive is stale only if nothing fired under it.
    for file in &files {
        for d in file.stale_directives() {
            out.push(
                Diagnostic::warning(
                    codes::CONC_STALE_ALLOW,
                    format!("{}:{}", file.display_path, d.line),
                    format!(
                        "`lint: allow({})` suppresses nothing — no {} finding occurs here",
                        d.code, d.code
                    ),
                )
                .with_help(
                    "delete the directive; a stale allow silently re-admits \
                     the pattern it once excused",
                ),
            );
        }
    }
    sort_diagnostics(&mut out);
    out
}

/// Runs the full source pass (all layers) with default options.
pub fn analyze_sources(workspace_root: &Path) -> Vec<Diagnostic> {
    analyze_sources_with(workspace_root, SourcePassOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::SourceFile;

    // The stale-directive sweep itself, exercised on in-memory sources
    // (the workspace-level integration lives in tests/static_analysis.rs).
    fn stale_codes(source: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/exec/src/x.rs", "exec", source);
        let mut out = lint::lint_file(&file);
        out.extend(concurrency::check_files(std::slice::from_ref(&file)));
        for d in file.stale_directives() {
            out.push(Diagnostic::warning(
                codes::CONC_STALE_ALLOW,
                format!("{}:{}", file.display_path, d.line),
                format!("`lint: allow({})` suppresses nothing", d.code),
            ));
        }
        out
    }

    #[test]
    fn used_directive_is_not_stale() {
        let src = "fn f(x: Option<u8>) -> u8 {\n\
                   // lint: allow(E104 value is checked by the caller)\n\
                   x.unwrap()\n\
                   }\n";
        let found = stale_codes(src);
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn unused_directive_is_stale() {
        let src = "fn f(x: u8) -> u8 {\n\
                   // lint: allow(E104 value is checked by the caller)\n\
                   x + 1\n\
                   }\n";
        let found = stale_codes(src);
        assert_eq!(found.len(), 1, "{found:#?}");
        assert_eq!(found[0].code, codes::CONC_STALE_ALLOW);
        assert!(found[0].location.ends_with(":2"), "{found:#?}");
    }

    #[test]
    fn workspace_has_no_stale_directives() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let findings = analyze_sources(&root);
        assert!(
            findings.is_empty(),
            "full source pass must be clean:\n{}",
            crate::diagnostic::render_human(&findings)
        );
    }
}
