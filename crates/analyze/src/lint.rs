//! Layer 2: token-level source lint for determinism and panic hygiene.
//!
//! The simulator's headline guarantee is bit-identical replay from a
//! seed. That guarantee dies quietly the moment somebody iterates a
//! default-hasher map in a scheduling path, reads the wall clock, or
//! draws from the OS RNG — so those constructs are denied *textually*,
//! with no parser dependency (the registry is offline). The scanner
//! ([`crate::scanner`], shared with the Layer-3 concurrency pass) strips
//! comments and string/char literals and masks `#[cfg(test)]` items by
//! brace depth — code after a test module is still scanned — then this
//! pass matches per-line needles:
//!
//! * `E101` — default-hasher `HashMap`/`HashSet` in the deterministic
//!   crates (`sim`, `exec`, `query`); use `BTreeMap`/`BTreeSet`.
//! * `E102` — `Instant::now`/`SystemTime` anywhere outside `bench`
//!   (which measures wall time) and `net` (a wall-clock socket
//!   runtime); simulated time comes from the engine.
//! * `E103` — `thread_rng`/`rand::random` anywhere outside `bench`;
//!   randomness comes from a seeded [`DetRng`](edgelet_util::rng).
//! * `E104` — `.unwrap()`/`.expect(` in `exec`/`sim` library code;
//!   return a typed error or justify with an allow directive.
//! * `W105` — `.clone()` of a message payload (`payload`/`bytes`
//!   variables) in `exec`/`sim`: the zero-copy fabric shares one buffer
//!   per fan-out via [`Payload::share`](edgelet_util::Payload::share);
//!   deep copies on the send path are a regression.
//!
//! A finding on a line is suppressed by a directive on the same or the
//! preceding line: `// lint: allow(E104 reason why this is infallible)`.
//! The reason is mandatory — a bare code does not suppress. Directives
//! that no longer suppress anything are themselves reported (`W131`) by
//! the combined driver in [`crate::sourcepass`].

use crate::diagnostic::{codes, Diagnostic, Severity};
use crate::scanner::{load_workspace, SourceFile};
use std::path::Path;

/// Which crates a rule applies to (by directory name under `crates/`).
enum CrateFilter {
    /// Applies only to the listed crates.
    Only(&'static [&'static str]),
    /// Applies to every crate except the listed ones.
    Except(&'static [&'static str]),
}

impl CrateFilter {
    fn applies(&self, crate_name: &str) -> bool {
        match self {
            CrateFilter::Only(list) => list.contains(&crate_name),
            CrateFilter::Except(list) => !list.contains(&crate_name),
        }
    }
}

struct Rule {
    code: &'static str,
    severity: Severity,
    needles: Vec<String>,
    filter: CrateFilter,
    what: &'static str,
    help: &'static str,
}

/// The needles are assembled from fragments so this file never contains
/// the banned tokens itself.
fn rules() -> Vec<Rule> {
    let join = |parts: &[&str]| parts.concat();
    vec![
        Rule {
            code: codes::LINT_HASHER,
            severity: Severity::Error,
            needles: vec![join(&["Hash", "Map"]), join(&["Hash", "Set"])],
            filter: CrateFilter::Only(&["sim", "exec", "query"]),
            what: "default-hasher collection in a deterministic crate",
            help: "iteration order is randomized per process; use BTreeMap/BTreeSet",
        },
        Rule {
            code: codes::LINT_WALL_CLOCK,
            severity: Severity::Error,
            needles: vec![join(&["Ins", "tant::now"]), join(&["System", "Time"])],
            // `bench` measures wall time; `net` *is* a wall-clock
            // runtime (IO deadlines, reconnect backoff, handshake
            // sweeping) — its virtual-time discipline is enforced by
            // the cross-engine parity tests, not by this lint.
            filter: CrateFilter::Except(&["bench", "net"]),
            what: "wall-clock read",
            help: "simulated time comes from the engine; wall clocks break replay",
        },
        Rule {
            code: codes::LINT_AMBIENT_RNG,
            severity: Severity::Error,
            needles: vec![join(&["thread", "_rng"]), join(&["rand::", "random"])],
            filter: CrateFilter::Except(&["bench"]),
            what: "ambient OS randomness",
            help: "draw from a seeded DetRng forked per purpose",
        },
        Rule {
            code: codes::LINT_PANIC,
            severity: Severity::Error,
            needles: vec![join(&[".unw", "rap()"]), join(&[".exp", "ect("])],
            filter: CrateFilter::Only(&["exec", "sim"]),
            what: "panic path in library code",
            help: "return a typed edgelet_util::Error, or justify with \
                   an allow directive",
        },
        Rule {
            code: codes::LINT_PAYLOAD_CLONE,
            severity: Severity::Warning,
            needles: vec![
                join(&["payload", ".clo", "ne()"]),
                join(&["bytes", ".clo", "ne()"]),
            ],
            filter: CrateFilter::Only(&["exec", "sim"]),
            what: "deep copy of a message payload",
            help: "share the buffer instead: Payload::share is a \
                   reference-count bump, cloning the bytes re-copies them \
                   per recipient",
        },
    ]
}

/// Lints one parsed file, marking used suppression directives.
pub fn lint_file(file: &SourceFile) -> Vec<Diagnostic> {
    let rules: Vec<Rule> = rules()
        .into_iter()
        .filter(|r| r.filter.applies(&file.crate_name))
        .collect();
    if rules.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if file.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        for rule in &rules {
            let Some(needle) = rule.needles.iter().find(|n| line.contains(n.as_str())) else {
                continue;
            };
            if file.allows(rule.code, idx + 1) {
                continue;
            }
            let location = format!("{}:{}", file.display_path, idx + 1);
            let message = format!("{}: `{needle}`", rule.what);
            let diag = match rule.severity {
                Severity::Error => Diagnostic::error(rule.code, location, message),
                Severity::Warning => Diagnostic::warning(rule.code, location, message),
            };
            out.push(diag.with_help(rule.help));
        }
    }
    out
}

/// Lints one file's source. `display_path` is used in locations;
/// `crate_name` selects which rules apply.
pub fn lint_source(display_path: &str, crate_name: &str, source: &str) -> Vec<Diagnostic> {
    lint_file(&SourceFile::parse(display_path, crate_name, source))
}

/// Lints every `crates/<name>/src/**/*.rs` under `workspace_root`.
pub fn lint_workspace(workspace_root: &Path) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in load_workspace(workspace_root) {
        out.extend(lint_file(&file));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_in(found: &[Diagnostic]) -> Vec<&'static str> {
        found.iter().map(|d| d.code).collect()
    }

    #[test]
    fn wall_clock_in_sim_is_caught() {
        let src = "fn t() -> std::time::Instant { std::time::Instant::now() }\n";
        let found = lint_source("crates/sim/src/x.rs", "sim", src);
        assert_eq!(codes_in(&found), vec![codes::LINT_WALL_CLOCK]);
        assert!(found[0].location.ends_with("x.rs:1"));
    }

    #[test]
    fn wall_clock_in_bench_is_allowed() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(lint_source("crates/bench/src/x.rs", "bench", src).is_empty());
    }

    #[test]
    fn default_hasher_in_query_is_caught() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u8, u8> = HashMap::new();\n";
        let found = lint_source("crates/query/src/x.rs", "query", src);
        assert!(found.iter().all(|d| d.code == codes::LINT_HASHER));
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn default_hasher_in_store_is_not_checked() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint_source("crates/store/src/x.rs", "store", src).is_empty());
    }

    #[test]
    fn ambient_rng_is_caught() {
        let src = "let x: u8 = rand::random();\nlet mut r = rand::thread_rng();\n";
        let found = lint_source("crates/util/src/x.rs", "util", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.code == codes::LINT_AMBIENT_RNG));
    }

    #[test]
    fn panics_in_exec_are_caught() {
        let src = "let a = b.unwrap();\nlet c = d.expect(\"always\");\n";
        let found = lint_source("crates/exec/src/x.rs", "exec", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.code == codes::LINT_PANIC));
        // The same source in a crate without the panic rule is clean.
        assert!(lint_source("crates/query/src/x.rs", "query", src).is_empty());
    }

    #[test]
    fn unwrap_with_arguments_is_not_a_panic() {
        // Sealer::unwrap(payload) is envelope opening, not Option::unwrap.
        let src = "let m = self.sealer.unwrap(payload)?;\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_match() {
        let src = "// Instant::now() is banned\nlet s = \"Instant::now()\";\n/* HashMap too */\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", src).is_empty());
    }

    #[test]
    fn test_module_is_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", src).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_scanned_again() {
        // Regression: the old scanner assumed test modules close the
        // file and stopped at the first `#[cfg(test)]`.
        let src = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { fixture(); }\n\
                   }\n\
                   fn late() { b.unwrap(); }\n";
        let found = lint_source("crates/exec/src/x.rs", "exec", src);
        assert_eq!(codes_in(&found), vec![codes::LINT_PANIC], "{found:?}");
        assert!(found[0].location.ends_with("x.rs:6"), "{found:?}");
    }

    #[test]
    fn allow_directive_with_reason_suppresses() {
        let same = "let a = b.unwrap(); // lint: allow(E104 checked two lines up)\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", same).is_empty());
        let prev = "// lint: allow(E104 invariant: pool sized to demand)\nlet a = b.unwrap();\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", prev).is_empty());
    }

    #[test]
    fn allow_directive_without_reason_does_not_suppress() {
        let src = "let a = b.unwrap(); // lint: allow(E104)\n";
        assert_eq!(lint_source("crates/exec/src/x.rs", "exec", src).len(), 1);
        // A directive for a different code does not suppress either.
        let wrong = "let a = b.unwrap(); // lint: allow(E102 not the clock)\n";
        assert_eq!(lint_source("crates/exec/src/x.rs", "exec", wrong).len(), 1);
    }

    #[test]
    fn payload_clone_in_exec_is_warned() {
        let src = "let copy = payload.clone();\nctx.send(to, bytes.clone());\n";
        let found = lint_source("crates/exec/src/x.rs", "exec", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.code == codes::LINT_PAYLOAD_CLONE
            && d.severity == crate::diagnostic::Severity::Warning));
        // The same source outside the zero-copy crates is not checked.
        assert!(lint_source("crates/store/src/x.rs", "store", src).is_empty());
        // Sharing is the sanctioned fan-out primitive.
        let ok = "ctx.send(to, bytes.share());\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", ok).is_empty());
    }

    #[test]
    fn payload_clone_allow_directive_suppresses() {
        let src = "// lint: allow(W105 corruption path must own a detached copy)\n\
                   let copy = payload.clone();\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", src).is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "let s = r#\"contains Instant::now() text\"#;\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", src).is_empty());
    }

    #[test]
    fn workspace_is_lint_clean() {
        // CARGO_MANIFEST_DIR is crates/analyze; the workspace root is two
        // levels up.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        assert!(root.join("Cargo.toml").is_file(), "bad root {root:?}");
        let findings = lint_workspace(&root);
        assert!(
            findings.is_empty(),
            "workspace must be lint-clean:\n{}",
            crate::diagnostic::render_human(&findings)
        );
    }
}
