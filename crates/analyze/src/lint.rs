//! Layer 2: token-level source lint for determinism and panic hygiene.
//!
//! The simulator's headline guarantee is bit-identical replay from a
//! seed. That guarantee dies quietly the moment somebody iterates a
//! default-hasher map in a scheduling path, reads the wall clock, or
//! draws from the OS RNG — so those constructs are denied *textually*,
//! with no parser dependency (the registry is offline). The scanner
//! strips comments and string/char literals, skips `#[cfg(test)]` code
//! (test modules sit at the end of files in this workspace), and matches
//! per-line needles:
//!
//! * `E101` — default-hasher `HashMap`/`HashSet` in the deterministic
//!   crates (`sim`, `exec`, `query`); use `BTreeMap`/`BTreeSet`.
//! * `E102` — `Instant::now`/`SystemTime` anywhere outside `bench`;
//!   simulated time comes from the engine.
//! * `E103` — `thread_rng`/`rand::random` anywhere outside `bench`;
//!   randomness comes from a seeded [`DetRng`](edgelet_util::rng).
//! * `E104` — `.unwrap()`/`.expect(` in `exec`/`sim` library code;
//!   return a typed error or justify with an allow directive.
//! * `W105` — `.clone()` of a message payload (`payload`/`bytes`
//!   variables) in `exec`/`sim`: the zero-copy fabric shares one buffer
//!   per fan-out via [`Payload::share`](edgelet_util::Payload::share);
//!   deep copies on the send path are a regression.
//!
//! A finding on a line is suppressed by a directive on the same or the
//! preceding line: `// lint: allow(E104 reason why this is infallible)`.
//! The reason is mandatory — a bare code does not suppress.

use crate::diagnostic::{codes, Diagnostic, Severity};
use std::fs;
use std::path::{Path, PathBuf};

/// Which crates a rule applies to (by directory name under `crates/`).
enum CrateFilter {
    /// Applies only to the listed crates.
    Only(&'static [&'static str]),
    /// Applies to every crate except the listed ones.
    Except(&'static [&'static str]),
}

impl CrateFilter {
    fn applies(&self, crate_name: &str) -> bool {
        match self {
            CrateFilter::Only(list) => list.contains(&crate_name),
            CrateFilter::Except(list) => !list.contains(&crate_name),
        }
    }
}

struct Rule {
    code: &'static str,
    severity: Severity,
    needles: Vec<String>,
    filter: CrateFilter,
    what: &'static str,
    help: &'static str,
}

/// The needles are assembled from fragments so this file never contains
/// the banned tokens itself.
fn rules() -> Vec<Rule> {
    let join = |parts: &[&str]| parts.concat();
    vec![
        Rule {
            code: codes::LINT_HASHER,
            severity: Severity::Error,
            needles: vec![join(&["Hash", "Map"]), join(&["Hash", "Set"])],
            filter: CrateFilter::Only(&["sim", "exec", "query"]),
            what: "default-hasher collection in a deterministic crate",
            help: "iteration order is randomized per process; use BTreeMap/BTreeSet",
        },
        Rule {
            code: codes::LINT_WALL_CLOCK,
            severity: Severity::Error,
            needles: vec![join(&["Ins", "tant::now"]), join(&["System", "Time"])],
            filter: CrateFilter::Except(&["bench"]),
            what: "wall-clock read",
            help: "simulated time comes from the engine; wall clocks break replay",
        },
        Rule {
            code: codes::LINT_AMBIENT_RNG,
            severity: Severity::Error,
            needles: vec![join(&["thread", "_rng"]), join(&["rand::", "random"])],
            filter: CrateFilter::Except(&["bench"]),
            what: "ambient OS randomness",
            help: "draw from a seeded DetRng forked per purpose",
        },
        Rule {
            code: codes::LINT_PANIC,
            severity: Severity::Error,
            needles: vec![join(&[".unw", "rap()"]), join(&[".exp", "ect("])],
            filter: CrateFilter::Only(&["exec", "sim"]),
            what: "panic path in library code",
            help: "return a typed edgelet_util::Error, or justify with \
                   an allow directive",
        },
        Rule {
            code: codes::LINT_PAYLOAD_CLONE,
            severity: Severity::Warning,
            needles: vec![
                join(&["payload", ".clo", "ne()"]),
                join(&["bytes", ".clo", "ne()"]),
            ],
            filter: CrateFilter::Only(&["exec", "sim"]),
            what: "deep copy of a message payload",
            help: "share the buffer instead: Payload::share is a \
                   reference-count bump, cloning the bytes re-copies them \
                   per recipient",
        },
    ]
}

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving line structure, so needle matching never fires inside
/// prose. Handles nested block comments and raw strings.
fn strip_source(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut out = String::with_capacity(source.len());
    let chars: Vec<char> = source.chars().collect();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Raw string: r"..." or r#"..."# etc.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: a literal closes with a
                    // quote one (escaped) char later.
                    if next == Some('\\') {
                        out.push_str("' '");
                        i += 2; // skip the backslash
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        out.push_str("' '");
                        i += 3;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                }
                c => {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && chars[i + 1..].iter().take(hashes).all(|&h| h == '#') {
                    state = State::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// True when `raw_line` carries a valid allow directive for `code` — the
/// code followed by a non-empty reason.
fn has_allow(raw_line: &str, code: &str) -> bool {
    let Some(pos) = raw_line.find("lint: allow(") else {
        return false;
    };
    let rest = &raw_line[pos + "lint: allow(".len()..];
    let Some(rest) = rest.strip_prefix(code) else {
        return false;
    };
    let Some(close) = rest.find(')') else {
        return false;
    };
    rest[..close].chars().any(|c| c.is_alphanumeric())
}

/// Lints one file's source. `display_path` is used in locations;
/// `crate_name` selects which rules apply.
pub fn lint_source(display_path: &str, crate_name: &str, source: &str) -> Vec<Diagnostic> {
    let rules: Vec<Rule> = rules()
        .into_iter()
        .filter(|r| r.filter.applies(crate_name))
        .collect();
    if rules.is_empty() {
        return Vec::new();
    }
    let stripped = strip_source(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    for (idx, line) in stripped.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            // Convention in this workspace: the test module closes the
            // file, so everything after is test-only.
            break;
        }
        for rule in &rules {
            let Some(needle) = rule.needles.iter().find(|n| line.contains(n.as_str())) else {
                continue;
            };
            let raw = raw_lines.get(idx).copied().unwrap_or("");
            let prev = if idx > 0 {
                raw_lines.get(idx - 1).copied().unwrap_or("")
            } else {
                ""
            };
            if has_allow(raw, rule.code) || has_allow(prev, rule.code) {
                continue;
            }
            let location = format!("{display_path}:{}", idx + 1);
            let message = format!("{}: `{needle}`", rule.what);
            let diag = match rule.severity {
                Severity::Error => Diagnostic::error(rule.code, location, message),
                Severity::Warning => Diagnostic::warning(rule.code, location, message),
            };
            out.push(diag.with_help(rule.help));
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every `crates/<name>/src/**/*.rs` under `workspace_root`.
pub fn lint_workspace(workspace_root: &Path) -> Vec<Diagnostic> {
    let crates_dir = workspace_root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();

    let mut out = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let mut files = Vec::new();
        rust_files(&crate_dir.join("src"), &mut files);
        for file in files {
            let Ok(source) = fs::read_to_string(&file) else {
                continue;
            };
            let display = file
                .strip_prefix(workspace_root)
                .unwrap_or(&file)
                .display()
                .to_string();
            out.extend(lint_source(&display, &crate_name, &source));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_in(found: &[Diagnostic]) -> Vec<&'static str> {
        found.iter().map(|d| d.code).collect()
    }

    #[test]
    fn wall_clock_in_sim_is_caught() {
        let src = "fn t() -> std::time::Instant { std::time::Instant::now() }\n";
        let found = lint_source("crates/sim/src/x.rs", "sim", src);
        assert_eq!(codes_in(&found), vec![codes::LINT_WALL_CLOCK]);
        assert!(found[0].location.ends_with("x.rs:1"));
    }

    #[test]
    fn wall_clock_in_bench_is_allowed() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(lint_source("crates/bench/src/x.rs", "bench", src).is_empty());
    }

    #[test]
    fn default_hasher_in_query_is_caught() {
        let src = "use std::collections::HashMap;\nlet m: HashMap<u8, u8> = HashMap::new();\n";
        let found = lint_source("crates/query/src/x.rs", "query", src);
        assert!(found.iter().all(|d| d.code == codes::LINT_HASHER));
        assert_eq!(found.len(), 2, "{found:?}");
    }

    #[test]
    fn default_hasher_in_store_is_not_checked() {
        let src = "use std::collections::HashMap;\n";
        assert!(lint_source("crates/store/src/x.rs", "store", src).is_empty());
    }

    #[test]
    fn ambient_rng_is_caught() {
        let src = "let x: u8 = rand::random();\nlet mut r = rand::thread_rng();\n";
        let found = lint_source("crates/util/src/x.rs", "util", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.code == codes::LINT_AMBIENT_RNG));
    }

    #[test]
    fn panics_in_exec_are_caught() {
        let src = "let a = b.unwrap();\nlet c = d.expect(\"always\");\n";
        let found = lint_source("crates/exec/src/x.rs", "exec", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.code == codes::LINT_PANIC));
        // The same source in a crate without the panic rule is clean.
        assert!(lint_source("crates/query/src/x.rs", "query", src).is_empty());
    }

    #[test]
    fn unwrap_with_arguments_is_not_a_panic() {
        // Sealer::unwrap(payload) is envelope opening, not Option::unwrap.
        let src = "let m = self.sealer.unwrap(payload)?;\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_match() {
        let src = "// Instant::now() is banned\nlet s = \"Instant::now()\";\n/* HashMap too */\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", src).is_empty());
    }

    #[test]
    fn test_module_is_skipped() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", src).is_empty());
    }

    #[test]
    fn allow_directive_with_reason_suppresses() {
        let same = "let a = b.unwrap(); // lint: allow(E104 checked two lines up)\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", same).is_empty());
        let prev = "// lint: allow(E104 invariant: pool sized to demand)\nlet a = b.unwrap();\n";
        assert!(lint_source("crates/exec/src/x.rs", "exec", prev).is_empty());
    }

    #[test]
    fn allow_directive_without_reason_does_not_suppress() {
        let src = "let a = b.unwrap(); // lint: allow(E104)\n";
        assert_eq!(lint_source("crates/exec/src/x.rs", "exec", src).len(), 1);
        // A directive for a different code does not suppress either.
        let wrong = "let a = b.unwrap(); // lint: allow(E102 not the clock)\n";
        assert_eq!(lint_source("crates/exec/src/x.rs", "exec", wrong).len(), 1);
    }

    #[test]
    fn payload_clone_in_exec_is_warned() {
        let src = "let copy = payload.clone();\nctx.send(to, bytes.clone());\n";
        let found = lint_source("crates/exec/src/x.rs", "exec", src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.code == codes::LINT_PAYLOAD_CLONE
            && d.severity == crate::diagnostic::Severity::Warning));
        // The same source outside the zero-copy crates is not checked.
        assert!(lint_source("crates/store/src/x.rs", "store", src).is_empty());
        // Sharing is the sanctioned fan-out primitive.
        let ok = "ctx.send(to, bytes.share());\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", ok).is_empty());
    }

    #[test]
    fn payload_clone_allow_directive_suppresses() {
        let src = "// lint: allow(W105 corruption path must own a detached copy)\n\
                   let copy = payload.clone();\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", src).is_empty());
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "let s = r#\"contains Instant::now() text\"#;\n";
        assert!(lint_source("crates/sim/src/x.rs", "sim", src).is_empty());
    }

    #[test]
    fn workspace_is_lint_clean() {
        // CARGO_MANIFEST_DIR is crates/analyze; the workspace root is two
        // levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        assert!(root.join("Cargo.toml").is_file(), "bad root {root:?}");
        let findings = lint_workspace(&root);
        assert!(
            findings.is_empty(),
            "workspace must be lint-clean:\n{}",
            crate::diagnostic::render_human(&findings)
        );
    }
}
