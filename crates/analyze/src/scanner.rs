//! The shared brace/item-aware source scanner underneath the
//! source-level analysis layers: the Layer-2 determinism lint
//! ([`crate::lint`]) and the Layer-3 concurrency pass
//! ([`crate::concurrency`]).
//!
//! A [`SourceFile`] is parsed once per analysis run and carries:
//!
//! * the raw lines (directives are matched against these);
//! * the comment/string-stripped lines ([`strip_source`] preserves line
//!   structure, so needle matching never fires inside prose);
//! * a per-line **test mask**: lines belonging to a `#[cfg(test)]` item
//!   are excluded from every source pass. The mask tracks brace depth,
//!   so code *after* a test module is scanned again — test modules are
//!   not assumed to close the file;
//! * a per-line `thread_local!` mask (a thread-local is per-thread by
//!   construction, so the shared-state pass exempts it);
//! * every `lint: allow(CODE reason)` directive, with usage tracking:
//!   a pass that suppresses a finding marks the directive used, and the
//!   stale-directive pass (`W131`) warns about the ones nothing used.
//!
//! Directive lines inside doc comments (`///`, `//!`) are prose, not
//! directives: they neither suppress findings nor count as stale.

use std::cell::Cell;
use std::fs;
use std::path::{Path, PathBuf};

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving line structure, so needle matching never fires inside
/// prose. Handles nested block comments and raw strings.
pub fn strip_source(source: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut out = String::with_capacity(source.len());
    let chars: Vec<char> = source.chars().collect();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Raw string: r"..." or r#"..."# etc.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs. lifetime: a literal closes with a
                    // quote one (escaped) char later.
                    if next == Some('\\') {
                        out.push_str("' '");
                        i += 2; // skip the backslash
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        out.push_str("' '");
                        i += 3;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    // Keep a line-continuation's newline so raw and
                    // stripped line numbering stay aligned.
                    out.push(' ');
                    out.push(if chars.get(i + 1) == Some(&'\n') {
                        '\n'
                    } else {
                        ' '
                    });
                    i += 2;
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                }
                c => {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && chars[i + 1..].iter().take(hashes).all(|&h| h == '#') {
                    state = State::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        }
    }
    out
}

/// Marks every line that belongs to an item annotated with the given
/// attribute needle (e.g. `#[cfg(test)]`): the attribute line itself,
/// then — tracking brace depth — through the closing brace of the item
/// body (or the terminating `;` for brace-less items). Lines after the
/// item are *not* masked.
fn item_mask(stripped_lines: &[String], needle: &str) -> Vec<bool> {
    let mut mask = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        let Some(col) = stripped_lines[i].find(needle) else {
            i += 1;
            continue;
        };
        // Mask from the attribute through the end of the item it
        // annotates: the matching close of the first `{`, or a `;`
        // reached before any brace opened.
        let mut depth = 0usize;
        let mut entered = false;
        let mut j = i;
        let mut c = col + needle.len();
        'item: while j < stripped_lines.len() {
            mask[j] = true;
            let bytes = stripped_lines[j].as_bytes();
            while c < bytes.len() {
                match bytes[c] {
                    b'{' => {
                        depth += 1;
                        entered = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if entered && depth == 0 {
                            break 'item;
                        }
                    }
                    b';' if !entered => break 'item,
                    _ => {}
                }
                c += 1;
            }
            j += 1;
            c = 0;
        }
        i = j + 1;
    }
    mask
}

/// One `lint: allow(CODE reason)` directive, with usage tracking.
#[derive(Debug)]
pub struct Directive {
    /// The diagnostic code the directive waives.
    pub code: String,
    /// 1-based line the directive sits on.
    pub line: usize,
    /// The directive carries a non-empty justification (mandatory for
    /// it to suppress anything).
    pub has_reason: bool,
    /// The directive sits inside a `#[cfg(test)]` region (test code is
    /// never scanned, so such directives are exempt from staleness).
    pub in_test: bool,
    used: Cell<bool>,
}

/// One parsed source file, shared by every source-level pass.
#[derive(Debug)]
pub struct SourceFile {
    /// Path shown in diagnostic locations (workspace-relative).
    pub display_path: String,
    /// The crate directory name under `crates/` (rule filters key on it).
    pub crate_name: String,
    /// Raw source lines.
    pub raw_lines: Vec<String>,
    /// Comment/string-stripped lines; same count as `raw_lines`.
    pub lines: Vec<String>,
    /// Per-line: the line belongs to a `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
    /// Per-line: the line belongs to a `thread_local!` block.
    pub thread_local_mask: Vec<bool>,
    directives: Vec<Directive>,
}

impl SourceFile {
    /// Parses `source` into stripped lines, item masks, and directives.
    pub fn parse(
        display_path: impl Into<String>,
        crate_name: impl Into<String>,
        source: &str,
    ) -> Self {
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let lines: Vec<String> = strip_source(source).lines().map(str::to_string).collect();
        let test_mask = item_mask(&lines, "#[cfg(test)]");
        let thread_local_mask = item_mask(&lines, "thread_local!");
        let directives = collect_directives(&raw_lines, &test_mask);
        SourceFile {
            display_path: display_path.into(),
            crate_name: crate_name.into(),
            raw_lines,
            lines,
            test_mask,
            thread_local_mask,
            directives,
        }
    }

    /// True when a justified allow directive for `code` sits on `line`
    /// (1-based) or the line above. Marks every matching directive used,
    /// so the stale-directive pass can warn about the others.
    pub fn allows(&self, code: &str, line: usize) -> bool {
        let mut hit = false;
        for d in &self.directives {
            if d.code == code && d.has_reason && (d.line == line || d.line + 1 == line) {
                d.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// The directives no pass has (yet) used to suppress a finding,
    /// excluding test-region ones and reason-less ones (a reason-less
    /// directive never suppresses, and the finding it fails to waive is
    /// still reported — that is signal enough).
    pub fn stale_directives(&self) -> impl Iterator<Item = &Directive> {
        self.directives
            .iter()
            .filter(|d| !d.used.get() && !d.in_test && d.has_reason)
    }
}

/// Extracts directives from raw lines. Doc-comment lines (`///`, `//!`)
/// are prose, not directives.
fn collect_directives(raw_lines: &[String], test_mask: &[bool]) -> Vec<Directive> {
    let mut out = Vec::new();
    for (idx, raw) in raw_lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("//!") || trimmed.starts_with("///") {
            continue;
        }
        let Some(pos) = raw.find("lint: allow(") else {
            continue;
        };
        let rest = &raw[pos + "lint: allow(".len()..];
        let code: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if code.is_empty() {
            continue;
        }
        let has_reason = rest[code.len()..].find(')').is_some_and(|close| {
            rest[code.len()..code.len() + close]
                .chars()
                .any(char::is_alphanumeric)
        });
        out.push(Directive {
            code,
            line: idx + 1,
            has_reason,
            in_test: test_mask.get(idx).copied().unwrap_or(false),
            used: Cell::new(false),
        });
    }
    out
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
pub fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Parses every `crates/<name>/src/**/*.rs` under `workspace_root`,
/// sorted by crate then path.
pub fn load_workspace(workspace_root: &Path) -> Vec<SourceFile> {
    let crates_dir = workspace_root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|entries| {
            entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();

    let mut out = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let mut files = Vec::new();
        rust_files(&crate_dir.join("src"), &mut files);
        for file in files {
            let Ok(source) = fs::read_to_string(&file) else {
                continue;
            };
            let display = file
                .strip_prefix(workspace_root)
                .unwrap_or(&file)
                .display()
                .to_string();
            out.push(SourceFile::parse(display, crate_name.clone(), &source));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_preserves_line_structure() {
        let src =
            "let a = 1; // trailing\nlet s = \"two\nlines\";\n/* block\nstill */ let b = 2;\n";
        let stripped = strip_source(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(!stripped.contains("trailing"));
        assert!(!stripped.contains("two"));
        assert!(stripped.contains("let b = 2;"));
    }

    #[test]
    fn test_mask_tracks_brace_depth() {
        let src = "fn a() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { nested(); }\n\
                   }\n\
                   fn after() {}\n";
        let f = SourceFile::parse("x.rs", "sim", src);
        assert_eq!(
            f.test_mask,
            vec![false, true, true, true, true, false],
            "{:?}",
            f.test_mask
        );
    }

    #[test]
    fn braceless_test_item_masks_to_semicolon() {
        let src = "#[cfg(test)]\nuse helpers::fixture;\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", "sim", src);
        assert_eq!(f.test_mask, vec![true, true, false]);
    }

    #[test]
    fn thread_local_mask_covers_the_block() {
        let src = "thread_local! {\n    static S: RefCell<u8> = RefCell::new(0);\n}\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", "live", src);
        assert_eq!(f.thread_local_mask, vec![true, true, true, false]);
    }

    #[test]
    fn directives_are_collected_and_marked_used() {
        let src = "// lint: allow(E102 fixture clock)\nlet t = now();\n\
                   // lint: allow(E104 never used here)\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs", "sim", src);
        assert!(f.allows("E102", 2));
        assert!(!f.allows("E103", 2));
        let stale: Vec<&str> = f.stale_directives().map(|d| d.code.as_str()).collect();
        assert_eq!(stale, vec!["E104"]);
    }

    #[test]
    fn reasonless_and_doc_comment_directives_do_not_count() {
        let src = "// lint: allow(E104)\nlet a = b.unwrap();\n\
                   //! prose: lint: allow(E102 syntax example)\n";
        let f = SourceFile::parse("x.rs", "sim", src);
        assert!(!f.allows("E104", 2));
        assert_eq!(f.stale_directives().count(), 0);
    }

    #[test]
    fn test_region_directives_are_not_stale() {
        let src =
            "#[cfg(test)]\nmod tests {\n    // lint: allow(E104 test fixture)\n    fn t() {}\n}\n";
        let f = SourceFile::parse("x.rs", "sim", src);
        assert_eq!(f.stale_directives().count(), 0);
    }
}
