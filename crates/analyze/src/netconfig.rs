//! Multi-process deployment (`edgelet-net`) configuration checks.
//!
//! The socket runtime adds three configuration surfaces that deserve a
//! diagnostic before any process binds or dials:
//!
//! * `E150` — a deployment that cannot form: an unresolvable listen or
//!   connect address, a daemon told to dial its own listen address
//!   (duplicate endpoint), a declared `--transport` that contradicts
//!   the address scheme, or a zero remote worker count;
//! * `W151` — TCP reconnects without explicit backoff bounds: across a
//!   real network the defaults may thrash a flaky link or sit idle on a
//!   fast one, so the bounds should be a deliberate choice;
//! * `W152` — a handshake timeout at or beyond the query deadline: a
//!   worker that stalls in handshake eats the entire query budget
//!   before the daemon gives up on it.
//!
//! The address grammar is deliberately re-validated here (not imported
//! from `edgelet-net`): the analyzer stays linkable without the socket
//! stack, and the two parsers are pinned against each other by the CLI
//! integration tests.

use crate::diagnostic::{codes, Diagnostic};

/// The deployment surface of one `serve`/`submit`/`worker` invocation.
/// Fields the invocation does not carry stay `None`/`false`.
#[derive(Debug, Default, Clone)]
pub struct NetSurface<'a> {
    /// `--listen` address (daemon mode).
    pub listen: Option<&'a str>,
    /// `--connect` address (client or worker mode).
    pub connect: Option<&'a str>,
    /// Declared `--transport` label (`uds` | `tcp`), if any.
    pub transport: Option<&'a str>,
    /// Remote worker processes per epoch (`Some` in daemon mode).
    pub expected_workers: Option<usize>,
    /// Both reconnect backoff bounds were given explicitly.
    pub explicit_backoff: bool,
    /// Handshake deadline in milliseconds, when the surface has one.
    pub handshake_timeout_ms: Option<u64>,
    /// The query's virtual deadline in seconds, when known.
    pub deadline_secs: Option<f64>,
}

/// The address scheme a well-formed endpoint declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheme {
    Uds,
    Tcp,
}

impl Scheme {
    fn label(self) -> &'static str {
        match self {
            Scheme::Uds => "uds",
            Scheme::Tcp => "tcp",
        }
    }
}

/// Validates `uds:<path>` / `tcp:<host>:<port>` without resolving
/// anything; returns the scheme or a description of what is wrong.
fn parse_addr(raw: &str) -> Result<Scheme, String> {
    if let Some(path) = raw.strip_prefix("uds:") {
        if path.is_empty() {
            return Err("uds address has an empty path".into());
        }
        return Ok(Scheme::Uds);
    }
    if let Some(rest) = raw.strip_prefix("tcp:") {
        let Some((host, port)) = rest.rsplit_once(':') else {
            return Err("tcp address needs `tcp:<host>:<port>`".into());
        };
        if host.is_empty() {
            return Err("tcp address has an empty host".into());
        }
        if port.parse::<u16>().is_err() {
            return Err(format!("tcp port `{port}` is not a u16"));
        }
        return Ok(Scheme::Tcp);
    }
    Err("address must start with `uds:` or `tcp:`".into())
}

/// Checks one deployment surface; see the module docs for the codes.
pub fn check_net_config(surface: &NetSurface<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut schemes: Vec<Scheme> = Vec::new();
    for (what, addr) in [
        ("net.listen", surface.listen),
        ("net.connect", surface.connect),
    ] {
        let Some(addr) = addr else { continue };
        match parse_addr(addr) {
            Ok(scheme) => schemes.push(scheme),
            Err(why) => out.push(
                Diagnostic::error(
                    codes::NET_ENDPOINT_INVALID,
                    what,
                    format!("unresolvable address `{addr}`: {why}"),
                )
                .with_help("addresses are `uds:<path>` or `tcp:<host>:<port>`"),
            ),
        }
    }
    if let (Some(listen), Some(connect)) = (surface.listen, surface.connect) {
        if listen == connect {
            out.push(
                Diagnostic::error(
                    codes::NET_ENDPOINT_INVALID,
                    "net.connect",
                    format!(
                        "listen and connect name the same endpoint `{listen}`: \
                         a daemon dialing its own socket deadlocks the accept loop"
                    ),
                )
                .with_help("point --connect at a *different* daemon's address"),
            );
        }
    }
    if let Some(declared) = surface.transport {
        for scheme in &schemes {
            if scheme.label() != declared {
                out.push(
                    Diagnostic::error(
                        codes::NET_ENDPOINT_INVALID,
                        "net.transport",
                        format!(
                            "declared transport `{declared}` contradicts the \
                             `{}` address scheme",
                            scheme.label()
                        ),
                    )
                    .with_help("drop --transport or make it match the address"),
                );
            }
        }
    }
    if surface.expected_workers == Some(0) {
        out.push(
            Diagnostic::error(
                codes::NET_ENDPOINT_INVALID,
                "net.expected_workers",
                "0 remote workers: the daemon can never assemble a fleet, \
                 so every epoch silently falls back in-process",
            )
            .with_help("set --expected-workers >= 1, or drop --listen"),
        );
    }
    if surface.connect.is_some() && schemes.contains(&Scheme::Tcp) && !surface.explicit_backoff {
        out.push(
            Diagnostic::warning(
                codes::NET_TCP_DEFAULT_BACKOFF,
                "net.backoff",
                "TCP reconnect without explicit backoff bounds: the defaults \
                 (50ms..2s) may thrash a flaky WAN link or idle a fast LAN",
            )
            .with_help("set --backoff-initial-ms and --backoff-max-ms deliberately"),
        );
    }
    if let (Some(ms), Some(deadline)) = (surface.handshake_timeout_ms, surface.deadline_secs) {
        if deadline > 0.0 && ms as f64 / 1_000.0 >= deadline {
            out.push(
                Diagnostic::warning(
                    codes::NET_HANDSHAKE_OVER_DEADLINE,
                    "net.handshake_timeout",
                    format!(
                        "handshake timeout of {ms} ms is at or beyond the query \
                         deadline ({deadline} s): one stalled handshake can eat \
                         the whole query budget"
                    ),
                )
                .with_help("keep --handshake-timeout-ms well below the deadline"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Severity;

    #[test]
    fn well_formed_surfaces_are_clean() {
        let s = NetSurface {
            listen: Some("uds:/tmp/edgelet.sock"),
            expected_workers: Some(2),
            handshake_timeout_ms: Some(10_000),
            deadline_secs: Some(600.0),
            ..NetSurface::default()
        };
        assert!(check_net_config(&s).is_empty());
        let s = NetSurface {
            connect: Some("tcp:127.0.0.1:7000"),
            explicit_backoff: true,
            ..NetSurface::default()
        };
        assert!(check_net_config(&s).is_empty());
    }

    #[test]
    fn bad_addresses_are_e150() {
        for addr in [
            "ipc:/tmp/x",
            "uds:",
            "tcp:127.0.0.1",
            "tcp::7000",
            "tcp:h:70000",
        ] {
            let s = NetSurface {
                listen: Some(addr),
                ..NetSurface::default()
            };
            let found = check_net_config(&s);
            assert_eq!(found.len(), 1, "{addr}: {found:?}");
            assert_eq!(found[0].code, codes::NET_ENDPOINT_INVALID, "{addr}");
            assert_eq!(found[0].severity, Severity::Error);
        }
    }

    #[test]
    fn self_dial_and_zero_workers_are_e150() {
        let s = NetSurface {
            listen: Some("uds:/tmp/a.sock"),
            connect: Some("uds:/tmp/a.sock"),
            ..NetSurface::default()
        };
        let found = check_net_config(&s);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("same endpoint"), "{found:?}");
        let s = NetSurface {
            listen: Some("uds:/tmp/a.sock"),
            expected_workers: Some(0),
            ..NetSurface::default()
        };
        let found = check_net_config(&s);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("0 remote workers"), "{found:?}");
    }

    #[test]
    fn transport_scheme_mismatch_is_e150() {
        let s = NetSurface {
            listen: Some("uds:/tmp/a.sock"),
            transport: Some("tcp"),
            ..NetSurface::default()
        };
        let found = check_net_config(&s);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::NET_ENDPOINT_INVALID);
        assert!(found[0].message.contains("contradicts"), "{found:?}");
        let s = NetSurface {
            listen: Some("uds:/tmp/a.sock"),
            transport: Some("uds"),
            ..NetSurface::default()
        };
        assert!(check_net_config(&s).is_empty());
    }

    #[test]
    fn tcp_default_backoff_warns_w151() {
        let s = NetSurface {
            connect: Some("tcp:10.0.0.2:7000"),
            ..NetSurface::default()
        };
        let found = check_net_config(&s);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::NET_TCP_DEFAULT_BACKOFF);
        assert_eq!(found[0].severity, Severity::Warning);
        // UDS reconnects are local; the defaults are fine.
        let s = NetSurface {
            connect: Some("uds:/tmp/a.sock"),
            ..NetSurface::default()
        };
        assert!(check_net_config(&s).is_empty());
    }

    #[test]
    fn handshake_past_deadline_warns_w152() {
        let s = NetSurface {
            listen: Some("uds:/tmp/a.sock"),
            expected_workers: Some(2),
            handshake_timeout_ms: Some(700_000),
            deadline_secs: Some(600.0),
            ..NetSurface::default()
        };
        let found = check_net_config(&s);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, codes::NET_HANDSHAKE_OVER_DEADLINE);
        assert_eq!(found[0].severity, Severity::Warning);
        // Exactly at the deadline still warns; below it is clean.
        let s = NetSurface {
            handshake_timeout_ms: Some(600_000),
            deadline_secs: Some(600.0),
            ..NetSurface::default()
        };
        assert_eq!(check_net_config(&s).len(), 1);
        let s = NetSurface {
            handshake_timeout_ms: Some(10_000),
            deadline_secs: Some(600.0),
            ..NetSurface::default()
        };
        assert!(check_net_config(&s).is_empty());
    }

    #[test]
    fn problems_compose() {
        let s = NetSurface {
            listen: Some("ipc:bad"),
            connect: Some("tcp:h:1"),
            transport: Some("uds"),
            expected_workers: Some(0),
            handshake_timeout_ms: Some(1_000_000),
            deadline_secs: Some(600.0),
            ..NetSurface::default()
        };
        let found = check_net_config(&s);
        assert!(found.len() >= 4, "{found:?}");
    }
}
