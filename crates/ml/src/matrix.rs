//! Contiguous row-major point storage.
//!
//! A [`Matrix`] holds `rows × dim` values in one flat allocation, replacing
//! the previous `Vec<Vec<f64>>` ("vector of points") layout. Every kernel
//! in [`crate::kmeans`] walks rows as `&[f64]` slices of the same buffer,
//! so a pass over the dataset is a linear scan instead of a pointer chase
//! per point.

use edgelet_util::{Error, Result};

/// A dense row-major `rows × dim` matrix of `f64` in a single allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    dim: usize,
}

impl Matrix {
    /// Creates an empty matrix whose rows will have `dim` columns.
    pub fn new(dim: usize) -> Self {
        Self {
            data: Vec::new(),
            rows: 0,
            dim,
        }
    }

    /// Creates an empty matrix with room for `rows` rows of `dim` columns.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        Self {
            data: Vec::with_capacity(dim * rows),
            rows: 0,
            dim,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    pub fn from_vec(data: Vec<f64>, dim: usize) -> Result<Self> {
        if dim == 0 {
            if !data.is_empty() {
                return Err(Error::InvalidConfig(
                    "flat buffer must be empty when dim is 0".into(),
                ));
            }
            return Ok(Self::new(0));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::InvalidConfig(format!(
                "flat buffer of {} values is not a multiple of dim {}",
                data.len(),
                dim
            )));
        }
        let rows = data.len() / dim;
        Ok(Self { data, rows, dim })
    }

    /// Builds a matrix from explicit rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut out = Self::with_capacity(dim, rows.len());
        for r in rows {
            out.push_row(r);
        }
        out
    }

    /// Number of rows.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Columns per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.dim..i * self.dim + self.dim]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.dim..i * self.dim + self.dim]
    }

    /// Iterates rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + Clone + '_ {
        let dim = self.dim;
        (0..self.rows).map(move |i| &self.data[i * dim..i * dim + dim])
    }

    /// Appends a row. Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.dim,
            "row of {} values pushed into a dim-{} matrix",
            row.len(),
            self.dim
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// New matrix holding the selected rows, in index order (duplicates
    /// allowed) — the mini-batch sampling primitive.
    pub fn gather(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push_row(self.row(i));
        }
        out
    }

    /// Materializes the rows (interop with row-oriented callers).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = Matrix::new(2);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let collected: Vec<&[f64]> = m.rows().collect();
        assert_eq!(collected, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn from_vec_validates_shape() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3).unwrap();
        assert_eq!(m.len(), 2);
        assert!(Matrix::from_vec(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(Matrix::from_vec(vec![1.0], 0).is_err());
        assert!(Matrix::from_vec(vec![], 0).unwrap().is_empty());
    }

    #[test]
    fn from_rows_and_back() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = Matrix::from_rows(&rows);
        assert_eq!(m.to_rows(), rows);
        assert!(Matrix::from_rows(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "pushed into a dim-2 matrix")]
    fn ragged_push_panics() {
        let mut m = Matrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        Matrix::new(2).row(0);
    }

    #[test]
    fn gather_selects_with_duplicates() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let g = m.gather(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn zero_dim_rows_are_counted() {
        let mut m = Matrix::new(0);
        m.push_row(&[]);
        m.push_row(&[]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[] as &[f64]);
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    fn row_mut_edits_in_place() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        m.row_mut(0)[1] = 9.0;
        assert_eq!(m.row(0), &[1.0, 9.0]);
    }
}
