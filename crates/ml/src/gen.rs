//! Synthetic clusterable data: isotropic Gaussian mixtures.

use crate::matrix::Matrix;
use edgelet_util::rng::DetRng;

/// Samples `n` points from a mixture of isotropic Gaussians given as
/// `(center, standard deviation)` pairs, components equally weighted.
/// Returns the points (one matrix row each) and their true component
/// labels.
pub fn gaussian_mixture(
    components: &[(Vec<f64>, f64)],
    n: usize,
    rng: &mut DetRng,
) -> (Matrix, Vec<usize>) {
    assert!(
        !components.is_empty(),
        "mixture needs at least one component"
    );
    let dim = components[0].0.len();
    let mut points = Matrix::with_capacity(dim, n);
    let mut labels = Vec::with_capacity(n);
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        let c = rng.range(0..components.len());
        let (center, sd) = &components[c];
        for (out, &m) in row.iter_mut().zip(center) {
            *out = rng.normal(m, *sd);
        }
        points.push_row(&row);
        labels.push(c);
    }
    (points, labels)
}

/// Extracts numeric feature vectors from store rows over named columns
/// into one flat matrix, skipping rows with nulls or non-numeric values
/// in those columns.
pub fn rows_to_points(
    schema: &edgelet_store::Schema,
    rows: &[edgelet_store::Row],
    columns: &[&str],
) -> edgelet_util::Result<Matrix> {
    let idx: Vec<usize> = columns
        .iter()
        .map(|c| schema.index_of(c))
        .collect::<edgelet_util::Result<_>>()?;
    let mut out = Matrix::with_capacity(idx.len(), rows.len());
    let mut p = Vec::with_capacity(idx.len());
    'rows: for row in rows {
        p.clear();
        for &i in &idx {
            match row.get(i).and_then(|v| v.as_f64()) {
                Some(x) => p.push(x),
                None => continue 'rows,
            }
        }
        out.push_row(&p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_store::{synth, Row, Value};

    #[test]
    fn mixture_shape_and_labels() {
        let mut rng = DetRng::new(1);
        let (points, labels) = gaussian_mixture(
            &[(vec![0.0, 0.0], 1.0), (vec![100.0, 100.0], 1.0)],
            1000,
            &mut rng,
        );
        assert_eq!(points.len(), 1000);
        assert_eq!(points.dim(), 2);
        assert_eq!(labels.len(), 1000);
        // Labels match proximity for well-separated components.
        for (p, &l) in points.rows().zip(&labels) {
            let near0 = p[0] < 50.0;
            assert_eq!(near0, l == 0, "point {p:?} label {l}");
        }
        // Roughly balanced.
        let ones = labels.iter().filter(|&&l| l == 1).count();
        assert!((ones as f64 - 500.0).abs() < 60.0, "{ones}");
    }

    #[test]
    fn rows_to_points_extracts_and_skips() {
        let mut rng = DetRng::new(2);
        let store = synth::health_store(50, &mut rng);
        let pts = rows_to_points(store.schema(), store.rows(), &["age", "bmi"]).unwrap();
        assert_eq!(pts.len(), 50);
        assert_eq!(pts.dim(), 2);

        // Nulls are skipped.
        let schema = store.schema().clone();
        let mut row_vals: Vec<Value> = store.rows()[0].values().to_vec();
        row_vals[0] = Value::Null;
        let rows = vec![Row::new(row_vals), store.rows()[1].clone()];
        let pts = rows_to_points(&schema, &rows, &["age", "bmi"]).unwrap();
        assert_eq!(pts.len(), 1);

        // Unknown column errors.
        assert!(rows_to_points(&schema, &rows, &["zzz"]).is_err());
        // Text column yields no points (all skipped).
        let pts = rows_to_points(&schema, &rows, &["sex"]).unwrap();
        assert!(pts.is_empty());
    }
}
