//! K-Means: k-means++ seeding, Lloyd iterations, mini-batch refinement.

use edgelet_util::rng::DetRng;
use edgelet_util::{Error, Result};

/// A data point in feature space.
pub type Point = Vec<f64>;

/// K-Means configuration.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Relative inertia improvement below which iteration stops.
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_iterations: 50,
            tolerance: 1e-6,
        }
    }
}

/// K-Means state: centroids plus the weight (point count) behind each.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centers.
    pub centroids: Vec<Point>,
    /// Points assigned to each centroid during the last refinement.
    pub weights: Vec<f64>,
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest centroid.
pub fn nearest(centroids: &[Point], p: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(c, p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Sum of squared distances of points to their nearest centroid.
pub fn inertia(centroids: &[Point], points: &[Point]) -> f64 {
    points
        .iter()
        .map(|p| dist2(&centroids[nearest(centroids, p)], p))
        .sum()
}

/// k-means++ seeding (Arthur & Vassilvitskii).
pub fn kmeans_pp_seed(points: &[Point], k: usize, rng: &mut DetRng) -> Result<Vec<Point>> {
    if points.is_empty() {
        return Err(Error::InvalidConfig(
            "cannot seed k-means on no points".into(),
        ));
    }
    if k == 0 {
        return Err(Error::InvalidConfig("k must be positive".into()));
    }
    let k = k.min(points.len());
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    centroids.push(points[rng.range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            points[rng.range(0..points.len())].clone()
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            points[chosen].clone()
        };
        for (i, p) in points.iter().enumerate() {
            let d = dist2(p, &next);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        centroids.push(next);
    }
    Ok(centroids)
}

impl KMeans {
    /// Seeds with k-means++ over the given points.
    pub fn seed(points: &[Point], config: &KMeansConfig, rng: &mut DetRng) -> Result<Self> {
        let centroids = kmeans_pp_seed(points, config.k, rng)?;
        let weights = vec![0.0; centroids.len()];
        Ok(Self { centroids, weights })
    }

    /// Creates a state from explicit centroids (e.g. received knowledge).
    pub fn from_centroids(centroids: Vec<Point>) -> Self {
        let weights = vec![0.0; centroids.len()];
        Self { centroids, weights }
    }

    /// Runs Lloyd iterations until convergence or the iteration cap.
    /// Returns the number of iterations performed.
    pub fn fit(&mut self, points: &[Point], config: &KMeansConfig) -> Result<usize> {
        if points.is_empty() {
            return Ok(0);
        }
        let mut prev_inertia = f64::INFINITY;
        for iter in 0..config.max_iterations {
            let moved = self.lloyd_step(points);
            let cur = inertia(&self.centroids, points);
            let improved = (prev_inertia - cur) / prev_inertia.max(1e-300);
            prev_inertia = cur;
            if !moved || improved.abs() < config.tolerance {
                return Ok(iter + 1);
            }
        }
        Ok(config.max_iterations)
    }

    /// One Lloyd step: assign + recompute. Returns whether any centroid
    /// moved. Also refreshes `weights` with the assignment counts.
    pub fn lloyd_step(&mut self, points: &[Point]) -> bool {
        let k = self.centroids.len();
        if k == 0 || points.is_empty() {
            return false;
        }
        let dim = self.centroids[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for p in points {
            let c = nearest(&self.centroids, p);
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut moved = false;
        for i in 0..k {
            if counts[i] == 0 {
                // Empty cluster keeps its previous position.
                self.weights[i] = 0.0;
                continue;
            }
            let new: Point = sums[i].iter().map(|s| s / counts[i] as f64).collect();
            if dist2(&new, &self.centroids[i]) > 0.0 {
                moved = true;
            }
            self.centroids[i] = new;
            self.weights[i] = counts[i] as f64;
        }
        moved
    }

    /// Mini-batch update (Sculley, WWW'10): each batch point pulls its
    /// nearest centroid with a per-centroid learning rate `1/n_c`.
    pub fn mini_batch_step(&mut self, batch: &[Point]) {
        for p in batch {
            let c = nearest(&self.centroids, p);
            self.weights[c] += 1.0;
            let eta = 1.0 / self.weights[c];
            for (ci, xi) in self.centroids[c].iter_mut().zip(p) {
                *ci += eta * (xi - *ci);
            }
        }
    }

    /// Cluster assignment for each point.
    pub fn assign(&self, points: &[Point]) -> Vec<usize> {
        points.iter().map(|p| nearest(&self.centroids, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gaussian_mixture;

    fn three_blobs(n: usize, seed: u64) -> (Vec<Point>, Vec<usize>) {
        gaussian_mixture(
            &[
                (vec![0.0, 0.0], 0.5),
                (vec![10.0, 0.0], 0.5),
                (vec![0.0, 10.0], 0.5),
            ],
            n,
            &mut DetRng::new(seed),
        )
    }

    #[test]
    fn distances() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(nearest(&[vec![0.0], vec![10.0]], &[6.0]), 1);
        assert_eq!(inertia(&[vec![0.0]], &[vec![1.0], vec![-1.0]]), 2.0);
    }

    #[test]
    fn seeding_picks_distinct_spread_points() {
        // k-means++ lands one seed per well-separated blob with high (not
        // certain) probability; check the success rate over many seeds.
        let (points, _) = three_blobs(300, 1);
        let mut covered = 0;
        for seed in 0..20 {
            let mut rng = DetRng::new(seed);
            let seeds = kmeans_pp_seed(&points, 3, &mut rng).unwrap();
            assert_eq!(seeds.len(), 3);
            let mut blob_hits = [false; 3];
            for s in &seeds {
                let blob = nearest(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]], s);
                blob_hits[blob] = true;
            }
            if blob_hits.iter().all(|&h| h) {
                covered += 1;
            }
        }
        assert!(
            covered >= 15,
            "only {covered}/20 seedings covered all blobs"
        );
    }

    #[test]
    fn seeding_edge_cases() {
        let mut rng = DetRng::new(3);
        assert!(kmeans_pp_seed(&[], 3, &mut rng).is_err());
        assert!(kmeans_pp_seed(&[vec![1.0]], 0, &mut rng).is_err());
        // k > points clamps.
        let seeds = kmeans_pp_seed(&[vec![1.0], vec![2.0]], 5, &mut rng).unwrap();
        assert_eq!(seeds.len(), 2);
        // Identical points don't loop forever.
        let same = vec![vec![7.0]; 10];
        let seeds = kmeans_pp_seed(&same, 3, &mut rng).unwrap();
        assert_eq!(seeds.len(), 3);
    }

    #[test]
    fn lloyd_recovers_blobs() {
        let (points, _) = three_blobs(600, 4);
        let cfg = KMeansConfig {
            k: 3,
            max_iterations: 100,
            tolerance: 1e-9,
        };
        let mut rng = DetRng::new(5);
        let mut km = KMeans::seed(&points, &cfg, &mut rng).unwrap();
        let iters = km.fit(&points, &cfg).unwrap();
        assert!(iters >= 1);
        // Each true center must be close to some centroid.
        for truth in [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]] {
            let d = km
                .centroids
                .iter()
                .map(|c| dist2(c, &truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 0.5, "center {truth:?} missed: {:?}", km.centroids);
        }
        // Inertia near the noise floor: 600 points * 2 dims * 0.25 var.
        let final_inertia = inertia(&km.centroids, &points);
        assert!(final_inertia < 600.0, "inertia {final_inertia}");
        // Weights hold the assignment counts.
        let total_w: f64 = km.weights.iter().sum();
        assert_eq!(total_w as usize, 600);
    }

    #[test]
    fn fit_is_deterministic() {
        let (points, _) = three_blobs(200, 6);
        let cfg = KMeansConfig::default();
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            let mut km = KMeans::seed(&points, &cfg, &mut rng).unwrap();
            km.fit(&points, &cfg).unwrap();
            km.centroids
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn mini_batch_improves_inertia() {
        let (points, _) = three_blobs(500, 7);
        let mut rng = DetRng::new(8);
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let mut km = KMeans::seed(&points, &cfg, &mut rng).unwrap();
        let before = inertia(&km.centroids, &points);
        for chunk in points.chunks(50) {
            km.mini_batch_step(chunk);
        }
        let after = inertia(&km.centroids, &points);
        assert!(after <= before, "before {before}, after {after}");
    }

    #[test]
    fn empty_inputs_are_safe() {
        let cfg = KMeansConfig::default();
        let mut km = KMeans::from_centroids(vec![vec![0.0], vec![1.0]]);
        assert_eq!(km.fit(&[], &cfg).unwrap(), 0);
        assert!(!km.lloyd_step(&[]));
        km.mini_batch_step(&[]);
        assert!(km.assign(&[]).is_empty());
    }
}
