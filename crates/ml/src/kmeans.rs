//! K-Means: k-means++ seeding, Lloyd iterations, mini-batch refinement.
//!
//! All kernels operate on the flat row-major [`Matrix`] layout: points and
//! centroids live in one contiguous buffer each, and the assignment /
//! centroid-update passes run over `&[f64]` slices with a reusable
//! [`LloydScratch`] instead of allocating per step. The arithmetic keeps
//! the exact accumulation order of the original row-oriented code, so
//! results are bit-identical.

use crate::matrix::Matrix;
use edgelet_util::rng::DetRng;
use edgelet_util::{Error, Result};

/// K-Means configuration.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Relative inertia improvement below which iteration stops.
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 4,
            max_iterations: 50,
            tolerance: 1e-6,
        }
    }
}

/// K-Means state: centroids plus the weight (point count) behind each.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centers, one row per centroid.
    pub centroids: Matrix,
    /// Points assigned to each centroid during the last refinement.
    pub weights: Vec<f64>,
}

/// Reusable accumulators for [`KMeans::lloyd_step_with`]: flat `k × dim`
/// per-cluster sums plus assignment counts, allocated once and cleared in
/// place between steps.
#[derive(Debug, Default)]
pub struct LloydScratch {
    sums: Vec<f64>,
    counts: Vec<usize>,
}

impl LloydScratch {
    fn reset(&mut self, k: usize, dim: usize) {
        self.sums.clear();
        self.sums.resize(k * dim, 0.0);
        self.counts.clear();
        self.counts.resize(k, 0);
    }
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index of the nearest centroid.
pub fn nearest(centroids: &Matrix, p: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.rows().enumerate() {
        let d = dist2(c, p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Sum of squared distances of points to their nearest centroid.
pub fn inertia(centroids: &Matrix, points: &Matrix) -> f64 {
    points
        .rows()
        .map(|p| dist2(centroids.row(nearest(centroids, p)), p))
        .sum()
}

/// k-means++ seeding (Arthur & Vassilvitskii).
pub fn kmeans_pp_seed(points: &Matrix, k: usize, rng: &mut DetRng) -> Result<Matrix> {
    if points.is_empty() {
        return Err(Error::InvalidConfig(
            "cannot seed k-means on no points".into(),
        ));
    }
    if k == 0 {
        return Err(Error::InvalidConfig("k must be positive".into()));
    }
    let k = k.min(points.len());
    let mut centroids = Matrix::with_capacity(points.dim(), k);
    centroids.push_row(points.row(rng.range(0..points.len())));
    let mut d2: Vec<f64> = points.rows().map(|p| dist2(p, centroids.row(0))).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.range(0..points.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = points.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push_row(points.row(next));
        let next = centroids.row(centroids.len() - 1);
        for (i, p) in points.rows().enumerate() {
            let d = dist2(p, next);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    Ok(centroids)
}

impl KMeans {
    /// Seeds with k-means++ over the given points.
    pub fn seed(points: &Matrix, config: &KMeansConfig, rng: &mut DetRng) -> Result<Self> {
        let centroids = kmeans_pp_seed(points, config.k, rng)?;
        let weights = vec![0.0; centroids.len()];
        Ok(Self { centroids, weights })
    }

    /// Creates a state from explicit centroids (e.g. received knowledge).
    pub fn from_centroids(centroids: Matrix) -> Self {
        let weights = vec![0.0; centroids.len()];
        Self { centroids, weights }
    }

    /// Runs Lloyd iterations until convergence or the iteration cap.
    /// Returns the number of iterations performed.
    pub fn fit(&mut self, points: &Matrix, config: &KMeansConfig) -> Result<usize> {
        if points.is_empty() {
            return Ok(0);
        }
        let mut scratch = LloydScratch::default();
        let mut prev_inertia = f64::INFINITY;
        for iter in 0..config.max_iterations {
            let moved = self.lloyd_step_with(points, &mut scratch);
            let cur = inertia(&self.centroids, points);
            let improved = (prev_inertia - cur) / prev_inertia.max(1e-300);
            prev_inertia = cur;
            if !moved || improved.abs() < config.tolerance {
                return Ok(iter + 1);
            }
        }
        Ok(config.max_iterations)
    }

    /// One Lloyd step with internal (one-shot) scratch. Prefer
    /// [`Self::lloyd_step_with`] in loops.
    pub fn lloyd_step(&mut self, points: &Matrix) -> bool {
        let mut scratch = LloydScratch::default();
        self.lloyd_step_with(points, &mut scratch)
    }

    /// One Lloyd step: assign + recompute, accumulating into `scratch`
    /// (cleared on entry, reusable across steps). Returns whether any
    /// centroid moved. Also refreshes `weights` with assignment counts.
    pub fn lloyd_step_with(&mut self, points: &Matrix, scratch: &mut LloydScratch) -> bool {
        let k = self.centroids.len();
        if k == 0 || points.is_empty() {
            return false;
        }
        let dim = self.centroids.dim();
        scratch.reset(k, dim);
        for p in points.rows() {
            let c = nearest(&self.centroids, p);
            scratch.counts[c] += 1;
            let sum = &mut scratch.sums[c * dim..c * dim + dim];
            for (s, x) in sum.iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut moved = false;
        for i in 0..k {
            if scratch.counts[i] == 0 {
                // Empty cluster keeps its previous position.
                self.weights[i] = 0.0;
                continue;
            }
            // Turn the sum row into the new centroid in place, then compare
            // with the previous position before overwriting it.
            let sum = &mut scratch.sums[i * dim..i * dim + dim];
            for s in sum.iter_mut() {
                *s /= scratch.counts[i] as f64;
            }
            if dist2(sum, self.centroids.row(i)) > 0.0 {
                moved = true;
            }
            self.centroids.row_mut(i).copy_from_slice(sum);
            self.weights[i] = scratch.counts[i] as f64;
        }
        moved
    }

    /// Mini-batch update (Sculley, WWW'10): each batch point pulls its
    /// nearest centroid with a per-centroid learning rate `1/n_c`.
    pub fn mini_batch_step(&mut self, batch: &Matrix) {
        for b in 0..batch.len() {
            let p = batch.row(b);
            let c = nearest(&self.centroids, p);
            self.weights[c] += 1.0;
            let eta = 1.0 / self.weights[c];
            for (ci, xi) in self.centroids.row_mut(c).iter_mut().zip(p) {
                *ci += eta * (xi - *ci);
            }
        }
    }

    /// Cluster assignment for each point.
    pub fn assign(&self, points: &Matrix) -> Vec<usize> {
        points.rows().map(|p| nearest(&self.centroids, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gaussian_mixture;

    fn three_blobs(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        gaussian_mixture(
            &[
                (vec![0.0, 0.0], 0.5),
                (vec![10.0, 0.0], 0.5),
                (vec![0.0, 10.0], 0.5),
            ],
            n,
            &mut DetRng::new(seed),
        )
    }

    #[test]
    fn distances() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let cs = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        assert_eq!(nearest(&cs, &[6.0]), 1);
        let c = Matrix::from_rows(&[vec![0.0]]);
        let pts = Matrix::from_rows(&[vec![1.0], vec![-1.0]]);
        assert_eq!(inertia(&c, &pts), 2.0);
    }

    #[test]
    fn seeding_picks_distinct_spread_points() {
        // k-means++ lands one seed per well-separated blob with high (not
        // certain) probability; check the success rate over many seeds.
        let (points, _) = three_blobs(300, 1);
        let truth = Matrix::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]]);
        let mut covered = 0;
        for seed in 0..20 {
            let mut rng = DetRng::new(seed);
            let seeds = kmeans_pp_seed(&points, 3, &mut rng).unwrap();
            assert_eq!(seeds.len(), 3);
            let mut blob_hits = [false; 3];
            for s in seeds.rows() {
                blob_hits[nearest(&truth, s)] = true;
            }
            if blob_hits.iter().all(|&h| h) {
                covered += 1;
            }
        }
        assert!(
            covered >= 15,
            "only {covered}/20 seedings covered all blobs"
        );
    }

    #[test]
    fn seeding_edge_cases() {
        let mut rng = DetRng::new(3);
        assert!(kmeans_pp_seed(&Matrix::new(1), 3, &mut rng).is_err());
        let one = Matrix::from_rows(&[vec![1.0]]);
        assert!(kmeans_pp_seed(&one, 0, &mut rng).is_err());
        // k > points clamps.
        let two = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let seeds = kmeans_pp_seed(&two, 5, &mut rng).unwrap();
        assert_eq!(seeds.len(), 2);
        // Identical points don't loop forever.
        let same = Matrix::from_rows(&vec![vec![7.0]; 10]);
        let seeds = kmeans_pp_seed(&same, 3, &mut rng).unwrap();
        assert_eq!(seeds.len(), 3);
    }

    #[test]
    fn lloyd_recovers_blobs() {
        let (points, _) = three_blobs(600, 4);
        let cfg = KMeansConfig {
            k: 3,
            max_iterations: 100,
            tolerance: 1e-9,
        };
        let mut rng = DetRng::new(5);
        let mut km = KMeans::seed(&points, &cfg, &mut rng).unwrap();
        let iters = km.fit(&points, &cfg).unwrap();
        assert!(iters >= 1);
        // Each true center must be close to some centroid.
        for truth in [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]] {
            let d = km
                .centroids
                .rows()
                .map(|c| dist2(c, &truth))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 0.5, "center {truth:?} missed: {:?}", km.centroids);
        }
        // Inertia near the noise floor: 600 points * 2 dims * 0.25 var.
        let final_inertia = inertia(&km.centroids, &points);
        assert!(final_inertia < 600.0, "inertia {final_inertia}");
        // Weights hold the assignment counts.
        let total_w: f64 = km.weights.iter().sum();
        assert_eq!(total_w as usize, 600);
    }

    #[test]
    fn fit_is_deterministic() {
        let (points, _) = three_blobs(200, 6);
        let cfg = KMeansConfig::default();
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            let mut km = KMeans::seed(&points, &cfg, &mut rng).unwrap();
            km.fit(&points, &cfg).unwrap();
            km.centroids
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let (points, _) = three_blobs(200, 11);
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let mut rng = DetRng::new(12);
        let seeded = KMeans::seed(&points, &cfg, &mut rng).unwrap();
        let mut with_reuse = seeded.clone();
        let mut fresh_each = seeded;
        let mut scratch = LloydScratch::default();
        for _ in 0..5 {
            with_reuse.lloyd_step_with(&points, &mut scratch);
            fresh_each.lloyd_step(&points);
        }
        assert_eq!(with_reuse.centroids, fresh_each.centroids);
        assert_eq!(with_reuse.weights, fresh_each.weights);
    }

    #[test]
    fn mini_batch_improves_inertia() {
        let (points, _) = three_blobs(500, 7);
        let mut rng = DetRng::new(8);
        let cfg = KMeansConfig {
            k: 3,
            ..KMeansConfig::default()
        };
        let mut km = KMeans::seed(&points, &cfg, &mut rng).unwrap();
        let before = inertia(&km.centroids, &points);
        let indices: Vec<usize> = (0..points.len()).collect();
        for chunk in indices.chunks(50) {
            km.mini_batch_step(&points.gather(chunk));
        }
        let after = inertia(&km.centroids, &points);
        assert!(after <= before, "before {before}, after {after}");
    }

    #[test]
    fn empty_inputs_are_safe() {
        let cfg = KMeansConfig::default();
        let mut km = KMeans::from_centroids(Matrix::from_rows(&[vec![0.0], vec![1.0]]));
        let none = Matrix::new(1);
        assert_eq!(km.fit(&none, &cfg).unwrap(), 0);
        assert!(!km.lloyd_step(&none));
        km.mini_batch_step(&none);
        assert!(km.assign(&none).is_empty());
    }
}
