//! Clustering quality metrics: inertia ratio and adjusted Rand index.

/// Ratio of a clustering's inertia to a reference inertia (1.0 = as good
/// as the reference; > 1 worse). Guards against a zero reference.
pub fn inertia_ratio(measured: f64, reference: f64) -> f64 {
    if reference <= 0.0 {
        if measured <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        measured / reference
    }
}

/// Adjusted Rand index between two labelings (Hubert & Arabie).
///
/// 1.0 for identical partitions (up to label permutation), ~0 for random
/// agreement. Panics if the labelings differ in length.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must align");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().max().map(|&m| m + 1).unwrap_or(0);
    let kb = b.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut contingency = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        contingency[x][y] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let mut sum_ij = 0.0;
    let mut row_sums = vec![0u64; ka];
    let mut col_sums = vec![0u64; kb];
    for (i, row) in contingency.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            sum_ij += choose2(c);
            row_sums[i] += c;
            col_sums[j] += c;
        }
    }
    let sum_a: f64 = row_sums.iter().map(|&x| choose2(x)).sum();
    let sum_b: f64 = col_sums.iter().map(|&x| choose2(x)).sum();
    let total = choose2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions are single-cluster (or empty
        // structure); identical partitions get 1.
        return if sum_ij == max_index { 1.0 } else { 0.0 };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inertia_ratio_cases() {
        assert_eq!(inertia_ratio(2.0, 1.0), 2.0);
        assert_eq!(inertia_ratio(0.0, 0.0), 1.0);
        assert_eq!(inertia_ratio(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn ari_identical_is_one() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // Label permutation doesn't matter.
        let b = [2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_disagreement_is_low() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 1, 0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 0.2, "ari {ari}");
    }

    #[test]
    fn ari_known_value() {
        // Classic example: ARI of these two labelings is 0.24242...
        let a = [0, 0, 1, 1];
        let b = [0, 0, 1, 2];
        let ari = adjusted_rand_index(&a, &b);
        assert!((ari - 0.5714285714).abs() < 1e-6, "ari {ari}");
    }

    #[test]
    fn ari_degenerate_cases() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[0]), 1.0);
        // Both single-cluster: identical partitions.
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[0, 0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn ari_length_mismatch_panics() {
        adjusted_rand_index(&[0, 1], &[0]);
    }
}
