//! Compute kernels for Edgelet queries.
//!
//! Two families, matching the demo's two queries:
//!
//! * [`aggregate`] + [`grouping`] — distributive SQL aggregates
//!   (COUNT/SUM/MIN/MAX, AVG as SUM+COUNT) and **Grouping Sets** evaluation:
//!   several Group-By clauses over the same sample in one pass, with
//!   mergeable partial states — exactly what the Overcollection strategy
//!   needs (each Computer produces a partial, the Combiner merges);
//! * [`kmeans`] + [`distributed`] — K-Means (k-means++ seeding, Lloyd and
//!   mini-batch refinement) and the distributed-knowledge form used by the
//!   paper's iterative execution: each Computer improves centroids locally
//!   and broadcasts them; peers merge by weighted barycenter;
//! * [`matrix`] — the contiguous row-major [`Matrix`] storage every ML
//!   kernel runs on (one allocation per dataset, rows as flat slices);
//! * [`metrics`] — clustering quality measures (inertia, adjusted Rand
//!   index) used to quantify accuracy vs. heartbeats in experiment E4;
//! * [`gen`] — Gaussian-mixture generator for clusterable synthetic data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod distributed;
pub mod gen;
pub mod grouping;
pub mod kmeans;
pub mod matrix;
pub mod metrics;

pub use aggregate::{AggKind, AggSpec, PartialAgg};
pub use distributed::CentroidSet;
pub use grouping::{GroupedPartial, GroupingQuery, ResultTable};
pub use kmeans::{KMeans, KMeansConfig};
pub use matrix::Matrix;
