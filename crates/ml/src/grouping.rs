//! Grouping Sets: several Group-By clauses over one sample, in one pass.
//!
//! The demo's first query (§3.2) is a Grouping Sets query "to cross
//! multiple statistics over the same data sample". A [`GroupingQuery`]
//! carries the grouping sets and the aggregate list; evaluation produces a
//! [`GroupedPartial`] — a mergeable map from `(set index, group key)` to
//! partial aggregates — which Computers exchange and the Combiner merges
//! and finalizes into a [`ResultTable`].

use crate::aggregate::{AggSpec, PartialAgg};
use edgelet_store::value::GroupKeyPart;
use edgelet_store::{Row, Schema, Value};
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};
use std::collections::BTreeMap;
use std::fmt;

/// A Grouping-Sets aggregation query.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingQuery {
    /// The grouping sets; each inner vec lists grouped column names.
    /// An empty inner vec is the grand-total group (like `GROUP BY ()`).
    pub sets: Vec<Vec<String>>,
    /// The aggregates computed for every grouping set.
    pub aggregates: Vec<AggSpec>,
}

impl GroupingQuery {
    /// Builds a query from string slices.
    pub fn new(sets: &[&[&str]], aggregates: Vec<AggSpec>) -> Self {
        Self {
            sets: sets
                .iter()
                .map(|s| s.iter().map(|c| c.to_string()).collect())
                .collect(),
            aggregates,
        }
    }

    /// `ROLLUP(a, b, c)`: grouping sets `(a,b,c), (a,b), (a), ()`.
    pub fn rollup(columns: &[&str], aggregates: Vec<AggSpec>) -> Self {
        let mut sets: Vec<Vec<String>> = Vec::with_capacity(columns.len() + 1);
        for take in (0..=columns.len()).rev() {
            sets.push(columns[..take].iter().map(|c| c.to_string()).collect());
        }
        Self { sets, aggregates }
    }

    /// `CUBE(a, b, ...)`: all subsets of the columns as grouping sets
    /// (ordered by subset bitmask, full set first).
    pub fn cube(columns: &[&str], aggregates: Vec<AggSpec>) -> Self {
        let n = columns.len();
        assert!(n <= 16, "cube over more than 16 columns is unreasonable");
        let mut sets: Vec<Vec<String>> = Vec::with_capacity(1 << n);
        for mask in (0..(1u32 << n)).rev() {
            let set: Vec<String> = columns
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << *i) != 0)
                .map(|(_, c)| c.to_string())
                .collect();
            sets.push(set);
        }
        Self { sets, aggregates }
    }

    /// Validates the query against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.sets.is_empty() {
            return Err(Error::InvalidQuery("no grouping sets".into()));
        }
        if self.aggregates.is_empty() {
            return Err(Error::InvalidQuery("no aggregates".into()));
        }
        for set in &self.sets {
            for col in set {
                let c = schema.column(col)?;
                if c.ty == edgelet_store::ColumnType::Float {
                    return Err(Error::InvalidQuery(format!(
                        "cannot group by float column `{col}`"
                    )));
                }
            }
        }
        for agg in &self.aggregates {
            agg.validate(schema)?;
        }
        Ok(())
    }

    /// Every column the query touches (grouping + aggregate inputs).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self.sets.iter().flatten().cloned().collect();
        for a in &self.aggregates {
            if let Some(c) = &a.column {
                out.push(c.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Evaluates the query over rows, producing a mergeable partial.
    pub fn compute(&self, schema: &Schema, rows: &[Row]) -> Result<GroupedPartial> {
        self.validate(schema)?;
        let mut partial = GroupedPartial::default();
        // Pre-resolve column indexes per set.
        let set_indexes: Vec<Vec<usize>> = self
            .sets
            .iter()
            .map(|set| set.iter().map(|c| schema.index_of(c)).collect())
            .collect::<Result<_>>()?;
        for row in rows {
            for (set_idx, indexes) in set_indexes.iter().enumerate() {
                let mut key = Vec::with_capacity(indexes.len());
                for &i in indexes {
                    key.push(
                        row.get(i)
                            .ok_or_else(|| Error::Schema("row too short".into()))?
                            .group_key()?,
                    );
                }
                let entry = partial
                    .groups
                    .entry((set_idx as u32, key))
                    .or_insert_with(|| self.aggregates.iter().map(|a| a.init()).collect());
                for (agg, state) in self.aggregates.iter().zip(entry.iter_mut()) {
                    agg.update(state, schema, row)?;
                }
            }
        }
        Ok(partial)
    }

    /// Finalizes a (merged) partial into result rows.
    pub fn finalize(&self, partial: &GroupedPartial) -> ResultTable {
        let mut rows = Vec::with_capacity(partial.groups.len());
        for ((set_idx, key), states) in &partial.groups {
            let group_columns = self
                .sets
                .get(*set_idx as usize)
                .cloned()
                .unwrap_or_default();
            let key_values: Vec<Value> = key.iter().map(|k| k.to_value()).collect();
            // finalize_as: VAR and STDDEV share the moments state but
            // finalize differently.
            let agg_values: Vec<Value> = states
                .iter()
                .zip(&self.aggregates)
                .map(|(s, a)| s.finalize_as(a.kind))
                .collect();
            rows.push(ResultRow {
                set_index: *set_idx,
                group_columns,
                key: key_values,
                aggregates: agg_values,
            });
        }
        ResultTable {
            aggregate_names: self.aggregates.iter().map(|a| a.to_string()).collect(),
            rows,
        }
    }
}

impl Encode for GroupingQuery {
    fn encode(&self, w: &mut Writer) {
        self.sets.encode(w);
        self.aggregates.encode(w);
    }
}

impl Decode for GroupingQuery {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Self {
            sets: Vec::<Vec<String>>::decode(r)?,
            aggregates: Vec::<AggSpec>::decode(r)?,
        })
    }
}

impl fmt::Display for GroupingQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let aggs: Vec<String> = self.aggregates.iter().map(|a| a.to_string()).collect();
        let sets: Vec<String> = self
            .sets
            .iter()
            .map(|s| format!("({})", s.join(", ")))
            .collect();
        write!(
            f,
            "SELECT {} GROUP BY GROUPING SETS {}",
            aggs.join(", "),
            sets.join(", ")
        )
    }
}

/// Mergeable partial result: `(set index, group key) -> partial aggregates`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupedPartial {
    /// Group states.
    pub groups: BTreeMap<(u32, Vec<GroupKeyPart>), Vec<PartialAgg>>,
}

impl GroupedPartial {
    /// Merges another partial into this one.
    pub fn merge(&mut self, other: &GroupedPartial) -> Result<()> {
        for (key, states) in &other.groups {
            match self.groups.get_mut(key) {
                None => {
                    self.groups.insert(key.clone(), states.clone());
                }
                Some(mine) => {
                    if mine.len() != states.len() {
                        return Err(Error::Protocol(
                            "mismatched aggregate arity in merge".into(),
                        ));
                    }
                    for (a, b) in mine.iter_mut().zip(states) {
                        a.merge(b)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of groups currently tracked.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl Encode for GroupedPartial {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.groups.len() as u64);
        for ((set_idx, key), states) in &self.groups {
            set_idx.encode(w);
            key.encode(w);
            states.encode(w);
        }
    }
}

impl Decode for GroupedPartial {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.seq_len()?;
        let mut groups = BTreeMap::new();
        for _ in 0..len {
            let set_idx = u32::decode(r)?;
            let key = Vec::<GroupKeyPart>::decode(r)?;
            let states = Vec::<PartialAgg>::decode(r)?;
            groups.insert((set_idx, key), states);
        }
        Ok(GroupedPartial { groups })
    }
}

/// One row of the final result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Which grouping set produced this row.
    pub set_index: u32,
    /// Names of the grouped columns (empty for the grand total).
    pub group_columns: Vec<String>,
    /// Group key values, aligned with `group_columns`.
    pub key: Vec<Value>,
    /// Finalized aggregate values, aligned with the query's aggregate list.
    pub aggregates: Vec<Value>,
}

/// The final result of a grouping query.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Display names of the aggregates.
    pub aggregate_names: Vec<String>,
    /// Result rows (ordered by set index, then key).
    pub rows: Vec<ResultRow>,
}

impl ResultTable {
    /// Looks up one group's aggregates.
    pub fn group(&self, set_index: u32, key: &[Value]) -> Option<&ResultRow> {
        self.rows
            .iter()
            .find(|r| r.set_index == set_index && r.key == key)
    }

    /// Maximum absolute relative difference of numeric aggregates vs. a
    /// reference table, over groups present in the reference. Missing
    /// groups count as difference 1.0. Used for validity measurements.
    pub fn max_relative_error(&self, reference: &ResultTable) -> f64 {
        let mut worst: f64 = 0.0;
        for r in &reference.rows {
            match self.group(r.set_index, &r.key) {
                None => worst = worst.max(1.0),
                Some(mine) => {
                    for (a, b) in mine.aggregates.iter().zip(&r.aggregates) {
                        match (a.as_f64(), b.as_f64()) {
                            (Some(x), Some(y)) => {
                                let denom = y.abs().max(1e-12);
                                worst = worst.max((x - y).abs() / denom);
                            }
                            _ => {
                                if a != b {
                                    worst = worst.max(1.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        worst
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "groups: {}", self.rows.len())?;
        for r in &self.rows {
            let key: Vec<String> = r
                .group_columns
                .iter()
                .zip(&r.key)
                .map(|(c, v)| format!("{c}={v}"))
                .collect();
            let aggs: Vec<String> = self
                .aggregate_names
                .iter()
                .zip(&r.aggregates)
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            let key_str = if key.is_empty() {
                "(total)".to_string()
            } else {
                key.join(", ")
            };
            writeln!(f, "  [{key_str}] {}", aggs.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggKind;
    use edgelet_store::synth;
    use edgelet_util::rng::DetRng;
    use edgelet_wire::{from_bytes, to_bytes};

    fn demo_query() -> GroupingQuery {
        GroupingQuery::new(
            &[&["sex"], &["gir"], &[]],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggKind::Avg, "bmi"),
                AggSpec::over(AggKind::Max, "age"),
            ],
        )
    }

    #[test]
    fn grand_total_matches_input() {
        let mut rng = DetRng::new(1);
        let store = synth::health_store(300, &mut rng);
        let q = demo_query();
        let partial = q.compute(store.schema(), store.rows()).unwrap();
        let table = q.finalize(&partial);
        let total = table.group(2, &[]).unwrap();
        assert_eq!(total.aggregates[0], Value::Int(300));
        // Per-sex counts sum to the total.
        let f = table.group(0, &[Value::Text("F".into())]).unwrap();
        let m = table.group(0, &[Value::Text("M".into())]).unwrap();
        assert_eq!(
            f.aggregates[0].as_i64().unwrap() + m.aggregates[0].as_i64().unwrap(),
            300
        );
        // GIR groups are in 1..=6.
        for r in table.rows.iter().filter(|r| r.set_index == 1) {
            let gir = r.key[0].as_i64().unwrap();
            assert!((1..=6).contains(&gir));
        }
    }

    #[test]
    fn partition_merge_equals_centralized() {
        let mut rng = DetRng::new(2);
        let store = synth::health_store(500, &mut rng);
        let q = demo_query();
        let central = q.compute(store.schema(), store.rows()).unwrap();

        // Split into 7 partitions, compute separately, merge.
        let mut merged = GroupedPartial::default();
        for chunk in store.rows().chunks(72) {
            let p = q.compute(store.schema(), chunk).unwrap();
            merged.merge(&p).unwrap();
        }
        // Same groups; aggregates equal up to float summation order.
        assert_eq!(merged.group_count(), central.group_count());
        let err = q
            .finalize(&merged)
            .max_relative_error(&q.finalize(&central));
        assert!(err < 1e-12, "relative error {err}");
    }

    #[test]
    fn rollup_and_cube_shapes() {
        let q = GroupingQuery::rollup(&["sex", "gir"], vec![AggSpec::count_star()]);
        assert_eq!(
            q.sets,
            vec![
                vec!["sex".to_string(), "gir".into()],
                vec!["sex".into()],
                vec![],
            ]
        );
        let q = GroupingQuery::cube(&["sex", "gir"], vec![AggSpec::count_star()]);
        assert_eq!(q.sets.len(), 4);
        assert!(q.sets.contains(&vec!["sex".to_string(), "gir".into()]));
        assert!(q.sets.contains(&vec!["gir".to_string()]));
        assert!(q.sets.contains(&vec![]));

        // Rollup totals are consistent: per-level counts all sum to C.
        let mut rng = DetRng::new(12);
        let store = synth::health_store(200, &mut rng);
        let q = GroupingQuery::rollup(&["sex", "gir"], vec![AggSpec::count_star()]);
        let t = q.finalize(&q.compute(store.schema(), store.rows()).unwrap());
        for set_idx in 0..3u32 {
            let sum: i64 = t
                .rows
                .iter()
                .filter(|r| r.set_index == set_idx)
                .map(|r| r.aggregates[0].as_i64().unwrap())
                .sum();
            assert_eq!(sum, 200, "rollup level {set_idx}");
        }
    }

    #[test]
    fn stddev_finalizes_as_root_of_var() {
        let mut rng = DetRng::new(9);
        let store = synth::health_store(400, &mut rng);
        let q = GroupingQuery::new(
            &[&[]],
            vec![
                AggSpec::over(AggKind::Var, "bmi"),
                AggSpec::over(AggKind::StdDev, "bmi"),
            ],
        );
        let t = q.finalize(&q.compute(store.schema(), store.rows()).unwrap());
        let var = t.rows[0].aggregates[0].as_f64().unwrap();
        let sd = t.rows[0].aggregates[1].as_f64().unwrap();
        assert!(
            (sd * sd - var).abs() < 1e-9,
            "sd^2 {} != var {}",
            sd * sd,
            var
        );
        assert!(var > 0.0);
    }

    #[test]
    fn validation_errors() {
        let mut rng = DetRng::new(3);
        let store = synth::health_store(10, &mut rng);
        let schema = store.schema();
        assert!(GroupingQuery::new(&[], vec![AggSpec::count_star()])
            .validate(schema)
            .is_err());
        assert!(GroupingQuery::new(&[&["sex"]], vec![])
            .validate(schema)
            .is_err());
        assert!(
            GroupingQuery::new(&[&["bmi"]], vec![AggSpec::count_star()])
                .validate(schema)
                .is_err(),
            "grouping by float must fail"
        );
        assert!(
            GroupingQuery::new(&[&["nope"]], vec![AggSpec::count_star()])
                .validate(schema)
                .is_err()
        );
    }

    #[test]
    fn referenced_columns() {
        let q = demo_query();
        assert_eq!(
            q.referenced_columns(),
            vec!["age".to_string(), "bmi".into(), "gir".into(), "sex".into()]
        );
    }

    #[test]
    fn wire_roundtrip() {
        let mut rng = DetRng::new(4);
        let store = synth::health_store(100, &mut rng);
        let q = demo_query();
        let partial = q.compute(store.schema(), store.rows()).unwrap();
        let back: GroupedPartial = from_bytes(&to_bytes(&partial)).unwrap();
        assert_eq!(back, partial);
    }

    #[test]
    fn query_wire_roundtrip() {
        let q = demo_query();
        let back: GroupingQuery = from_bytes(&to_bytes(&q)).unwrap();
        assert_eq!(back, q);
        // Encoding is byte-stable, which the durable layer relies on for
        // spec digests.
        assert_eq!(to_bytes(&back), to_bytes(&q));
    }

    #[test]
    fn relative_error_detects_missing_and_wrong_groups() {
        let mut rng = DetRng::new(5);
        let store = synth::health_store(200, &mut rng);
        let q = demo_query();
        let full = q.finalize(&q.compute(store.schema(), store.rows()).unwrap());
        let half = q.finalize(&q.compute(store.schema(), &store.rows()[..100]).unwrap());
        let err = half.max_relative_error(&full);
        assert!(err > 0.0, "half the data must show an error");
        assert_eq!(full.max_relative_error(&full), 0.0);
    }

    #[test]
    fn display_renders() {
        let q = demo_query();
        let s = q.to_string();
        assert!(s.contains("GROUPING SETS"), "{s}");
        let mut rng = DetRng::new(6);
        let store = synth::health_store(20, &mut rng);
        let t = q.finalize(&q.compute(store.schema(), store.rows()).unwrap());
        assert!(t.to_string().contains("(total)"));
    }
}
