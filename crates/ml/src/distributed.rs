//! Distributed K-Means knowledge: weighted centroid sets.
//!
//! In the paper's iterative execution (§2.2), each Computer alternates a
//! *local convergence* phase (improving its centroids on its partition) and
//! a *synchronization* phase where it merges the centroid sets it "has
//! heard of", taking "the barycenter for each centroid". A [`CentroidSet`]
//! is the unit of exchanged knowledge: `k` centroids with the data weight
//! backing each, merged index-wise by weighted barycenter. Index-wise
//! merging is meaningful because every Computer starts from the same
//! broadcast seed centroids.

use crate::matrix::Matrix;
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};

/// Exchanged K-Means knowledge: centroids plus their supporting weight.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidSet {
    /// Cluster centers, one matrix row per centroid.
    pub centroids: Matrix,
    /// Weight (number of points) behind each centroid.
    pub weights: Vec<f64>,
}

impl CentroidSet {
    /// Builds a set; centroid/weight arity must match. (Dimensional
    /// consistency across centroids is structural: they share one
    /// [`Matrix`].)
    pub fn new(centroids: Matrix, weights: Vec<f64>) -> Result<Self> {
        if centroids.len() != weights.len() {
            return Err(Error::InvalidConfig(format!(
                "{} centroids but {} weights",
                centroids.len(),
                weights.len()
            )));
        }
        Ok(Self { centroids, weights })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Merges peer knowledge index-wise by weighted barycenter.
    ///
    /// A centroid with zero total weight keeps this set's position.
    pub fn merge(&mut self, other: &CentroidSet) -> Result<()> {
        if self.k() != other.k() {
            return Err(Error::Protocol(format!(
                "cannot merge knowledge with k={} into k={}",
                other.k(),
                self.k()
            )));
        }
        if self.k() > 0 && self.centroids.dim() != other.centroids.dim() {
            return Err(Error::Protocol("centroid dimension mismatch".into()));
        }
        for i in 0..self.k() {
            let w1 = self.weights[i];
            let w2 = other.weights[i];
            let total = w1 + w2;
            if total <= 0.0 {
                continue;
            }
            for (a, b) in self
                .centroids
                .row_mut(i)
                .iter_mut()
                .zip(other.centroids.row(i))
            {
                *a = (*a * w1 + *b * w2) / total;
            }
            self.weights[i] = total;
        }
        Ok(())
    }

    /// Merges many sets into the first (returns an error if any is
    /// incompatible; earlier merges stick).
    pub fn merge_all<'a>(
        mut base: CentroidSet,
        others: impl IntoIterator<Item = &'a CentroidSet>,
    ) -> Result<CentroidSet> {
        for o in others {
            base.merge(o)?;
        }
        Ok(base)
    }

    /// Total weight across clusters.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

// The wire layout predates the flat [`Matrix`] storage and is kept
// byte-identical to the old `Vec<Vec<f64>>` encoding: outer varint count,
// then per centroid a varint length plus that many little-endian f64s,
// then the weights vector.
impl Encode for CentroidSet {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.centroids.len() as u64);
        for row in self.centroids.rows() {
            w.put_varint(row.len() as u64);
            for x in row {
                x.encode(w);
            }
        }
        self.weights.encode(w);
    }
}

impl Decode for CentroidSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let k = r.seq_len()?;
        let mut centroids = Matrix::new(0);
        for i in 0..k {
            let dim = r.seq_len()?;
            if i == 0 {
                centroids = Matrix::with_capacity(dim, k);
            } else if dim != centroids.dim() {
                return Err(Error::Decode("inconsistent centroid dims".into()));
            }
            let mut row = Vec::with_capacity(dim.min(4096));
            for _ in 0..dim {
                row.push(f64::decode(r)?);
            }
            centroids.push_row(&row);
        }
        let weights = Vec::<f64>::decode(r)?;
        CentroidSet::new(centroids, weights).map_err(|e| Error::Decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_wire::{from_bytes, to_bytes};
    use proptest::prelude::*;

    fn set(rows: &[Vec<f64>], weights: &[f64]) -> Result<CentroidSet> {
        CentroidSet::new(Matrix::from_rows(rows), weights.to_vec())
    }

    #[test]
    fn construction_validates() {
        assert!(set(&[vec![1.0]], &[1.0, 2.0]).is_err());
        let s = set(&[vec![1.0], vec![2.0]], &[3.0, 4.0]).unwrap();
        assert_eq!(s.k(), 2);
        assert_eq!(s.total_weight(), 7.0);
    }

    #[test]
    fn weighted_barycenter() {
        let mut a = set(&[vec![0.0, 0.0]], &[1.0]).unwrap();
        let b = set(&[vec![3.0, 6.0]], &[2.0]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.centroids.row(0), &[2.0, 4.0]);
        assert_eq!(a.weights[0], 3.0);
    }

    #[test]
    fn zero_weight_peer_is_ignored() {
        let mut a = set(&[vec![1.0]], &[5.0]).unwrap();
        let b = set(&[vec![100.0]], &[0.0]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.centroids.row(0), &[1.0]);
        assert_eq!(a.weights[0], 5.0);
        // And a zero-weight self adopts the peer.
        let mut c = set(&[vec![0.0]], &[0.0]).unwrap();
        c.merge(&set(&[vec![7.0]], &[3.0]).unwrap()).unwrap();
        assert_eq!(c.centroids.row(0), &[7.0]);
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let mut a = set(&[vec![1.0]], &[1.0]).unwrap();
        let b = set(&[vec![1.0], vec![2.0]], &[1.0, 1.0]).unwrap();
        assert!(a.merge(&b).is_err());
        let c = set(&[vec![1.0, 2.0]], &[1.0]).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn merge_all_equals_pairwise() {
        let base = set(&[vec![0.0]], &[1.0]).unwrap();
        let peers = [
            set(&[vec![10.0]], &[1.0]).unwrap(),
            set(&[vec![20.0]], &[2.0]).unwrap(),
        ];
        let merged = CentroidSet::merge_all(base, peers.iter()).unwrap();
        // (0*1 + 10*1)/2 = 5; (5*2 + 20*2)/4 = 12.5
        assert_eq!(merged.centroids.row(0), &[12.5]);
        assert_eq!(merged.weights[0], 4.0);
    }

    #[test]
    fn wire_roundtrip() {
        let s = set(&[vec![1.5, -2.0], vec![0.0, 3.25]], &[10.0, 0.0]).unwrap();
        let back: CentroidSet = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);
        // Corrupt arity fails decode.
        let bad = CentroidSet {
            centroids: Matrix::from_rows(&[vec![1.0]]),
            weights: vec![1.0, 2.0],
        };
        assert!(from_bytes::<CentroidSet>(&to_bytes(&bad)).is_err());
    }

    #[test]
    fn wire_layout_matches_legacy_nested_vecs() {
        // The flat Matrix storage must not change what goes on the wire:
        // peers running the previous Vec<Vec<f64>> layout decode it as
        // (centroid rows, weights).
        let s = set(&[vec![1.5, -2.0], vec![0.0, 3.25]], &[10.0, 0.5]).unwrap();
        let legacy = (s.centroids.to_rows(), s.weights.clone());
        assert_eq!(to_bytes(&s), to_bytes(&legacy));
        let back: (Vec<Vec<f64>>, Vec<f64>) = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, legacy);
    }

    proptest! {
        /// Merging all partition centroids (same index) equals the global
        /// weighted mean of the partition means.
        #[test]
        fn prop_merge_preserves_weighted_mean(
            chunks in prop::collection::vec(
                prop::collection::vec(-100.0f64..100.0, 1..20),
                1..6,
            )
        ) {
            // Each chunk is one "partition" of scalars; its centroid is its
            // mean with weight = len.
            let sets: Vec<CentroidSet> = chunks
                .iter()
                .map(|c| {
                    let mean = c.iter().sum::<f64>() / c.len() as f64;
                    set(&[vec![mean]], &[c.len() as f64]).unwrap()
                })
                .collect();
            let merged = CentroidSet::merge_all(sets[0].clone(), sets[1..].iter()).unwrap();
            let all: Vec<f64> = chunks.iter().flatten().copied().collect();
            let global_mean = all.iter().sum::<f64>() / all.len() as f64;
            prop_assert!((merged.centroids.row(0)[0] - global_mean).abs() < 1e-9);
            prop_assert!((merged.total_weight() - all.len() as f64).abs() < 1e-9);
        }
    }
}
