//! Distributed K-Means knowledge: weighted centroid sets.
//!
//! In the paper's iterative execution (§2.2), each Computer alternates a
//! *local convergence* phase (improving its centroids on its partition) and
//! a *synchronization* phase where it merges the centroid sets it "has
//! heard of", taking "the barycenter for each centroid". A [`CentroidSet`]
//! is the unit of exchanged knowledge: `k` centroids with the data weight
//! backing each, merged index-wise by weighted barycenter. Index-wise
//! merging is meaningful because every Computer starts from the same
//! broadcast seed centroids.

use crate::kmeans::Point;
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};

/// Exchanged K-Means knowledge: centroids plus their supporting weight.
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidSet {
    /// Cluster centers.
    pub centroids: Vec<Point>,
    /// Weight (number of points) behind each centroid.
    pub weights: Vec<f64>,
}

impl CentroidSet {
    /// Builds a set; centroid/weight arity must match.
    pub fn new(centroids: Vec<Point>, weights: Vec<f64>) -> Result<Self> {
        if centroids.len() != weights.len() {
            return Err(Error::InvalidConfig(format!(
                "{} centroids but {} weights",
                centroids.len(),
                weights.len()
            )));
        }
        if let Some(first) = centroids.first() {
            let dim = first.len();
            if centroids.iter().any(|c| c.len() != dim) {
                return Err(Error::InvalidConfig("inconsistent centroid dims".into()));
            }
        }
        Ok(Self { centroids, weights })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Merges peer knowledge index-wise by weighted barycenter.
    ///
    /// A centroid with zero total weight keeps this set's position.
    pub fn merge(&mut self, other: &CentroidSet) -> Result<()> {
        if self.k() != other.k() {
            return Err(Error::Protocol(format!(
                "cannot merge knowledge with k={} into k={}",
                other.k(),
                self.k()
            )));
        }
        for i in 0..self.k() {
            let w1 = self.weights[i];
            let w2 = other.weights[i];
            let total = w1 + w2;
            if total <= 0.0 {
                continue;
            }
            if self.centroids[i].len() != other.centroids[i].len() {
                return Err(Error::Protocol("centroid dimension mismatch".into()));
            }
            for (a, b) in self.centroids[i].iter_mut().zip(&other.centroids[i]) {
                *a = (*a * w1 + *b * w2) / total;
            }
            self.weights[i] = total;
        }
        Ok(())
    }

    /// Merges many sets into the first (returns an error if any is
    /// incompatible; earlier merges stick).
    pub fn merge_all<'a>(
        mut base: CentroidSet,
        others: impl IntoIterator<Item = &'a CentroidSet>,
    ) -> Result<CentroidSet> {
        for o in others {
            base.merge(o)?;
        }
        Ok(base)
    }

    /// Total weight across clusters.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

impl Encode for CentroidSet {
    fn encode(&self, w: &mut Writer) {
        self.centroids.encode(w);
        self.weights.encode(w);
    }
}

impl Decode for CentroidSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let centroids = Vec::<Point>::decode(r)?;
        let weights = Vec::<f64>::decode(r)?;
        CentroidSet::new(centroids, weights).map_err(|e| Error::Decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_wire::{from_bytes, to_bytes};
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(CentroidSet::new(vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(CentroidSet::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 1.0]).is_err());
        let s = CentroidSet::new(vec![vec![1.0], vec![2.0]], vec![3.0, 4.0]).unwrap();
        assert_eq!(s.k(), 2);
        assert_eq!(s.total_weight(), 7.0);
    }

    #[test]
    fn weighted_barycenter() {
        let mut a = CentroidSet::new(vec![vec![0.0, 0.0]], vec![1.0]).unwrap();
        let b = CentroidSet::new(vec![vec![3.0, 6.0]], vec![2.0]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.centroids[0], vec![2.0, 4.0]);
        assert_eq!(a.weights[0], 3.0);
    }

    #[test]
    fn zero_weight_peer_is_ignored() {
        let mut a = CentroidSet::new(vec![vec![1.0]], vec![5.0]).unwrap();
        let b = CentroidSet::new(vec![vec![100.0]], vec![0.0]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.centroids[0], vec![1.0]);
        assert_eq!(a.weights[0], 5.0);
        // And a zero-weight self adopts the peer.
        let mut c = CentroidSet::new(vec![vec![0.0]], vec![0.0]).unwrap();
        c.merge(&CentroidSet::new(vec![vec![7.0]], vec![3.0]).unwrap())
            .unwrap();
        assert_eq!(c.centroids[0], vec![7.0]);
    }

    #[test]
    fn mismatched_k_rejected() {
        let mut a = CentroidSet::new(vec![vec![1.0]], vec![1.0]).unwrap();
        let b = CentroidSet::new(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_all_equals_pairwise() {
        let base = CentroidSet::new(vec![vec![0.0]], vec![1.0]).unwrap();
        let peers = [
            CentroidSet::new(vec![vec![10.0]], vec![1.0]).unwrap(),
            CentroidSet::new(vec![vec![20.0]], vec![2.0]).unwrap(),
        ];
        let merged = CentroidSet::merge_all(base, peers.iter()).unwrap();
        // (0*1 + 10*1)/2 = 5; (5*2 + 20*2)/4 = 12.5
        assert_eq!(merged.centroids[0], vec![12.5]);
        assert_eq!(merged.weights[0], 4.0);
    }

    #[test]
    fn wire_roundtrip() {
        let s = CentroidSet::new(vec![vec![1.5, -2.0], vec![0.0, 3.25]], vec![10.0, 0.0]).unwrap();
        let back: CentroidSet = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);
        // Corrupt arity fails decode.
        let bad = CentroidSet {
            centroids: vec![vec![1.0]],
            weights: vec![1.0, 2.0],
        };
        assert!(from_bytes::<CentroidSet>(&to_bytes(&bad)).is_err());
    }

    proptest! {
        /// Merging all partition centroids (same index) equals the global
        /// weighted mean of the partition means.
        #[test]
        fn prop_merge_preserves_weighted_mean(
            chunks in prop::collection::vec(
                prop::collection::vec(-100.0f64..100.0, 1..20),
                1..6,
            )
        ) {
            // Each chunk is one "partition" of scalars; its centroid is its
            // mean with weight = len.
            let sets: Vec<CentroidSet> = chunks
                .iter()
                .map(|c| {
                    let mean = c.iter().sum::<f64>() / c.len() as f64;
                    CentroidSet::new(vec![vec![mean]], vec![c.len() as f64]).unwrap()
                })
                .collect();
            let merged = CentroidSet::merge_all(sets[0].clone(), sets[1..].iter()).unwrap();
            let all: Vec<f64> = chunks.iter().flatten().copied().collect();
            let global_mean = all.iter().sum::<f64>() / all.len() as f64;
            prop_assert!((merged.centroids[0][0] - global_mean).abs() < 1e-9);
            prop_assert!((merged.total_weight() - all.len() as f64).abs() < 1e-9);
        }
    }
}
