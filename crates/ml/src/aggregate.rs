//! Distributive aggregates with mergeable partial states.
//!
//! The Overcollection strategy (§2.2) requires operators to be
//! *distributive*: a partial state computed on each partition, merged
//! associatively, finalized once. COUNT, SUM, MIN and MAX are distributive;
//! AVG is algebraic and decomposes into SUM + COUNT, which is what
//! [`PartialAgg::Avg`] carries.

use edgelet_store::value::Value;
use edgelet_store::{Row, Schema};
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Reader, Writer};
use std::fmt;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Row count (column ignored beyond null-skipping when named).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum of a column.
    Min,
    /// Maximum of a column.
    Max,
    /// Average of a numeric column (decomposed into sum + count).
    Avg,
    /// Population variance of a numeric column (sum + sum of squares +
    /// count: algebraic, hence mergeable).
    Var,
    /// Population standard deviation (same partial state as `Var`).
    StdDev,
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggKind::Count => "COUNT",
            AggKind::Sum => "SUM",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
            AggKind::Avg => "AVG",
            AggKind::Var => "VAR",
            AggKind::StdDev => "STDDEV",
        };
        f.write_str(s)
    }
}

/// One aggregate column of a query, e.g. `AVG(bmi)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSpec {
    /// The function.
    pub kind: AggKind,
    /// The input column (`None` only for `COUNT(*)`).
    pub column: Option<String>,
}

impl AggSpec {
    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        Self {
            kind: AggKind::Count,
            column: None,
        }
    }

    /// An aggregate over a named column.
    pub fn over(kind: AggKind, column: &str) -> Self {
        Self {
            kind,
            column: Some(column.to_string()),
        }
    }

    /// Validates against a schema: the column must exist, and numeric
    /// aggregates need numeric input.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match (&self.column, self.kind) {
            (None, AggKind::Count) => Ok(()),
            (None, k) => Err(Error::InvalidQuery(format!("{k} requires a column"))),
            (Some(c), k) => {
                let col = schema.column(c)?;
                match k {
                    AggKind::Sum | AggKind::Avg | AggKind::Var | AggKind::StdDev => match col.ty {
                        edgelet_store::ColumnType::Int | edgelet_store::ColumnType::Float => Ok(()),
                        other => Err(Error::InvalidQuery(format!(
                            "{k}({c}) needs a numeric column, `{c}` is {other}"
                        ))),
                    },
                    _ => Ok(()),
                }
            }
        }
    }

    /// Fresh (empty) partial state.
    pub fn init(&self) -> PartialAgg {
        match self.kind {
            AggKind::Count => PartialAgg::Count(0),
            AggKind::Sum => PartialAgg::Sum(0.0),
            AggKind::Min => PartialAgg::Min(None),
            AggKind::Max => PartialAgg::Max(None),
            AggKind::Avg => PartialAgg::Avg { sum: 0.0, count: 0 },
            AggKind::Var | AggKind::StdDev => PartialAgg::Moments {
                sum: 0.0,
                sum_sq: 0.0,
                count: 0,
            },
        }
    }

    /// Folds one row into a partial state.
    pub fn update(&self, state: &mut PartialAgg, schema: &Schema, row: &Row) -> Result<()> {
        let cell: Option<&Value> = match &self.column {
            None => None,
            Some(c) => Some(row.get(schema.index_of(c)?).ok_or_else(|| {
                Error::Schema(format!("row too short for aggregate column `{c}`"))
            })?),
        };
        match (state, self.kind) {
            (PartialAgg::Count(n), AggKind::Count) => {
                // COUNT(col) skips nulls; COUNT(*) counts every row.
                if cell.map(|v| !v.is_null()).unwrap_or(true) {
                    *n += 1;
                }
            }
            (PartialAgg::Sum(s), AggKind::Sum) => {
                if let Some(x) = cell.and_then(|v| v.as_f64()) {
                    *s += x;
                }
            }
            (PartialAgg::Min(m), AggKind::Min) => {
                if let Some(v) = cell {
                    if !v.is_null() {
                        let replace = match m {
                            None => true,
                            Some(cur) => {
                                matches!(v.compare(cur), Some(std::cmp::Ordering::Less))
                            }
                        };
                        if replace {
                            *m = Some(v.clone());
                        }
                    }
                }
            }
            (PartialAgg::Max(m), AggKind::Max) => {
                if let Some(v) = cell {
                    if !v.is_null() {
                        let replace = match m {
                            None => true,
                            Some(cur) => {
                                matches!(v.compare(cur), Some(std::cmp::Ordering::Greater))
                            }
                        };
                        if replace {
                            *m = Some(v.clone());
                        }
                    }
                }
            }
            (PartialAgg::Avg { sum, count }, AggKind::Avg) => {
                if let Some(x) = cell.and_then(|v| v.as_f64()) {
                    *sum += x;
                    *count += 1;
                }
            }
            (PartialAgg::Moments { sum, sum_sq, count }, AggKind::Var | AggKind::StdDev) => {
                if let Some(x) = cell.and_then(|v| v.as_f64()) {
                    *sum += x;
                    *sum_sq += x * x;
                    *count += 1;
                }
            }
            (state, kind) => {
                return Err(Error::InvalidQuery(format!(
                    "partial state {state:?} does not match aggregate {kind}"
                )))
            }
        }
        Ok(())
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.column {
            None => write!(f, "{}(*)", self.kind),
            Some(c) => write!(f, "{}({c})", self.kind),
        }
    }
}

/// Mergeable partial aggregate state.
#[derive(Debug, Clone, PartialEq)]
pub enum PartialAgg {
    /// Running count.
    Count(u64),
    /// Running sum.
    Sum(f64),
    /// Running minimum.
    Min(Option<Value>),
    /// Running maximum.
    Max(Option<Value>),
    /// Running sum + count for AVG.
    Avg {
        /// Sum of inputs.
        sum: f64,
        /// Count of non-null inputs.
        count: u64,
    },
    /// Running first and second moments for VAR/STDDEV.
    Moments {
        /// Sum of inputs.
        sum: f64,
        /// Sum of squared inputs.
        sum_sq: f64,
        /// Count of non-null inputs.
        count: u64,
    },
}

impl PartialAgg {
    /// Merges another partial of the same shape into this one.
    pub fn merge(&mut self, other: &PartialAgg) -> Result<()> {
        match (self, other) {
            (PartialAgg::Count(a), PartialAgg::Count(b)) => *a += b,
            (PartialAgg::Sum(a), PartialAgg::Sum(b)) => *a += b,
            (PartialAgg::Min(a), PartialAgg::Min(b)) => {
                if let Some(bv) = b {
                    let replace = match &a {
                        None => true,
                        Some(av) => {
                            matches!(bv.compare(av), Some(std::cmp::Ordering::Less))
                        }
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (PartialAgg::Max(a), PartialAgg::Max(b)) => {
                if let Some(bv) = b {
                    let replace = match &a {
                        None => true,
                        Some(av) => {
                            matches!(bv.compare(av), Some(std::cmp::Ordering::Greater))
                        }
                    };
                    if replace {
                        *a = Some(bv.clone());
                    }
                }
            }
            (
                PartialAgg::Avg {
                    sum: a_s,
                    count: a_c,
                },
                PartialAgg::Avg {
                    sum: b_s,
                    count: b_c,
                },
            ) => {
                *a_s += b_s;
                *a_c += b_c;
            }
            (
                PartialAgg::Moments {
                    sum: a_s,
                    sum_sq: a_q,
                    count: a_c,
                },
                PartialAgg::Moments {
                    sum: b_s,
                    sum_sq: b_q,
                    count: b_c,
                },
            ) => {
                *a_s += b_s;
                *a_q += b_q;
                *a_c += b_c;
            }
            (a, b) => {
                return Err(Error::Protocol(format!(
                    "cannot merge mismatched partials {a:?} / {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Finalizes to a result value.
    pub fn finalize(&self) -> Value {
        match self {
            PartialAgg::Count(n) => Value::Int(*n as i64),
            PartialAgg::Sum(s) => Value::Float(*s),
            PartialAgg::Min(v) | PartialAgg::Max(v) => v.clone().unwrap_or(Value::Null),
            PartialAgg::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
            PartialAgg::Moments { sum, sum_sq, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    let n = *count as f64;
                    let mean = sum / n;
                    // Guard tiny negative values from float cancellation.
                    Value::Float((sum_sq / n - mean * mean).max(0.0))
                }
            }
        }
    }

    /// Finalizes interpreting the state for the given aggregate kind
    /// (VAR and STDDEV share the moments state but finalize differently).
    pub fn finalize_as(&self, kind: AggKind) -> Value {
        match (self, kind) {
            (PartialAgg::Moments { .. }, AggKind::StdDev) => match self.finalize() {
                Value::Float(var) => Value::Float(var.sqrt()),
                other => other,
            },
            _ => self.finalize(),
        }
    }
}

const TAG_COUNT: u64 = 0;
const TAG_SUM: u64 = 1;
const TAG_MIN: u64 = 2;
const TAG_MAX: u64 = 3;
const TAG_AVG: u64 = 4;
const TAG_MOMENTS: u64 = 5;

impl Encode for PartialAgg {
    fn encode(&self, w: &mut Writer) {
        match self {
            PartialAgg::Count(n) => {
                w.put_varint(TAG_COUNT);
                n.encode(w);
            }
            PartialAgg::Sum(s) => {
                w.put_varint(TAG_SUM);
                s.encode(w);
            }
            PartialAgg::Min(v) => {
                w.put_varint(TAG_MIN);
                v.encode(w);
            }
            PartialAgg::Max(v) => {
                w.put_varint(TAG_MAX);
                v.encode(w);
            }
            PartialAgg::Avg { sum, count } => {
                w.put_varint(TAG_AVG);
                sum.encode(w);
                count.encode(w);
            }
            PartialAgg::Moments { sum, sum_sq, count } => {
                w.put_varint(TAG_MOMENTS);
                sum.encode(w);
                sum_sq.encode(w);
                count.encode(w);
            }
        }
    }
}

impl Decode for PartialAgg {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.varint()? {
            TAG_COUNT => Ok(PartialAgg::Count(u64::decode(r)?)),
            TAG_SUM => Ok(PartialAgg::Sum(f64::decode(r)?)),
            TAG_MIN => Ok(PartialAgg::Min(Option::<Value>::decode(r)?)),
            TAG_MAX => Ok(PartialAgg::Max(Option::<Value>::decode(r)?)),
            TAG_AVG => Ok(PartialAgg::Avg {
                sum: f64::decode(r)?,
                count: u64::decode(r)?,
            }),
            TAG_MOMENTS => Ok(PartialAgg::Moments {
                sum: f64::decode(r)?,
                sum_sq: f64::decode(r)?,
                count: u64::decode(r)?,
            }),
            other => Err(Error::Decode(format!("invalid partial agg tag {other}"))),
        }
    }
}

impl Encode for AggSpec {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self.kind {
            AggKind::Count => 0,
            AggKind::Sum => 1,
            AggKind::Min => 2,
            AggKind::Max => 3,
            AggKind::Avg => 4,
            AggKind::Var => 5,
            AggKind::StdDev => 6,
        };
        tag.encode(w);
        self.column.encode(w);
    }
}

impl Decode for AggSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let kind = match u8::decode(r)? {
            0 => AggKind::Count,
            1 => AggKind::Sum,
            2 => AggKind::Min,
            3 => AggKind::Max,
            4 => AggKind::Avg,
            5 => AggKind::Var,
            6 => AggKind::StdDev,
            other => return Err(Error::Decode(format!("invalid agg kind tag {other}"))),
        };
        Ok(AggSpec {
            kind,
            column: Option::<String>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_store::ColumnType;
    use edgelet_wire::{from_bytes, to_bytes};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![("age", ColumnType::Int), ("bmi", ColumnType::Float)]).unwrap()
    }

    fn row(age: Option<i64>, bmi: f64) -> Row {
        Row::new(vec![
            age.map(Value::Int).unwrap_or(Value::Null),
            Value::Float(bmi),
        ])
    }

    #[test]
    fn count_star_vs_count_column() {
        let s = schema();
        let star = AggSpec::count_star();
        let col = AggSpec::over(AggKind::Count, "age");
        let mut st_star = star.init();
        let mut st_col = col.init();
        for r in [row(Some(1), 20.0), row(None, 21.0), row(Some(3), 22.0)] {
            star.update(&mut st_star, &s, &r).unwrap();
            col.update(&mut st_col, &s, &r).unwrap();
        }
        assert_eq!(st_star.finalize(), Value::Int(3));
        assert_eq!(st_col.finalize(), Value::Int(2));
    }

    #[test]
    fn sum_min_max_avg() {
        let s = schema();
        let rows = [row(Some(70), 20.0), row(Some(80), 30.0), row(None, 25.0)];
        let mut states: Vec<(AggSpec, PartialAgg)> = [
            AggSpec::over(AggKind::Sum, "bmi"),
            AggSpec::over(AggKind::Min, "age"),
            AggSpec::over(AggKind::Max, "age"),
            AggSpec::over(AggKind::Avg, "bmi"),
        ]
        .into_iter()
        .map(|spec| {
            let st = spec.init();
            (spec, st)
        })
        .collect();
        for r in &rows {
            for (spec, st) in states.iter_mut() {
                spec.update(st, &s, r).unwrap();
            }
        }
        assert_eq!(states[0].1.finalize(), Value::Float(75.0));
        assert_eq!(states[1].1.finalize(), Value::Int(70));
        assert_eq!(states[2].1.finalize(), Value::Int(80));
        assert_eq!(states[3].1.finalize(), Value::Float(25.0));
    }

    #[test]
    fn empty_states_finalize_sensibly() {
        assert_eq!(AggSpec::count_star().init().finalize(), Value::Int(0));
        assert_eq!(
            AggSpec::over(AggKind::Sum, "bmi").init().finalize(),
            Value::Float(0.0)
        );
        assert_eq!(
            AggSpec::over(AggKind::Min, "age").init().finalize(),
            Value::Null
        );
        assert_eq!(
            AggSpec::over(AggKind::Avg, "bmi").init().finalize(),
            Value::Null
        );
    }

    #[test]
    fn validation() {
        let s = schema();
        AggSpec::count_star().validate(&s).unwrap();
        AggSpec::over(AggKind::Avg, "bmi").validate(&s).unwrap();
        assert!(AggSpec::over(AggKind::Sum, "nope").validate(&s).is_err());
        let text_schema = Schema::new(vec![("name", ColumnType::Text)]).unwrap();
        assert!(AggSpec::over(AggKind::Sum, "name")
            .validate(&text_schema)
            .is_err());
        AggSpec::over(AggKind::Min, "name")
            .validate(&text_schema)
            .unwrap();
        assert!(AggSpec {
            kind: AggKind::Sum,
            column: None
        }
        .validate(&s)
        .is_err());
    }

    #[test]
    fn variance_matches_direct_computation() {
        let s = schema();
        let xs = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let spec = AggSpec::over(AggKind::Var, "bmi");
        let mut st = spec.init();
        for &x in &xs {
            spec.update(&mut st, &s, &row(Some(1), x)).unwrap();
        }
        // Known population variance of this classic sample is 4.
        assert_eq!(st.finalize(), Value::Float(4.0));
        assert_eq!(st.finalize_as(AggKind::StdDev), Value::Float(2.0));
        // Var over no inputs is null.
        assert_eq!(spec.init().finalize(), Value::Null);
    }

    #[test]
    fn variance_is_distributive() {
        let s = schema();
        let xs: Vec<f64> = (0..50).map(|i| (i as f64) * 0.7 - 10.0).collect();
        let spec = AggSpec::over(AggKind::Var, "bmi");
        let mut whole = spec.init();
        for &x in &xs {
            spec.update(&mut whole, &s, &row(Some(1), x)).unwrap();
        }
        let mut a = spec.init();
        let mut b = spec.init();
        for &x in &xs[..20] {
            spec.update(&mut a, &s, &row(Some(1), x)).unwrap();
        }
        for &x in &xs[20..] {
            spec.update(&mut b, &s, &row(Some(1), x)).unwrap();
        }
        a.merge(&b).unwrap();
        let (Value::Float(va), Value::Float(vw)) = (a.finalize(), whole.finalize()) else {
            panic!("floats expected");
        };
        assert!((va - vw).abs() < 1e-9);
    }

    #[test]
    fn stddev_on_text_rejected() {
        let text_schema = Schema::new(vec![("name", ColumnType::Text)]).unwrap();
        assert!(AggSpec::over(AggKind::StdDev, "name")
            .validate(&text_schema)
            .is_err());
        assert!(AggSpec::over(AggKind::Var, "name")
            .validate(&text_schema)
            .is_err());
    }

    #[test]
    fn merge_mismatch_fails() {
        let mut a = PartialAgg::Count(1);
        assert!(a.merge(&PartialAgg::Sum(2.0)).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        for p in [
            PartialAgg::Count(7),
            PartialAgg::Sum(-1.5),
            PartialAgg::Min(Some(Value::Int(3))),
            PartialAgg::Max(None),
            PartialAgg::Avg {
                sum: 10.0,
                count: 4,
            },
            PartialAgg::Moments {
                sum: 3.0,
                sum_sq: 5.0,
                count: 2,
            },
        ] {
            let back: PartialAgg = from_bytes(&to_bytes(&p)).unwrap();
            assert_eq!(back, p);
        }
        let spec = AggSpec::over(AggKind::Avg, "bmi");
        let back: AggSpec = from_bytes(&to_bytes(&spec)).unwrap();
        assert_eq!(back, spec);
    }

    proptest! {
        /// Distributivity: fold(all) == merge(fold(chunk_1), ..., fold(chunk_k)).
        #[test]
        fn prop_merge_equals_global_fold(
            ages in prop::collection::vec(0i64..100, 1..60),
            split in any::<prop::sample::Index>(),
        ) {
            let s = Schema::new(vec![("age", ColumnType::Int)]).unwrap();
            let rows: Vec<Row> = ages.iter().map(|&a| Row::new(vec![Value::Int(a)])).collect();
            let cut = split.index(rows.len());
            for spec in [
                AggSpec::count_star(),
                AggSpec::over(AggKind::Sum, "age"),
                AggSpec::over(AggKind::Min, "age"),
                AggSpec::over(AggKind::Max, "age"),
                AggSpec::over(AggKind::Avg, "age"),
                AggSpec::over(AggKind::Var, "age"),
            ] {
                let mut global = spec.init();
                for r in &rows {
                    spec.update(&mut global, &s, r).unwrap();
                }
                let mut left = spec.init();
                for r in &rows[..cut] {
                    spec.update(&mut left, &s, r).unwrap();
                }
                let mut right = spec.init();
                for r in &rows[cut..] {
                    spec.update(&mut right, &s, r).unwrap();
                }
                left.merge(&right).unwrap();
                prop_assert_eq!(left.finalize(), global.finalize());
            }
        }
    }
}
