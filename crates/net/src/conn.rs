//! Connection plumbing: address parsing, listener/stream abstraction
//! over UDS and TCP, framed message streams, reconnect backoff, and the
//! real-time timer heap.
//!
//! Everything here is blocking std networking — no async runtime, in
//! keeping with the rest of the live stack. Timeouts come from
//! `set_read_timeout` plus the [`TimerHeap`] that control loops use to
//! schedule handshake deadlines and reconnect attempts.

use crate::framing::{encode_frame, FrameDecoder};
use crate::proto::NetMsg;
use edgelet_util::{Error, Result};
use edgelet_wire::{from_bytes, to_bytes};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A listen/connect endpoint: `uds:<path>` or `tcp:<host>:<port>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// Unix domain socket at the given filesystem path.
    Uds(PathBuf),
    /// TCP endpoint as a `host:port` string.
    Tcp(String),
}

impl Addr {
    /// Parses `uds:<path>` / `tcp:<host>:<port>`.
    pub fn parse(s: &str) -> Result<Addr> {
        if let Some(path) = s.strip_prefix("uds:") {
            if path.is_empty() {
                return Err(Error::InvalidConfig("empty uds path".into()));
            }
            return Ok(Addr::Uds(PathBuf::from(path)));
        }
        if let Some(hostport) = s.strip_prefix("tcp:") {
            let Some((host, port)) = hostport.rsplit_once(':') else {
                return Err(Error::InvalidConfig(format!(
                    "tcp address `{hostport}` missing :port"
                )));
            };
            if host.is_empty() {
                return Err(Error::InvalidConfig(format!(
                    "tcp address `{hostport}` missing host"
                )));
            }
            if port.parse::<u16>().is_err() {
                return Err(Error::InvalidConfig(format!(
                    "tcp address `{hostport}` has invalid port `{port}`"
                )));
            }
            return Ok(Addr::Tcp(hostport.to_string()));
        }
        Err(Error::InvalidConfig(format!(
            "address `{s}` must start with uds: or tcp:"
        )))
    }

    /// True for the TCP flavor (analyzer lint W151 cares).
    pub fn is_tcp(&self) -> bool {
        matches!(self, Addr::Tcp(_))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Uds(p) => write!(f, "uds:{}", p.display()),
            Addr::Tcp(hp) => write!(f, "tcp:{hp}"),
        }
    }
}

/// A bound listening socket of either flavor.
pub enum Listener {
    /// Unix domain socket listener; the path is removed on drop.
    Uds(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`. An existing UDS path is unlinked first (stale
    /// socket from a dead daemon); a live daemon on the same path will
    /// lose its listener, which the analyzer lint E150 exists to
    /// prevent at config time.
    pub fn bind(addr: &Addr) -> Result<Listener> {
        match addr {
            Addr::Uds(path) => {
                if path.exists() {
                    std::fs::remove_file(path)
                        .map_err(|e| Error::InvalidConfig(format!("unlink {path:?}: {e}")))?;
                }
                let l = UnixListener::bind(path)
                    .map_err(|e| Error::InvalidConfig(format!("bind {path:?}: {e}")))?;
                Ok(Listener::Uds(l, path.clone()))
            }
            Addr::Tcp(hp) => {
                let l = TcpListener::bind(hp)
                    .map_err(|e| Error::InvalidConfig(format!("bind {hp}: {e}")))?;
                Ok(Listener::Tcp(l))
            }
        }
    }

    /// Accepts one connection (blocking).
    pub fn accept(&self) -> Result<Stream> {
        match self {
            Listener::Uds(l, _) => {
                let (s, _) = l.accept().map_err(io_err)?;
                Ok(Stream::Uds(s))
            }
            Listener::Tcp(l) => {
                let (s, _) = l.accept().map_err(io_err)?;
                s.set_nodelay(true).ok();
                Ok(Stream::Tcp(s))
            }
        }
    }

    /// The address this listener is actually bound to (for TCP with
    /// port 0, the kernel-assigned port).
    pub fn local_addr(&self) -> Result<Addr> {
        match self {
            Listener::Uds(_, path) => Ok(Addr::Uds(path.clone())),
            Listener::Tcp(l) => {
                let a = l.local_addr().map_err(io_err)?;
                Ok(Addr::Tcp(a.to_string()))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Uds(_, path) = self {
            std::fs::remove_file(path).ok();
        }
    }
}

/// A connected byte stream of either flavor.
pub enum Stream {
    /// Unix domain socket stream.
    Uds(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `addr` (blocking).
    pub fn connect(addr: &Addr) -> Result<Stream> {
        match addr {
            Addr::Uds(path) => Ok(Stream::Uds(UnixStream::connect(path).map_err(io_err)?)),
            Addr::Tcp(hp) => {
                let s = TcpStream::connect(hp).map_err(io_err)?;
                s.set_nodelay(true).ok();
                Ok(Stream::Tcp(s))
            }
        }
    }

    /// Sets (or clears) the read timeout.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(dur).map_err(io_err),
            Stream::Tcp(s) => s.set_read_timeout(dur).map_err(io_err),
        }
    }

    /// Clones the underlying descriptor (independent read/write halves).
    pub fn try_clone(&self) -> Result<Stream> {
        match self {
            Stream::Uds(s) => Ok(Stream::Uds(s.try_clone().map_err(io_err)?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone().map_err(io_err)?)),
        }
    }

    /// Shuts down both directions, unblocking any reader.
    pub fn shutdown(&self) {
        match self {
            Stream::Uds(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
            Stream::Tcp(s) => {
                s.shutdown(std::net::Shutdown::Both).ok();
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Protocol(format!("io: {e}"))
}

/// A [`Stream`] carrying framed [`NetMsg`]s.
pub struct MsgStream {
    stream: Stream,
    dec: FrameDecoder,
    read_buf: Vec<u8>,
}

impl MsgStream {
    /// Wraps a connected stream at a frame boundary.
    pub fn new(stream: Stream) -> MsgStream {
        MsgStream {
            stream,
            dec: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
        }
    }

    /// Sends one message as a single frame (write + flush).
    pub fn send(&mut self, msg: &NetMsg) -> Result<()> {
        let frame = encode_frame(&to_bytes(msg));
        self.stream.write_all(&frame).map_err(io_err)?;
        self.stream.flush().map_err(io_err)
    }

    /// Receives the next message, blocking up to `timeout` (`None` =
    /// forever). Errors on EOF, socket error, frame corruption, or
    /// timeout expiry — all of which mean the connection is done.
    pub fn recv(&mut self, timeout: Option<Duration>) -> Result<NetMsg> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(body) = self.dec.next_frame()? {
                return from_bytes::<NetMsg>(&body);
            }
            let per_read = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(Error::Protocol("recv timeout".into()));
                    }
                    Some(left)
                }
                None => None,
            };
            self.stream.set_read_timeout(per_read)?;
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => return Err(Error::Protocol("connection closed".into())),
                Ok(n) => {
                    let chunk = self.read_buf[..n].to_vec();
                    self.dec.push(&chunk);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(Error::Protocol("recv timeout".into()));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Shuts the connection down, unblocking any concurrent reader.
    pub fn shutdown(&self) {
        self.stream.shutdown();
    }

    /// Borrows the underlying stream (e.g. to `try_clone` for a
    /// shutdown handle).
    pub fn stream(&self) -> &Stream {
        &self.stream
    }
}

/// Truncated-exponential reconnect backoff.
#[derive(Debug, Clone)]
pub struct Backoff {
    initial: Duration,
    max: Duration,
    cur: Duration,
}

impl Backoff {
    /// A backoff starting at `initial`, doubling up to `max`.
    pub fn new(initial: Duration, max: Duration) -> Backoff {
        let initial = initial.max(Duration::from_millis(1));
        Backoff {
            initial,
            max: max.max(initial),
            cur: initial,
        }
    }

    /// The next delay; each call doubles the following one (capped).
    pub fn delay(&mut self) -> Duration {
        let d = self.cur;
        self.cur = (self.cur * 2).min(self.max);
        d
    }

    /// Resets after a successful connection.
    pub fn reset(&mut self) {
        self.cur = self.initial;
    }
}

/// A minimal real-time timer heap: `(deadline, token)` entries popped
/// in deadline order. Control loops use it for handshake deadlines and
/// reconnect scheduling rather than sleeping ad hoc.
pub struct TimerHeap<T> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    items: std::collections::HashMap<u64, T>,
    next: u64,
}

impl<T> Default for TimerHeap<T> {
    fn default() -> Self {
        TimerHeap {
            heap: Default::default(),
            items: Default::default(),
            next: 0,
        }
    }
}

impl<T> TimerHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `item` at `at`; returns a token usable for [`Self::cancel`].
    pub fn push(&mut self, at: Instant, item: T) -> u64 {
        let token = self.next;
        self.next += 1;
        self.heap.push(std::cmp::Reverse((at, token)));
        self.items.insert(token, item);
        token
    }

    /// Cancels a scheduled item, returning it if still pending.
    pub fn cancel(&mut self, token: u64) -> Option<T> {
        self.items.remove(&token)
    }

    /// Pops every item whose deadline is at or before `now`.
    pub fn pop_due(&mut self, now: Instant) -> Vec<T> {
        let mut due = vec![];
        while let Some(std::cmp::Reverse((at, token))) = self.heap.peek().copied() {
            if at > now {
                break;
            }
            self.heap.pop();
            if let Some(item) = self.items.remove(&token) {
                due.push(item);
            }
        }
        due
    }

    /// The earliest pending deadline, skipping cancelled entries.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(std::cmp::Reverse((at, token))) = self.heap.peek().copied() {
            if self.items.contains_key(&token) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&mut self) -> bool {
        self.next_deadline().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Role;

    #[test]
    fn addr_parses_both_flavors() {
        assert_eq!(
            Addr::parse("uds:/tmp/x.sock").unwrap(),
            Addr::Uds(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:9000").unwrap(),
            Addr::Tcp("127.0.0.1:9000".into())
        );
        assert!(Addr::parse("udp:1.2.3.4:1").is_err());
        assert!(Addr::parse("uds:").is_err());
        assert!(Addr::parse("tcp:nohost").is_err());
        assert!(Addr::parse("tcp::123").is_err());
        assert!(Addr::parse("tcp:h:badport").is_err());
        assert_eq!(Addr::parse("tcp:h:1").unwrap().to_string(), "tcp:h:1");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(b.delay(), Duration::from_millis(10));
        assert_eq!(b.delay(), Duration::from_millis(20));
        assert_eq!(b.delay(), Duration::from_millis(35));
        assert_eq!(b.delay(), Duration::from_millis(35));
        b.reset();
        assert_eq!(b.delay(), Duration::from_millis(10));
    }

    #[test]
    fn timer_heap_orders_and_cancels() {
        let mut h = TimerHeap::new();
        let now = Instant::now();
        let t1 = h.push(now + Duration::from_millis(50), "late");
        let _t2 = h.push(now + Duration::from_millis(10), "early");
        assert_eq!(h.pop_due(now), Vec::<&str>::new());
        assert_eq!(h.pop_due(now + Duration::from_millis(20)), vec!["early"]);
        assert_eq!(h.cancel(t1), Some("late"));
        assert_eq!(
            h.pop_due(now + Duration::from_millis(100)),
            Vec::<&str>::new()
        );
        assert!(h.is_empty());
    }

    #[test]
    fn msg_stream_roundtrips_over_uds() {
        let dir = std::env::temp_dir().join(format!("eln-conn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = Addr::Uds(dir.join("t.sock"));
        let listener = Listener::bind(&addr).unwrap();
        let srv = std::thread::spawn(move || {
            let mut s = MsgStream::new(listener.accept().unwrap());
            let msg = s.recv(Some(Duration::from_secs(5))).unwrap();
            s.send(&msg).unwrap();
        });
        let mut c = MsgStream::new(Stream::connect(&addr).unwrap());
        let hello = NetMsg::hello(Role::Worker);
        c.send(&hello).unwrap();
        let echoed = c.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(echoed, hello);
        srv.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn msg_stream_roundtrips_over_tcp() {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = std::thread::spawn(move || {
            let mut s = MsgStream::new(listener.accept().unwrap());
            let msg = s.recv(Some(Duration::from_secs(5))).unwrap();
            s.send(&msg).unwrap();
        });
        let mut c = MsgStream::new(Stream::connect(&addr).unwrap());
        c.send(&NetMsg::Ping { nonce: 5 }).unwrap();
        assert_eq!(
            c.recv(Some(Duration::from_secs(5))).unwrap(),
            NetMsg::Ping { nonce: 5 }
        );
        srv.join().unwrap();
    }

    #[test]
    fn recv_times_out() {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c = MsgStream::new(Stream::connect(&addr).unwrap());
        let err = c.recv(Some(Duration::from_millis(50))).unwrap_err();
        assert!(format!("{err:?}").contains("timeout"), "{err:?}");
    }
}
