//! The daemon side of the multi-process deployment: connection
//! acceptance, the worker registry, and the window coordinator that
//! plugs into [`edgelet_live::QueryService`] as its
//! [`RemoteExecutor`].
//!
//! # Control loop
//!
//! `edgelet serve` binds a [`Listener`] and runs:
//!
//! * an **accept thread** that hands each connection to a short-lived
//!   handshake thread;
//! * per-connection **handshake threads** that validate the versioned
//!   `Hello` (reject on frame/envelope/protocol version mismatch),
//!   assign workers the lowest free registry slot, and park the
//!   registered stream — or queue client submissions for the host;
//! * a **deadline sweeper** over a real [`TimerHeap`]: a connection
//!   that has not completed its handshake by the deadline is shut
//!   down, unblocking its handler.
//!
//! # The coordinator
//!
//! [`Daemon::try_run`] is a faithful mirror of
//! `LiveEngine::run_until`'s window decision loop — same quiescence /
//! deadline / budget tests in the same order, same barrier merge in
//! worker order, same canonical journal replay — with the thread
//! barrier replaced by `OpenWindow`/`RoundDone` messages and envelope
//! relay (through the optional [`NetFaultProxy`]) replacing the shared
//! transport. The parity argument is in `docs/NET.md`; the
//! proof-by-test is `tests/net_parity.rs`.
//!
//! # Failure = fallback
//!
//! Any socket error mid-epoch drops every taken worker connection
//! (workers observe EOF and reconnect with backoff) and returns
//! `Some(Err(..))`, which the service answers with a deterministic
//! in-process rerun of the same epoch — the `kill -9` takeover drill
//! in CI exercises exactly this path.

use crate::conn::{Addr, Listener, MsgStream, Stream, TimerHeap};
use crate::fault::{FaultVerdict, NetFaultProxy};
use crate::proto::{NetMsg, Role, WireJEntry, WireRecord, PROTO_VERSION};
use edgelet_live::round::fold_min;
use edgelet_live::{ExitReason, LiveRun, PreparedQuery, RemoteExecutor};
use edgelet_query::{PrivacyConfig, QuerySpec, ResilienceConfig};
use edgelet_sim::{FaultPlan, SimMetrics, SimTime, Trace};
use edgelet_util::{Error, Result};
use edgelet_wire::{from_bytes, Envelope};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Builds the fully-prepared live world for one epoch from canonical
/// world-spec bytes.
///
/// Both the daemon and every worker process run the same builder over
/// the same bytes, so all of them hold bit-identical worlds (same
/// seed, same device order, same RNG fork schedule, same actor install
/// order) — the foundation the relay protocol's parity rests on. The
/// socket layer never interprets the bytes; the host (the CLI) defines
/// their encoding.
pub trait WorldBuilder: Send + Sync {
    /// Builds the world for `epoch`, sliced for `workers` processes.
    fn build(&self, spec: &[u8], epoch: u64, workers: usize) -> Result<PreparedQuery>;
}

/// Daemon configuration.
#[derive(Clone)]
pub struct NetConfig {
    /// Worker processes the coordinator waits for before running an
    /// epoch remotely (fewer registered → local fallback).
    pub expected_workers: usize,
    /// Handshake completion deadline per connection.
    pub handshake_timeout: Duration,
    /// Per-message receive timeout during an epoch (`RoundDone`,
    /// `QueryDone`); world construction gets `prepare_timeout`.
    pub io_timeout: Duration,
    /// `Ready` deadline after `Prepare` (world building takes a while).
    pub prepare_timeout: Duration,
    /// Optional relay fault plan; when set, workers route own-lane
    /// sends through the daemon so the proxy observes every envelope.
    pub fault_plan: Option<FaultPlan>,
    /// Canonical world-spec bytes this daemon serves.
    pub world_spec: Vec<u8>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            expected_workers: 1,
            handshake_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(60),
            prepare_timeout: Duration::from_secs(120),
            fault_plan: None,
            world_spec: Vec::new(),
        }
    }
}

/// One client submission pulled off a connection: the opaque spec
/// bytes plus the stream to answer on.
pub struct Submission {
    /// The client's world-spec bytes, verbatim.
    pub spec: Vec<u8>,
    stream: MsgStream,
}

impl Submission {
    /// Answers the client and closes the connection.
    pub fn respond(mut self, artifact: Vec<u8>) {
        self.stream.send(&NetMsg::SubmitResp { artifact }).ok();
        self.stream.shutdown();
    }

    /// Refuses the submission with a reason and closes the connection.
    pub fn reject(mut self, reason: String) {
        self.stream.send(&NetMsg::Reject { reason }).ok();
        self.stream.shutdown();
    }
}

/// Shared daemon state.
struct DaemonShared {
    /// Registered worker connections by slot; `None` = free.
    registry: Mutex<Vec<Option<MsgStream>>>,
    registry_cv: Condvar,
    /// Client submissions awaiting the host.
    submissions: Mutex<VecDeque<Submission>>,
    submissions_cv: Condvar,
    /// Handshake deadlines: token → shutdown handle for the pending
    /// connection.
    deadlines: Mutex<TimerHeap<Stream>>,
    deadlines_cv: Condvar,
    shutdown: AtomicBool,
    /// Total workers ever registered (observability).
    registrations: AtomicU64,
    /// Sessions rejected during handshake (observability).
    rejections: AtomicU64,
}

/// The daemon: accept loop, worker registry, and window coordinator.
pub struct Daemon {
    shared: Arc<DaemonShared>,
    config: NetConfig,
    builder: Arc<dyn WorldBuilder>,
    addr: Addr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    sweeper_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Daemon {
    /// Binds `addr` and starts the accept and sweeper threads.
    pub fn start(addr: &Addr, config: NetConfig, builder: Arc<dyn WorldBuilder>) -> Result<Daemon> {
        let listener = Listener::bind(addr)?;
        let bound = listener.local_addr()?;
        let shared = Arc::new(DaemonShared {
            registry: Mutex::new((0..config.expected_workers).map(|_| None).collect()),
            registry_cv: Condvar::new(),
            submissions: Mutex::new(VecDeque::new()),
            submissions_cv: Condvar::new(),
            deadlines: Mutex::new(TimerHeap::new()),
            deadlines_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            registrations: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let handshake_timeout = config.handshake_timeout;
        let accept_thread = std::thread::Builder::new()
            .name("net-accept".into())
            .spawn(move || {
                accept_loop(listener, accept_shared, handshake_timeout);
            })
            .map_err(|e| Error::Protocol(format!("spawn accept thread: {e}")))?;
        let sweeper_shared = Arc::clone(&shared);
        let sweeper_thread = std::thread::Builder::new()
            .name("net-deadline-sweeper".into())
            .spawn(move || sweeper_loop(sweeper_shared))
            .map_err(|e| Error::Protocol(format!("spawn sweeper thread: {e}")))?;
        Ok(Daemon {
            shared,
            config,
            builder,
            addr: bound,
            accept_thread: Mutex::new(Some(accept_thread)),
            sweeper_thread: Mutex::new(Some(sweeper_thread)),
        })
    }

    /// The address the daemon is actually listening on.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Number of workers currently registered.
    pub fn registered_workers(&self) -> usize {
        lock(&self.shared.registry)
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Total worker registrations accepted so far (reconnects count).
    pub fn total_registrations(&self) -> u64 {
        self.shared.registrations.load(Ordering::Relaxed)
    }

    /// Sessions rejected during handshake so far.
    pub fn total_rejections(&self) -> u64 {
        self.shared.rejections.load(Ordering::Relaxed)
    }

    /// Blocks until all expected workers are registered, or `timeout`.
    pub fn wait_workers(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut reg = lock(&self.shared.registry);
        loop {
            if reg.iter().all(|s| s.is_some()) {
                return true;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return false;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (g, _) = self
                .shared
                .registry_cv
                .wait_timeout(reg, left)
                .unwrap_or_else(|e| e.into_inner());
            reg = g;
        }
    }

    /// Pulls the next client submission, blocking up to `timeout`.
    pub fn next_submission(&self, timeout: Duration) -> Option<Submission> {
        let deadline = Instant::now() + timeout;
        let mut q = lock(&self.shared.submissions);
        loop {
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (g, _) = self
                .shared
                .submissions_cv
                .wait_timeout(q, left)
                .unwrap_or_else(|e| e.into_inner());
            q = g;
        }
    }

    /// Stops the accept loop, closes every registered connection, and
    /// joins the daemon threads.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept thread with a throwaway connection.
        Stream::connect(&self.addr).ok();
        self.shared.deadlines_cv.notify_all();
        self.shared.registry_cv.notify_all();
        self.shared.submissions_cv.notify_all();
        // Take every stream and both thread handles out under their
        // locks, then close/join outside them: a socket shutdown or a
        // join must never stall a handshake contending for the lock.
        let mut streams = Vec::new();
        {
            let mut reg = lock(&self.shared.registry);
            for slot in reg.iter_mut() {
                if let Some(s) = slot.take() {
                    streams.push(s);
                }
            }
        }
        for s in streams {
            s.shutdown();
        }
        let accept = { lock(&self.accept_thread).take() };
        if let Some(h) = accept {
            h.join().ok();
        }
        let sweeper = { lock(&self.sweeper_thread).take() };
        if let Some(h) = sweeper {
            h.join().ok();
        }
    }

    /// Takes every registered worker stream out of the registry,
    /// probing each with a `Ping` (half-open detection: a worker that
    /// was killed leaves a dead socket behind; the probe surfaces it
    /// now rather than mid-epoch). Returns `None` unless all
    /// `expected_workers` slots hold live connections.
    fn take_live_workers(&self) -> Option<Vec<MsgStream>> {
        let mut taken: Vec<(usize, MsgStream)> = {
            let mut reg = lock(&self.shared.registry);
            if reg.iter().any(|s| s.is_none()) {
                return None;
            }
            reg.iter_mut()
                .enumerate()
                .map(|(i, s)| (i, s.take().expect("checked non-empty")))
                .collect()
        };
        let nonce = self.shared.registrations.load(Ordering::Relaxed) ^ 0x6e65_745f_7069_6e67;
        let mut all_live = true;
        for (_, stream) in taken.iter_mut() {
            let live = stream.send(&NetMsg::Ping { nonce }).is_ok()
                && matches!(
                    stream.recv(Some(self.config.io_timeout)),
                    Ok(NetMsg::Pong { nonce: n }) if n == nonce
                );
            if !live {
                all_live = false;
            }
        }
        if all_live {
            return Some(taken.into_iter().map(|(_, s)| s).collect());
        }
        // Drop dead connections (slots stay free for reconnects); put
        // live ones back.
        let mut reg = lock(&self.shared.registry);
        for (i, stream) in taken {
            // A stream that failed the probe is dropped here; the rest
            // return to their slots. Re-probing on the next epoch is
            // cheap and keeps this branch simple.
            if reg[i].is_none() {
                reg[i] = Some(stream);
            }
        }
        drop(reg);
        None
    }

    /// Returns worker streams to their registry slots after a
    /// successful epoch.
    fn return_workers(&self, streams: Vec<MsgStream>) {
        let mut reg = lock(&self.shared.registry);
        for (slot, stream) in reg.iter_mut().zip(streams) {
            *slot = Some(stream);
        }
        drop(reg);
        self.shared.registry_cv.notify_all();
    }

    /// The distributed run of one epoch; `Err` here means "fall back to
    /// the in-process path" (the caller drops the worker streams
    /// first).
    fn run_distributed(
        &self,
        epoch: u64,
        workers: &mut [MsgStream],
        abort: &AtomicBool,
    ) -> Result<LiveRun> {
        let worker_count = workers.len();
        let fault_mode = self.config.fault_plan.is_some();
        let mut proxy = match &self.config.fault_plan {
            Some(plan) => Some(NetFaultProxy::new(plan.clone())?),
            None => None,
        };

        // Build the daemon's own copy of the world: it keeps the plan
        // and the report-side assembly handles; the worker slices are
        // dropped (remote processes hold the real ones).
        let PreparedQuery {
            plan,
            engine,
            assembly,
        } = self
            .builder
            .build(&self.config.world_spec, epoch, worker_count)?;
        let deadline_us = edgelet_sim::Duration::from_secs_f64(plan.spec.deadline_secs).as_micros();
        let parts = engine.into_parts();
        let mut min_at: Option<u64> = None;
        for w in &parts.workers {
            min_at = fold_min(min_at, w.heap_min());
        }
        drop(parts.workers);
        let classifier = parts.classifier;
        let width = parts.lookahead_us.max(1);
        let max_events = parts.config.max_events;

        // Prepare every worker, then await all Ready acks.
        for (i, stream) in workers.iter_mut().enumerate() {
            stream.send(&NetMsg::Prepare {
                epoch,
                spec: self.config.world_spec.clone(),
                worker_count: worker_count as u32,
                worker_index: i as u32,
                fault_mode,
            })?;
        }
        for stream in workers.iter_mut() {
            match stream.recv(Some(self.config.prepare_timeout))? {
                NetMsg::Ready { epoch: e } if e == epoch => {}
                NetMsg::Reject { reason } => {
                    return Err(Error::Protocol(format!(
                        "worker rejected prepare: {reason}"
                    )))
                }
                other => return Err(Error::Protocol(format!("expected Ready, got {other:?}"))),
            }
        }

        // ---- the window decision loop (run_until's mirror) ----
        let mut metrics = SimMetrics::default();
        let mut trace = Trace::new(parts.config.trace_capacity);
        let mut real_pending = parts.real_pending;
        let mut cell_open_until = 0u64;
        let mut pending_relay: Vec<Vec<Envelope>> = vec![Vec::new(); worker_count];
        let mut journal_scratch: Vec<WireJEntry> = Vec::new();
        let mut final_record: Option<WireRecord> = None;

        let exit = loop {
            if abort.load(Ordering::Acquire) {
                break ExitReason::Aborted;
            }
            let Some(m) = min_at else {
                break ExitReason::Quiescent;
            };
            if m >= cell_open_until && real_pending == 0 {
                break ExitReason::Quiescent;
            }
            if m > deadline_us {
                break ExitReason::Deadline;
            }
            if metrics.events_processed >= max_events {
                break ExitReason::Budget;
            }
            let window_end = m.saturating_add(width);
            cell_open_until = window_end;
            let budget = max_events - metrics.events_processed;
            for (i, stream) in workers.iter_mut().enumerate() {
                if !pending_relay[i].is_empty() {
                    stream.send(&NetMsg::Envelopes {
                        epoch,
                        batch: std::mem::take(&mut pending_relay[i]),
                    })?;
                }
                stream.send(&NetMsg::OpenWindow {
                    epoch,
                    window_end_us: window_end,
                    clip_us: deadline_us,
                    budget,
                })?;
            }
            // Collect every worker's round, in worker order — the same
            // order the in-process barrier merges report slots.
            let mut next_min: Option<u64> = None;
            journal_scratch.clear();
            for stream in workers.iter_mut() {
                let round = match stream.recv(Some(self.config.io_timeout))? {
                    NetMsg::RoundDone { epoch: e, round } if e == epoch => round,
                    other => {
                        return Err(Error::Protocol(format!(
                            "expected RoundDone, got {other:?}"
                        )))
                    }
                };
                let d = &round.deltas;
                metrics.messages_sent += d.sent;
                metrics.messages_delivered += d.delivered;
                metrics.messages_dropped += d.dropped;
                metrics.messages_corrupted += d.corrupted;
                metrics.messages_to_crashed += d.to_crashed;
                metrics.bytes_sent += d.bytes_sent;
                metrics.delivery_delay.merge(&d.delay_stats());
                metrics.crashes += d.crashes;
                metrics.events_processed += d.events;
                real_pending = ((real_pending as i64) + d.real_pending).max(0) as u64;
                next_min = fold_min(next_min, round.pending_min);
                journal_scratch.extend(round.journal);
                // Relay the worker's outgoing envelopes, applying the
                // fault proxy en route. Event keys are globally unique,
                // so arrival order across workers cannot affect the
                // destination heap's ordering.
                for env in round.outgoing {
                    let verdicts = match proxy.as_mut() {
                        None => vec![env],
                        Some(p) => match p.apply(env, classifier) {
                            FaultVerdict::Pass(e) => vec![e],
                            FaultVerdict::Delayed { env: e, .. } => vec![e],
                            FaultVerdict::Duplicated { envs, .. } => {
                                real_pending += 1;
                                envs.into()
                            }
                            FaultVerdict::Drop { .. } => {
                                real_pending = real_pending.saturating_sub(1);
                                metrics.messages_dropped += 1;
                                Vec::new()
                            }
                        },
                    };
                    for e in verdicts {
                        next_min = fold_min(next_min, Some(e.deliver_at_us));
                        let dest = e.to.index() % worker_count;
                        pending_relay[dest].push(e);
                    }
                }
            }
            // Canonical journal replay: worker journals are pre-sorted
            // and event keys are globally unique, so one sort of the
            // concatenation equals the in-process k-way merge.
            journal_scratch.sort_unstable_by_key(|e| e.key());
            for entry in journal_scratch.drain(..) {
                let (at, item) = entry.into_item();
                match item {
                    edgelet_live::round::JItem::Trace(ev) => trace.record(at, ev),
                    edgelet_live::round::JItem::Observe(name, value) => {
                        metrics.observe(name, value)
                    }
                }
            }
            min_at = next_min;
        };

        // Teardown: collect every worker's final partials.
        let bye = if exit == ExitReason::Aborted {
            NetMsg::Abort { epoch }
        } else {
            NetMsg::Finish { epoch }
        };
        for stream in workers.iter_mut() {
            stream.send(&bye)?;
        }
        for stream in workers.iter_mut() {
            match stream.recv(Some(self.config.io_timeout))? {
                NetMsg::QueryDone {
                    epoch: e,
                    ledger,
                    record,
                } if e == epoch => {
                    // Ledger charges are per-device and devices are
                    // disjoint across workers, so merging partials in
                    // worker order reconstructs the global ledger
                    // exactly.
                    let partial: edgelet_exec::Ledger = from_bytes(&ledger)?;
                    lock(&assembly.ledger).merge(&partial);
                    if let Some(r) = record {
                        final_record = Some(r);
                    }
                }
                other => {
                    return Err(Error::Protocol(format!(
                        "expected QueryDone, got {other:?}"
                    )))
                }
            }
        }
        let record = final_record
            .ok_or_else(|| Error::Protocol("no worker reported the querier record".into()))?;
        {
            let mut rec = lock(&assembly.record);
            rec.payload = record.payload;
            rec.completed_at = record.completed_at_us.map(SimTime::from_micros);
            rec.partitions_merged = record.partitions_merged;
            rec.partitions_complete = record.partitions_complete;
            rec.winning_replica = record.winning_replica;
            rec.results_received = record.results_received;
        }

        let report = edgelet_exec::finish_report(
            &plan,
            &assembly.sliced_queries,
            &assembly.record,
            &assembly.ledger,
            &metrics,
        )?;
        let trace_digest = trace.enabled().then(|| trace.digest());
        let trace_records = trace.records().cloned().collect();
        Ok(LiveRun {
            plan,
            report,
            trace_digest,
            trace: trace_records,
            exit,
        })
    }
}

impl RemoteExecutor for Daemon {
    fn try_run(
        &self,
        epoch: u64,
        _spec: &QuerySpec,
        _privacy: &PrivacyConfig,
        _resilience: &ResilienceConfig,
        abort: &AtomicBool,
    ) -> Option<edgelet_util::Result<LiveRun>> {
        // The daemon runs the canonical world spec it was configured
        // with; the host (the CLI submit path) guarantees the service's
        // submitted query matches it before calling submit.
        let mut workers = self.take_live_workers()?;
        match self.run_distributed(epoch, &mut workers, abort) {
            Ok(run) => {
                self.return_workers(workers);
                Some(Ok(run))
            }
            Err(e) => {
                // Drop every taken connection: the workers observe EOF,
                // reset their epoch state, and reconnect with backoff.
                for w in &workers {
                    w.shutdown();
                }
                drop(workers);
                Some(Err(e))
            }
        }
    }
}

/// Accept loop: one handshake thread per connection, each tracked by a
/// deadline in the sweeper's timer heap.
fn accept_loop(listener: Listener, shared: Arc<DaemonShared>, handshake_timeout: Duration) {
    loop {
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let token = match stream.try_clone() {
            Ok(handle) => {
                let t = lock(&shared.deadlines).push(Instant::now() + handshake_timeout, handle);
                shared.deadlines_cv.notify_all();
                t
            }
            Err(_) => continue,
        };
        let hs_shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("net-handshake".into())
            .spawn(move || {
                handshake(stream, &hs_shared, handshake_timeout);
                lock(&hs_shared.deadlines).cancel(token);
            })
            .ok();
    }
}

/// Deadline sweeper: shuts down connections whose handshake deadline
/// passed, unblocking their handler threads.
fn sweeper_loop(shared: Arc<DaemonShared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Pop expired streams under the lock, shut them down outside
        // it: the OS-level shutdown must not stall handshake threads
        // scheduling their own deadlines.
        let due = {
            let mut deadlines = lock(&shared.deadlines);
            let due = deadlines.pop_due(Instant::now());
            if due.is_empty() {
                let wait = deadlines
                    .next_deadline()
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_secs(1));
                let _woken = shared
                    .deadlines_cv
                    .wait_timeout(deadlines, wait.max(Duration::from_millis(10)))
                    .unwrap_or_else(|e| e.into_inner());
            }
            due
        };
        for stream in due {
            stream.shutdown();
        }
    }
}

/// One connection's handshake: validate versions, register or queue.
fn handshake(stream: Stream, shared: &Arc<DaemonShared>, timeout: Duration) {
    let mut ms = MsgStream::new(stream);
    let hello = match ms.recv(Some(timeout)) {
        Ok(NetMsg::Hello {
            role,
            proto,
            frame_version,
            envelope_version,
        }) => {
            let mut mismatch = Vec::new();
            if proto != PROTO_VERSION {
                mismatch.push(format!("proto {proto} != {PROTO_VERSION}"));
            }
            if frame_version != edgelet_wire::FRAME_VERSION {
                mismatch.push(format!(
                    "frame version {frame_version} != {}",
                    edgelet_wire::FRAME_VERSION
                ));
            }
            if envelope_version != edgelet_wire::ENVELOPE_VERSION {
                mismatch.push(format!(
                    "envelope version {envelope_version} != {}",
                    edgelet_wire::ENVELOPE_VERSION
                ));
            }
            if !mismatch.is_empty() {
                shared.rejections.fetch_add(1, Ordering::Relaxed);
                ms.send(&NetMsg::Reject {
                    reason: format!("version mismatch: {}", mismatch.join(", ")),
                })
                .ok();
                ms.shutdown();
                return;
            }
            role
        }
        _ => {
            shared.rejections.fetch_add(1, Ordering::Relaxed);
            ms.shutdown();
            return;
        }
    };
    match hello {
        Role::Worker => {
            let slot = { lock(&shared.registry).iter().position(|s| s.is_none()) };
            let Some(slot) = slot else {
                shared.rejections.fetch_add(1, Ordering::Relaxed);
                ms.send(&NetMsg::Reject {
                    reason: "all worker slots taken".into(),
                })
                .ok();
                ms.shutdown();
                return;
            };
            if ms
                .send(&NetMsg::Welcome {
                    worker_index: slot as u32,
                })
                .is_err()
            {
                return;
            }
            let mut reg = lock(&shared.registry);
            // Re-check under the lock: another handshake may have taken
            // the slot between the scan and now; fall back to any free
            // slot (the index sent in Welcome is informational for
            // logging — `Prepare` carries the authoritative per-epoch
            // index).
            let slot = match reg.iter().position(|s| s.is_none()) {
                Some(s) => s,
                None => {
                    drop(reg);
                    shared.rejections.fetch_add(1, Ordering::Relaxed);
                    ms.send(&NetMsg::Reject {
                        reason: "all worker slots taken".into(),
                    })
                    .ok();
                    ms.shutdown();
                    return;
                }
            };
            reg[slot] = Some(ms);
            drop(reg);
            shared.registrations.fetch_add(1, Ordering::Relaxed);
            shared.registry_cv.notify_all();
        }
        Role::Client => match ms.recv(Some(timeout)) {
            Ok(NetMsg::SubmitReq { spec }) => {
                lock(&shared.submissions).push_back(Submission { spec, stream: ms });
                shared.submissions_cv.notify_all();
            }
            _ => {
                ms.shutdown();
            }
        },
    }
}
