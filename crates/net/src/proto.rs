//! The edgelet-net control protocol: every message that crosses a
//! socket, as wire-codec values framed by [`crate::framing`].
//!
//! The protocol has three planes (documented in `docs/NET.md` and
//! `docs/PROTOCOL.md` §8):
//!
//! * **Session** — `Hello`/`Welcome`/`Reject` versioned handshake
//!   (rejects on [`edgelet_wire::FRAME_VERSION`],
//!   [`edgelet_wire::ENVELOPE_VERSION`], or [`PROTO_VERSION`]
//!   mismatch), `Ping`/`Pong` liveness probes.
//! * **Client** — `SubmitReq`/`SubmitResp`: a query submission carrying
//!   opaque world-spec bytes and an opaque result artifact (the daemon
//!   host defines both; the socket layer never interprets them).
//! * **Coordination** — the daemon↔worker window protocol: `Prepare`/
//!   `Ready` (build the world), `Envelopes`+`OpenWindow`/`RoundDone`
//!   (one conservative window), `Finish`|`Abort`/`QueryDone` (teardown
//!   and result partials).
//!
//! Everything the coordination plane ships — metric deltas, journal
//! entries, the querier record — is an exact integer encoding of the
//! live runtime's round state ([`edgelet_live::round`]), so merging
//! remote partials is bit-identical to the in-process barrier merge.

use edgelet_live::round::{Deltas, JEntry, JItem};
use edgelet_sim::{CrashCause, DelayStats, FaultKind, SimTime, TraceEvent};
use edgelet_util::ids::DeviceId;
use edgelet_util::{Error, Result};
use edgelet_wire::{Decode, Encode, Envelope, Reader, Writer};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Version of this control protocol; bump on message layout changes.
/// Carried in `Hello` and rejected on mismatch, alongside the frame and
/// envelope versions.
pub const PROTO_VERSION: u16 = 1;

/// The peer's role, declared in `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A worker process offering round execution.
    Worker,
    /// A client submitting queries.
    Client,
}

/// One window's worth of a worker's round output, on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRound {
    /// Commutative metric deltas (exact integers).
    pub deltas: WireDeltas,
    /// Earliest event still pending on this worker (heap plus locally
    /// stashed own-lane sends), µs.
    pub pending_min: Option<u64>,
    /// The window stopped on the event budget.
    pub hit_budget: bool,
    /// Ordered side effects, pre-sorted by `(at, origin, seq, intra)`.
    pub journal: Vec<WireJEntry>,
    /// Envelopes for other workers, flattened in lane-then-FIFO order.
    pub outgoing: Vec<Envelope>,
}

/// Exact wire image of [`edgelet_live::round::Deltas`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireDeltas {
    /// Messages submitted by actors.
    pub sent: u64,
    /// Messages handed to receiving actors.
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages corrupted in transit.
    pub corrupted: u64,
    /// Messages discarded at a crashed receiver.
    pub to_crashed: u64,
    /// Payload bytes submitted.
    pub bytes_sent: u64,
    /// Delivery-delay partial statistic as `(count, sum, min, max)` µs.
    pub delay: (u64, u64, u64, u64),
    /// Crash events applied.
    pub crashes: u64,
    /// Events processed.
    pub events: u64,
    /// Net change in pending events.
    pub real_pending: i64,
    /// Latest event time processed, µs.
    pub last_at_us: u64,
}

impl WireDeltas {
    /// Captures a round's deltas losslessly.
    pub fn from_deltas(d: &Deltas) -> Self {
        WireDeltas {
            sent: d.sent,
            delivered: d.delivered,
            dropped: d.dropped,
            corrupted: d.corrupted,
            to_crashed: d.to_crashed,
            bytes_sent: d.bytes_sent,
            delay: d.delay.raw_parts(),
            crashes: d.crashes,
            events: d.events,
            real_pending: d.real_pending,
            last_at_us: d.last_at.as_micros(),
        }
    }

    /// The delay partial as a mergeable [`DelayStats`].
    pub fn delay_stats(&self) -> DelayStats {
        DelayStats::from_raw_parts(self.delay.0, self.delay.1, self.delay.2, self.delay.3)
    }
}

/// Wire image of one journal entry.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJEntry {
    /// Virtual time of the producing event, µs.
    pub at_us: u64,
    /// Raw id of the spawning device.
    pub origin: u64,
    /// The producing event's spawn sequence number.
    pub seq: u64,
    /// Ordinal within the producing event.
    pub intra: u32,
    /// The side effect.
    pub item: WireJItem,
}

impl WireJEntry {
    /// Captures a journal entry.
    pub fn from_entry(e: &JEntry) -> Self {
        WireJEntry {
            at_us: e.at.as_micros(),
            origin: e.origin,
            seq: e.seq,
            intra: e.intra,
            item: match &e.item {
                JItem::Trace(ev) => WireJItem::Trace(ev.clone()),
                JItem::Observe(name, value) => WireJItem::Observe(name.to_string(), *value),
            },
        }
    }

    /// The canonical merge key.
    pub fn key(&self) -> (u64, u64, u64, u32) {
        (self.at_us, self.origin, self.seq, self.intra)
    }

    /// Rebuilds the runtime-side journal item; observation names are
    /// interned (the runtime requires `&'static str`).
    pub fn into_item(self) -> (SimTime, JItem) {
        let at = SimTime::from_micros(self.at_us);
        let item = match self.item {
            WireJItem::Trace(ev) => JItem::Trace(ev),
            WireJItem::Observe(name, value) => JItem::Observe(intern_name(&name), value),
        };
        (at, item)
    }
}

/// Wire image of a journal item.
#[derive(Debug, Clone, PartialEq)]
pub enum WireJItem {
    /// A trace event.
    Trace(TraceEvent),
    /// A metric observation.
    Observe(String, f64),
}

/// Interns an observation name to the `&'static str` the metrics API
/// requires. The set of names is the small fixed vocabulary the role
/// actors observe, so the leak is bounded by the protocol, not by
/// traffic.
pub fn intern_name(name: &str) -> &'static str {
    static NAMES: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Wire image of the querier's outcome record
/// ([`edgelet_exec::roles::querier::QuerierRecord`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireRecord {
    /// First result's raw payload bytes.
    pub payload: Option<Vec<u8>>,
    /// Virtual arrival time of the first result, µs.
    pub completed_at_us: Option<u64>,
    /// Partitions merged into the first result.
    pub partitions_merged: u64,
    /// Of which complete.
    pub partitions_complete: u64,
    /// Replica index that won the race.
    pub winning_replica: u32,
    /// Total results received.
    pub results_received: u64,
}

/// Every message of the control protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMsg {
    /// Opens a session; the first message on every connection.
    Hello {
        /// The peer's role.
        role: Role,
        /// [`PROTO_VERSION`] of the peer.
        proto: u16,
        /// [`edgelet_wire::FRAME_VERSION`] of the peer.
        frame_version: u8,
        /// [`edgelet_wire::ENVELOPE_VERSION`] of the peer.
        envelope_version: u8,
    },
    /// Accepts a session.
    Welcome {
        /// The worker's registry index (0 for clients).
        worker_index: u32,
    },
    /// Refuses a session or a request; the connection closes after.
    Reject {
        /// Human-readable reason.
        reason: String,
    },
    /// Liveness probe.
    Ping {
        /// Echoed back in the matching `Pong`.
        nonce: u64,
    },
    /// Liveness reply.
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
    /// Client query submission; `spec` is opaque to the socket layer.
    SubmitReq {
        /// Host-defined world-spec bytes.
        spec: Vec<u8>,
    },
    /// Submission outcome; `artifact` is opaque to the socket layer.
    SubmitResp {
        /// Host-defined result artifact bytes.
        artifact: Vec<u8>,
    },
    /// Build the world for one epoch.
    Prepare {
        /// The query epoch.
        epoch: u64,
        /// Host-defined world-spec bytes.
        spec: Vec<u8>,
        /// Total worker processes in this run.
        worker_count: u32,
        /// This worker's slice index for this epoch.
        worker_index: u32,
        /// When set, own-lane sends also route via the daemon so the
        /// fault proxy observes every envelope.
        fault_mode: bool,
    },
    /// The world for `epoch` is built and idle at its first window.
    Ready {
        /// The query epoch.
        epoch: u64,
    },
    /// Execute one conservative window.
    OpenWindow {
        /// The query epoch.
        epoch: u64,
        /// Exclusive end of the window, µs.
        window_end_us: u64,
        /// Deadline clip (inclusive), µs.
        clip_us: u64,
        /// Remaining event budget.
        budget: u64,
    },
    /// Envelopes relayed to this worker's slice, staged before the next
    /// `OpenWindow`.
    Envelopes {
        /// The query epoch.
        epoch: u64,
        /// The relayed envelopes.
        batch: Vec<Envelope>,
    },
    /// One window's results.
    RoundDone {
        /// The query epoch.
        epoch: u64,
        /// The round output.
        round: WireRound,
    },
    /// The run is over; report final partials.
    Finish {
        /// The query epoch.
        epoch: u64,
    },
    /// The run is cancelled; report final partials anyway.
    Abort {
        /// The query epoch.
        epoch: u64,
    },
    /// Final per-worker partials: the ledger slice and, from the
    /// querier's owner, the outcome record.
    QueryDone {
        /// The query epoch.
        epoch: u64,
        /// Wire-encoded [`edgelet_exec::Ledger`] partial.
        ledger: Vec<u8>,
        /// The querier record, from its owning worker only.
        record: Option<WireRecord>,
    },
}

impl NetMsg {
    /// A `Hello` carrying this build's version triplet.
    pub fn hello(role: Role) -> NetMsg {
        NetMsg::Hello {
            role,
            proto: PROTO_VERSION,
            frame_version: edgelet_wire::FRAME_VERSION,
            envelope_version: edgelet_wire::ENVELOPE_VERSION,
        }
    }
}

// ---- codecs ----

impl Encode for Role {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(match self {
            Role::Worker => 0,
            Role::Client => 1,
        });
    }
}

impl Decode for Role {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.varint()? {
            0 => Ok(Role::Worker),
            1 => Ok(Role::Client),
            other => Err(Error::Decode(format!("invalid role {other}"))),
        }
    }
}

impl Encode for WireDeltas {
    fn encode(&self, w: &mut Writer) {
        self.sent.encode(w);
        self.delivered.encode(w);
        self.dropped.encode(w);
        self.corrupted.encode(w);
        self.to_crashed.encode(w);
        self.bytes_sent.encode(w);
        self.delay.0.encode(w);
        self.delay.1.encode(w);
        self.delay.2.encode(w);
        self.delay.3.encode(w);
        self.crashes.encode(w);
        self.events.encode(w);
        self.real_pending.encode(w);
        self.last_at_us.encode(w);
    }
}

impl Decode for WireDeltas {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WireDeltas {
            sent: u64::decode(r)?,
            delivered: u64::decode(r)?,
            dropped: u64::decode(r)?,
            corrupted: u64::decode(r)?,
            to_crashed: u64::decode(r)?,
            bytes_sent: u64::decode(r)?,
            delay: (
                u64::decode(r)?,
                u64::decode(r)?,
                u64::decode(r)?,
                u64::decode(r)?,
            ),
            crashes: u64::decode(r)?,
            events: u64::decode(r)?,
            real_pending: i64::decode(r)?,
            last_at_us: u64::decode(r)?,
        })
    }
}

fn encode_device(w: &mut Writer, d: DeviceId) {
    w.put_varint(d.raw());
}

fn decode_device(r: &mut Reader<'_>) -> Result<DeviceId> {
    Ok(DeviceId::new(r.varint()?))
}

fn encode_trace_event(w: &mut Writer, ev: &TraceEvent) {
    match ev {
        TraceEvent::Sent { from, to, bytes } => {
            w.put_varint(0);
            encode_device(w, *from);
            encode_device(w, *to);
            w.put_varint(*bytes as u64);
        }
        TraceEvent::Delivered { from, to } => {
            w.put_varint(1);
            encode_device(w, *from);
            encode_device(w, *to);
        }
        TraceEvent::Dropped { from, to } => {
            w.put_varint(2);
            encode_device(w, *from);
            encode_device(w, *to);
        }
        TraceEvent::WentDown(d) => {
            w.put_varint(3);
            encode_device(w, *d);
        }
        TraceEvent::CameUp(d) => {
            w.put_varint(4);
            encode_device(w, *d);
        }
        TraceEvent::Crashed { device, cause } => {
            w.put_varint(5);
            encode_device(w, *device);
            match cause {
                CrashCause::Organic => w.put_varint(0),
                CrashCause::Injected { rule } => {
                    w.put_varint(1);
                    w.put_varint(u64::from(*rule));
                }
            }
        }
        TraceEvent::TimerFired { device, token } => {
            w.put_varint(6);
            encode_device(w, *device);
            w.put_varint(*token);
        }
        TraceEvent::FaultInjected {
            rule,
            kind,
            from,
            to,
        } => {
            w.put_varint(7);
            w.put_varint(u64::from(*rule));
            w.put_varint(u64::from(kind.code()));
            encode_device(w, *from);
            encode_device(w, *to);
        }
        TraceEvent::MsgKind { from, to, kind } => {
            w.put_varint(8);
            encode_device(w, *from);
            encode_device(w, *to);
            w.put_varint(u64::from(*kind));
        }
    }
}

fn decode_fault_kind(code: u64) -> Result<FaultKind> {
    Ok(match code {
        0 => FaultKind::Drop,
        1 => FaultKind::Delay,
        2 => FaultKind::Duplicate,
        3 => FaultKind::Reorder,
        4 => FaultKind::CrashSender,
        5 => FaultKind::CrashReceiver,
        other => return Err(Error::Decode(format!("invalid fault kind {other}"))),
    })
}

fn decode_trace_event(r: &mut Reader<'_>) -> Result<TraceEvent> {
    Ok(match r.varint()? {
        0 => TraceEvent::Sent {
            from: decode_device(r)?,
            to: decode_device(r)?,
            bytes: usize::decode(r)?,
        },
        1 => TraceEvent::Delivered {
            from: decode_device(r)?,
            to: decode_device(r)?,
        },
        2 => TraceEvent::Dropped {
            from: decode_device(r)?,
            to: decode_device(r)?,
        },
        3 => TraceEvent::WentDown(decode_device(r)?),
        4 => TraceEvent::CameUp(decode_device(r)?),
        5 => {
            let device = decode_device(r)?;
            let cause = match r.varint()? {
                0 => CrashCause::Organic,
                1 => CrashCause::Injected {
                    rule: u32::decode(r)?,
                },
                other => return Err(Error::Decode(format!("invalid crash cause {other}"))),
            };
            TraceEvent::Crashed { device, cause }
        }
        6 => TraceEvent::TimerFired {
            device: decode_device(r)?,
            token: r.varint()?,
        },
        7 => TraceEvent::FaultInjected {
            rule: u32::decode(r)?,
            kind: decode_fault_kind(r.varint()?)?,
            from: decode_device(r)?,
            to: decode_device(r)?,
        },
        8 => TraceEvent::MsgKind {
            from: decode_device(r)?,
            to: decode_device(r)?,
            kind: u16::decode(r)?,
        },
        other => return Err(Error::Decode(format!("invalid trace event tag {other}"))),
    })
}

impl Encode for WireJItem {
    fn encode(&self, w: &mut Writer) {
        match self {
            WireJItem::Trace(ev) => {
                w.put_varint(0);
                encode_trace_event(w, ev);
            }
            WireJItem::Observe(name, value) => {
                w.put_varint(1);
                name.encode(w);
                value.encode(w);
            }
        }
    }
}

impl Decode for WireJItem {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.varint()? {
            0 => WireJItem::Trace(decode_trace_event(r)?),
            1 => WireJItem::Observe(String::decode(r)?, f64::decode(r)?),
            other => return Err(Error::Decode(format!("invalid journal item tag {other}"))),
        })
    }
}

impl Encode for WireJEntry {
    fn encode(&self, w: &mut Writer) {
        self.at_us.encode(w);
        self.origin.encode(w);
        self.seq.encode(w);
        self.intra.encode(w);
        self.item.encode(w);
    }
}

impl Decode for WireJEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WireJEntry {
            at_us: u64::decode(r)?,
            origin: u64::decode(r)?,
            seq: u64::decode(r)?,
            intra: u32::decode(r)?,
            item: WireJItem::decode(r)?,
        })
    }
}

impl Encode for WireRound {
    fn encode(&self, w: &mut Writer) {
        self.deltas.encode(w);
        self.pending_min.encode(w);
        self.hit_budget.encode(w);
        self.journal.encode(w);
        self.outgoing.encode(w);
    }
}

impl Decode for WireRound {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WireRound {
            deltas: WireDeltas::decode(r)?,
            pending_min: Option::<u64>::decode(r)?,
            hit_budget: bool::decode(r)?,
            journal: Vec::<WireJEntry>::decode(r)?,
            outgoing: Vec::<Envelope>::decode(r)?,
        })
    }
}

impl Encode for WireRecord {
    fn encode(&self, w: &mut Writer) {
        self.payload.encode(w);
        self.completed_at_us.encode(w);
        self.partitions_merged.encode(w);
        self.partitions_complete.encode(w);
        self.winning_replica.encode(w);
        self.results_received.encode(w);
    }
}

impl Decode for WireRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WireRecord {
            payload: Option::<Vec<u8>>::decode(r)?,
            completed_at_us: Option::<u64>::decode(r)?,
            partitions_merged: u64::decode(r)?,
            partitions_complete: u64::decode(r)?,
            winning_replica: u32::decode(r)?,
            results_received: u64::decode(r)?,
        })
    }
}

impl Encode for NetMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            NetMsg::Hello {
                role,
                proto,
                frame_version,
                envelope_version,
            } => {
                w.put_varint(1);
                role.encode(w);
                proto.encode(w);
                frame_version.encode(w);
                envelope_version.encode(w);
            }
            NetMsg::Welcome { worker_index } => {
                w.put_varint(2);
                worker_index.encode(w);
            }
            NetMsg::Reject { reason } => {
                w.put_varint(3);
                reason.encode(w);
            }
            NetMsg::Ping { nonce } => {
                w.put_varint(4);
                nonce.encode(w);
            }
            NetMsg::Pong { nonce } => {
                w.put_varint(5);
                nonce.encode(w);
            }
            NetMsg::SubmitReq { spec } => {
                w.put_varint(6);
                spec.encode(w);
            }
            NetMsg::SubmitResp { artifact } => {
                w.put_varint(7);
                artifact.encode(w);
            }
            NetMsg::Prepare {
                epoch,
                spec,
                worker_count,
                worker_index,
                fault_mode,
            } => {
                w.put_varint(8);
                epoch.encode(w);
                spec.encode(w);
                worker_count.encode(w);
                worker_index.encode(w);
                fault_mode.encode(w);
            }
            NetMsg::Ready { epoch } => {
                w.put_varint(9);
                epoch.encode(w);
            }
            NetMsg::OpenWindow {
                epoch,
                window_end_us,
                clip_us,
                budget,
            } => {
                w.put_varint(10);
                epoch.encode(w);
                window_end_us.encode(w);
                clip_us.encode(w);
                budget.encode(w);
            }
            NetMsg::Envelopes { epoch, batch } => {
                w.put_varint(11);
                epoch.encode(w);
                batch.encode(w);
            }
            NetMsg::RoundDone { epoch, round } => {
                w.put_varint(12);
                epoch.encode(w);
                round.encode(w);
            }
            NetMsg::Finish { epoch } => {
                w.put_varint(13);
                epoch.encode(w);
            }
            NetMsg::Abort { epoch } => {
                w.put_varint(14);
                epoch.encode(w);
            }
            NetMsg::QueryDone {
                epoch,
                ledger,
                record,
            } => {
                w.put_varint(15);
                epoch.encode(w);
                ledger.encode(w);
                record.encode(w);
            }
        }
    }
}

impl Decode for NetMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match r.varint()? {
            1 => NetMsg::Hello {
                role: Role::decode(r)?,
                proto: u16::decode(r)?,
                frame_version: u8::decode(r)?,
                envelope_version: u8::decode(r)?,
            },
            2 => NetMsg::Welcome {
                worker_index: u32::decode(r)?,
            },
            3 => NetMsg::Reject {
                reason: String::decode(r)?,
            },
            4 => NetMsg::Ping {
                nonce: u64::decode(r)?,
            },
            5 => NetMsg::Pong {
                nonce: u64::decode(r)?,
            },
            6 => NetMsg::SubmitReq {
                spec: Vec::<u8>::decode(r)?,
            },
            7 => NetMsg::SubmitResp {
                artifact: Vec::<u8>::decode(r)?,
            },
            8 => NetMsg::Prepare {
                epoch: u64::decode(r)?,
                spec: Vec::<u8>::decode(r)?,
                worker_count: u32::decode(r)?,
                worker_index: u32::decode(r)?,
                fault_mode: bool::decode(r)?,
            },
            9 => NetMsg::Ready {
                epoch: u64::decode(r)?,
            },
            10 => NetMsg::OpenWindow {
                epoch: u64::decode(r)?,
                window_end_us: u64::decode(r)?,
                clip_us: u64::decode(r)?,
                budget: u64::decode(r)?,
            },
            11 => NetMsg::Envelopes {
                epoch: u64::decode(r)?,
                batch: Vec::<Envelope>::decode(r)?,
            },
            12 => NetMsg::RoundDone {
                epoch: u64::decode(r)?,
                round: WireRound::decode(r)?,
            },
            13 => NetMsg::Finish {
                epoch: u64::decode(r)?,
            },
            14 => NetMsg::Abort {
                epoch: u64::decode(r)?,
            },
            15 => NetMsg::QueryDone {
                epoch: u64::decode(r)?,
                ledger: Vec::<u8>::decode(r)?,
                record: Option::<WireRecord>::decode(r)?,
            },
            other => return Err(Error::Decode(format!("invalid net message tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_util::Payload;
    use edgelet_wire::{from_bytes, to_bytes};

    fn env(seq: u64) -> Envelope {
        Envelope {
            epoch: 7,
            from: DeviceId::new(1),
            to: DeviceId::new(2),
            seq,
            sent_at_us: 1_000,
            deliver_at_us: 2_000,
            payload: Payload::from(vec![9u8, 8, 7]),
        }
    }

    #[test]
    fn all_messages_roundtrip() {
        let msgs = vec![
            NetMsg::hello(Role::Worker),
            NetMsg::hello(Role::Client),
            NetMsg::Welcome { worker_index: 3 },
            NetMsg::Reject {
                reason: "frame version mismatch".into(),
            },
            NetMsg::Ping { nonce: 99 },
            NetMsg::Pong { nonce: 99 },
            NetMsg::SubmitReq {
                spec: vec![1, 2, 3],
            },
            NetMsg::SubmitResp {
                artifact: vec![4, 5],
            },
            NetMsg::Prepare {
                epoch: 11,
                spec: vec![1],
                worker_count: 2,
                worker_index: 1,
                fault_mode: true,
            },
            NetMsg::Ready { epoch: 11 },
            NetMsg::OpenWindow {
                epoch: 11,
                window_end_us: 5_000,
                clip_us: u64::MAX >> 1,
                budget: 1_000_000,
            },
            NetMsg::Envelopes {
                epoch: 11,
                batch: vec![env(0), env(1)],
            },
            NetMsg::RoundDone {
                epoch: 11,
                round: WireRound {
                    deltas: WireDeltas {
                        sent: 4,
                        delivered: 3,
                        delay: (3, 4_500, 1_000, 2_000),
                        real_pending: -2,
                        last_at_us: 4_400,
                        ..WireDeltas::default()
                    },
                    pending_min: Some(6_000),
                    hit_budget: false,
                    journal: vec![
                        WireJEntry {
                            at_us: 2_000,
                            origin: 1,
                            seq: 0,
                            intra: 0,
                            item: WireJItem::Trace(TraceEvent::Delivered {
                                from: DeviceId::new(1),
                                to: DeviceId::new(2),
                            }),
                        },
                        WireJEntry {
                            at_us: 2_000,
                            origin: 1,
                            seq: 0,
                            intra: 1,
                            item: WireJItem::Observe("kmeans/inertia".into(), 0.5),
                        },
                    ],
                    outgoing: vec![env(2)],
                },
            },
            NetMsg::Finish { epoch: 11 },
            NetMsg::Abort { epoch: 11 },
            NetMsg::QueryDone {
                epoch: 11,
                ledger: vec![0, 1, 2],
                record: Some(WireRecord {
                    payload: Some(vec![42]),
                    completed_at_us: Some(9_000_000),
                    partitions_merged: 4,
                    partitions_complete: 4,
                    winning_replica: 1,
                    results_received: 2,
                }),
            },
        ];
        for m in msgs {
            let bytes = to_bytes(&m);
            let back: NetMsg = from_bytes(&bytes).unwrap();
            assert_eq!(back, m, "roundtrip mismatch");
        }
    }

    #[test]
    fn every_trace_event_variant_roundtrips() {
        let d = DeviceId::new(5);
        let events = vec![
            TraceEvent::Sent {
                from: d,
                to: DeviceId::new(6),
                bytes: 123,
            },
            TraceEvent::Delivered {
                from: d,
                to: DeviceId::new(6),
            },
            TraceEvent::Dropped {
                from: d,
                to: DeviceId::new(6),
            },
            TraceEvent::WentDown(d),
            TraceEvent::CameUp(d),
            TraceEvent::Crashed {
                device: d,
                cause: CrashCause::Organic,
            },
            TraceEvent::Crashed {
                device: d,
                cause: CrashCause::Injected { rule: 3 },
            },
            TraceEvent::TimerFired {
                device: d,
                token: 17,
            },
            TraceEvent::FaultInjected {
                rule: 2,
                kind: FaultKind::Duplicate,
                from: d,
                to: DeviceId::new(6),
            },
            TraceEvent::MsgKind {
                from: d,
                to: DeviceId::new(6),
                kind: 9,
            },
        ];
        for ev in events {
            let item = WireJItem::Trace(ev.clone());
            let back: WireJItem = from_bytes(&to_bytes(&item)).unwrap();
            assert_eq!(back, item);
        }
    }

    #[test]
    fn intern_name_is_stable() {
        let a = intern_name("net/test-observation");
        let b = intern_name("net/test-observation");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn unknown_tags_fail_cleanly() {
        let bytes = to_bytes(&200u64);
        assert!(from_bytes::<NetMsg>(&bytes).is_err());
        assert!(from_bytes::<WireJItem>(&bytes).is_err());
    }
}
