//! [`Transport`] implementations for the socket deployment.
//!
//! Three transports cover the three seats at the table:
//!
//! * [`SocketTransport`] — the tentpole trait-over-sockets impl: an
//!   [`edgelet_wire::Transport`] whose `submit` pushes envelopes through
//!   a framed socket and whose `drain`/`pending` read from per-`(epoch,
//!   lane)` queues filled by a background reader thread. Two of these
//!   back-to-back form a full-duplex envelope fabric over UDS or TCP —
//!   the `net/roundtrip` bench suite and the loopback tests run on it.
//! * [`CollectorTransport`] — what a remote worker's round loop submits
//!   into: an unbounded per-lane collector that never backpressures
//!   (socket relay replaces mailbox bounds; pacing moves to the window
//!   protocol, and "backpressure changes pacing, never outcomes" keeps
//!   that sound). The worker drains it after each round and ships the
//!   contents in `RoundDone`.
//! * [`SinkTransport`] — a null transport for world construction on
//!   detached hosts: `prepare_live_query` needs *a* transport, but a
//!   daemon/worker immediately converts the engine
//!   [`edgelet_live::EngineParts`] and never runs the in-process path.

use crate::conn::{MsgStream, Stream};
use crate::proto::NetMsg;
use edgelet_wire::{Envelope, Transport, TransportError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shared queue state of a [`SocketTransport`].
struct SocketShared {
    /// Per-`(epoch, lane)` received envelopes, FIFO.
    queues: Mutex<BTreeMap<(u64, usize), Vec<Envelope>>>,
    /// Signalled whenever the reader enqueues or the socket closes.
    arrival: Condvar,
    closed: AtomicBool,
}

/// An [`edgelet_wire::Transport`] over one connected socket.
///
/// `submit`/`submit_batch` frame envelopes into [`NetMsg::Envelopes`]
/// and write them out; a reader thread parses inbound batches into
/// per-`(epoch, lane)` queues served by `drain`/`pending`. Lanes are
/// assigned the runtime's way: `to.index() % lane_count`.
pub struct SocketTransport {
    writer: Mutex<MsgStream>,
    shared: Arc<SocketShared>,
    lane_count: usize,
    reader: Mutex<Option<JoinHandle<()>>>,
    /// Clone of the socket used to unblock the reader on shutdown.
    unblock: Stream,
}

impl SocketTransport {
    /// Wraps a connected stream; spawns the reader thread.
    pub fn new(stream: Stream, lane_count: usize) -> edgelet_util::Result<SocketTransport> {
        let lane_count = lane_count.max(1);
        let unblock = stream.try_clone()?;
        let reader_half = stream.try_clone()?;
        let shared = Arc::new(SocketShared {
            queues: Mutex::new(BTreeMap::new()),
            arrival: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name("net-transport-reader".into())
            .spawn(move || {
                let mut rx = MsgStream::new(reader_half);
                loop {
                    match rx.recv(None) {
                        Ok(NetMsg::Envelopes { batch, .. }) => {
                            let mut queues = lock(&shared2.queues);
                            for env in batch {
                                let lane = env.to.index() % lane_count;
                                queues.entry((env.epoch, lane)).or_default().push(env);
                            }
                            drop(queues);
                            shared2.arrival.notify_all();
                        }
                        // Tolerate other chatter (pings) on a shared link.
                        Ok(_) => continue,
                        Err(_) => {
                            shared2.closed.store(true, Ordering::Release);
                            shared2.arrival.notify_all();
                            return;
                        }
                    }
                }
            })
            .expect("spawn transport reader");
        Ok(SocketTransport {
            writer: Mutex::new(MsgStream::new(stream)),
            shared,
            lane_count,
            reader: Mutex::new(Some(reader)),
            unblock,
        })
    }

    /// Number of lanes inbound envelopes are partitioned into.
    pub fn lane_count(&self) -> usize {
        self.lane_count
    }

    /// True once the peer closed or the stream errored.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Blocks until `(epoch, lane)` has at least one envelope, the
    /// socket closes, or `timeout` passes; returns whether envelopes
    /// are waiting.
    pub fn wait_pending(&self, epoch: u64, lane: usize, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut queues = lock(&self.shared.queues);
        loop {
            if queues.get(&(epoch, lane)).is_some_and(|q| !q.is_empty()) {
                return true;
            }
            if self.shared.closed.load(Ordering::Acquire) {
                return false;
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _timed_out) = self
                .shared
                .arrival
                .wait_timeout(queues, left)
                .unwrap_or_else(|e| e.into_inner());
            queues = guard;
        }
    }

    /// Writes one frame; the writer lock protects exactly this write,
    /// serializing concurrent lane submissions onto the stream.
    fn send_frame(&self, msg: &NetMsg) -> bool {
        lock(&self.writer).send(msg).is_ok()
    }

    /// Closes the socket and joins the reader thread.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.unblock.shutdown();
        self.shared.arrival.notify_all();
        let handle = { lock(&self.reader).take() };
        if let Some(h) = handle {
            h.join().ok();
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.close();
    }
}

impl Transport for SocketTransport {
    fn submit(&self, env: Envelope) -> Result<(), TransportError> {
        if self.is_closed() {
            return Err(TransportError::Closed);
        }
        let epoch = env.epoch;
        let msg = NetMsg::Envelopes {
            epoch,
            batch: vec![env],
        };
        lock(&self.writer)
            .send(&msg)
            .map_err(|_| TransportError::Closed)
    }

    fn submit_batch(&self, batch: &mut Vec<Envelope>) -> Result<(), TransportError> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.is_closed() {
            return Err(TransportError::Closed);
        }
        let epoch = batch[0].epoch;
        let msg = NetMsg::Envelopes {
            epoch,
            batch: std::mem::take(batch),
        };
        if self.send_frame(&msg) {
            return Ok(());
        }
        // Restore the batch for the caller's retry accounting.
        if let NetMsg::Envelopes { batch: b, .. } = msg {
            *batch = b;
        }
        Err(TransportError::Closed)
    }

    fn drain(&self, epoch: u64, lane: usize) -> Vec<Envelope> {
        lock(&self.shared.queues)
            .remove(&(epoch, lane))
            .unwrap_or_default()
    }

    fn pending(&self, epoch: u64, lane: usize) -> Option<(usize, u64)> {
        let queues = lock(&self.shared.queues);
        let q = queues.get(&(epoch, lane))?;
        if q.is_empty() {
            return None;
        }
        let min = q.iter().map(|e| e.deliver_at_us).min().unwrap_or(u64::MAX);
        Some((q.len(), min))
    }
}

/// The transport a remote worker's round loop submits into: an
/// unbounded per-lane collector.
///
/// `submit` never rejects, so `run_round` never parks an envelope —
/// every send of the window surfaces in [`CollectorTransport::take_lanes`]
/// for the worker to stash (own lane) or relay (other lanes). Flow
/// control lives in the window protocol, which only opens the next
/// window once the previous round's output is shipped.
#[derive(Default)]
pub struct CollectorTransport {
    lanes: Mutex<BTreeMap<usize, Vec<Envelope>>>,
    lane_count: usize,
}

impl CollectorTransport {
    /// A collector partitioning sends into `lane_count` lanes.
    pub fn new(lane_count: usize) -> CollectorTransport {
        CollectorTransport {
            lanes: Mutex::new(BTreeMap::new()),
            lane_count: lane_count.max(1),
        }
    }

    /// Drains every lane, in lane order, preserving FIFO within a lane.
    pub fn take_lanes(&self) -> BTreeMap<usize, Vec<Envelope>> {
        std::mem::take(&mut *lock(&self.lanes))
    }
}

impl Transport for CollectorTransport {
    fn submit(&self, env: Envelope) -> Result<(), TransportError> {
        let lane = env.to.index() % self.lane_count;
        lock(&self.lanes).entry(lane).or_default().push(env);
        Ok(())
    }

    fn drain(&self, _epoch: u64, _lane: usize) -> Vec<Envelope> {
        // The worker loop drains via take_lanes between rounds; the
        // engine-side drain path is never exercised on a collector.
        Vec::new()
    }

    fn pending(&self, _epoch: u64, _lane: usize) -> Option<(usize, u64)> {
        None
    }
}

/// A null transport for world construction on detached hosts.
///
/// Rejects every submit with [`TransportError::Closed`]; nothing in the
/// detached path ever submits through it (the engine is converted to
/// parts before stepping).
#[derive(Debug, Default, Clone, Copy)]
pub struct SinkTransport;

impl Transport for SinkTransport {
    fn submit(&self, _env: Envelope) -> Result<(), TransportError> {
        Err(TransportError::Closed)
    }

    fn drain(&self, _epoch: u64, _lane: usize) -> Vec<Envelope> {
        Vec::new()
    }

    fn pending(&self, _epoch: u64, _lane: usize) -> Option<(usize, u64)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::{Addr, Listener};
    use edgelet_util::ids::DeviceId;
    use edgelet_util::Payload;

    fn env(epoch: u64, to: u64, seq: u64, deliver_at_us: u64) -> Envelope {
        Envelope {
            epoch,
            from: DeviceId::new(0),
            to: DeviceId::new(to),
            seq,
            sent_at_us: 0,
            deliver_at_us,
            payload: Payload::from(vec![seq as u8]),
        }
    }

    #[test]
    fn socket_transport_roundtrip_uds() {
        let dir = std::env::temp_dir().join(format!("eln-tr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addr = Addr::Uds(dir.join("t.sock"));
        let listener = Listener::bind(&addr).unwrap();
        let accept = std::thread::spawn(move || listener.accept().unwrap());
        let client = Stream::connect(&addr).unwrap();
        let server = accept.join().unwrap();

        let a = SocketTransport::new(client, 2).unwrap();
        let b = SocketTransport::new(server, 2).unwrap();

        // a -> b: device 3 maps to lane 3 % 2 == 1.
        a.submit(env(7, 3, 0, 500)).unwrap();
        a.submit(env(7, 3, 1, 400)).unwrap();
        assert!(b.wait_pending(7, 1, Duration::from_secs(5)));
        // wait_pending unblocks on the first arrival; poll until the
        // second lands before asserting the lane summary.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.pending(7, 1).is_none_or(|(n, _)| n < 2) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(b.pending(7, 1), Some((2, 400)));
        let got = b.drain(7, 1);
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].seq, got[1].seq), (0, 1), "FIFO within lane");
        assert_eq!(b.pending(7, 1), None);

        // b -> a as a batch.
        let mut batch = vec![env(7, 2, 5, 900)];
        b.submit_batch(&mut batch).unwrap();
        assert!(batch.is_empty());
        assert!(a.wait_pending(7, 0, Duration::from_secs(5)));
        assert_eq!(a.drain(7, 0).len(), 1);

        a.close();
        b.close();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn socket_transport_reports_closed_peer() {
        let listener = Listener::bind(&Addr::Tcp("127.0.0.1:0".into())).unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || listener.accept().unwrap());
        let client = Stream::connect(&addr).unwrap();
        let server = accept.join().unwrap();
        let t = SocketTransport::new(client, 1).unwrap();
        drop(server);
        // The reader notices EOF; wait_pending unblocks on closure.
        assert!(!t.wait_pending(1, 0, Duration::from_secs(5)));
        assert!(t.is_closed());
        assert_eq!(t.submit(env(1, 0, 0, 0)), Err(TransportError::Closed));
    }

    #[test]
    fn collector_partitions_by_lane_and_never_backpressures() {
        let c = CollectorTransport::new(2);
        for seq in 0..100 {
            c.submit(env(1, seq % 3, seq, seq)).unwrap();
        }
        let lanes = c.take_lanes();
        let total: usize = lanes.values().map(Vec::len).sum();
        assert_eq!(total, 100);
        for (lane, envs) in &lanes {
            for e in envs {
                assert_eq!(e.to.index() % 2, *lane);
            }
            // FIFO within each lane.
            assert!(envs.windows(2).all(|w| w[0].seq < w[1].seq));
        }
        assert!(c.take_lanes().is_empty(), "take_lanes drains");
    }

    #[test]
    fn sink_rejects_everything() {
        let s = SinkTransport;
        assert_eq!(s.submit(env(1, 0, 0, 0)), Err(TransportError::Closed));
        assert!(s.drain(1, 0).is_empty());
        assert_eq!(s.pending(1, 0), None);
    }
}
