//! The worker side of the multi-process deployment: `edgelet worker
//! --connect <addr>` runs this loop in its own process.
//!
//! A worker connects with truncated-exponential [`Backoff`] (paced by
//! the same real-time [`TimerHeap`] the daemon's sweeper uses),
//! completes the versioned handshake, and then serves the epoch
//! protocol: `Prepare` builds the *entire* world from the canonical
//! spec bytes (bit-identical to the daemon's and every sibling's copy)
//! and keeps only its assigned slice; each `OpenWindow` runs one
//! conservative window through the very same
//! [`edgelet_live::round::LiveWorker::run_round`] the in-process
//! engine's threads call; `Finish`/`Abort` reports the ledger partial
//! (and the querier record when this slice owns the querier).
//!
//! Sends within the window go into a [`CollectorTransport`]; after the
//! round the worker keeps its own lane locally (staged for the next
//! window) and ships every other lane to the daemon for relay — unless
//! the epoch runs in fault mode, in which case *all* lanes route
//! through the daemon so the fault proxy observes every envelope.
//!
//! Daemon death (EOF or any protocol error) drops all epoch state and
//! re-enters the reconnect loop — a fresh `Prepare` rebuilds the world
//! deterministically, so a worker surviving a daemon restart poisons
//! nothing.

use crate::conn::{Addr, Backoff, MsgStream, Stream, TimerHeap};
use crate::daemon::WorldBuilder;
use crate::proto::{NetMsg, Role, WireDeltas, WireJEntry, WireRecord, WireRound};
use crate::transport::CollectorTransport;
use edgelet_live::round::{fold_min, LiveEnv, LiveWorker, RoundReport};
use edgelet_live::PreparedQuery;
use edgelet_util::{Error, Result};
use edgelet_wire::Envelope;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Worker process configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The daemon's address.
    pub connect: Addr,
    /// First reconnect delay.
    pub backoff_initial: Duration,
    /// Reconnect delay cap.
    pub backoff_max: Duration,
    /// `Welcome` deadline after sending `Hello`.
    pub handshake_timeout: Duration,
}

impl WorkerConfig {
    /// Defaults for `addr`: 50ms→2s backoff, 10s handshake deadline.
    pub fn new(connect: Addr) -> WorkerConfig {
        WorkerConfig {
            connect,
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// Why one connection session ended (observability / tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEnd {
    /// The daemon refused the handshake; reconnecting is pointless.
    Rejected(String),
    /// The connection died (EOF, timeout, frame corruption); the loop
    /// backs off and reconnects.
    Disconnected(String),
}

/// The state a worker holds for one prepared epoch.
struct EpochState {
    epoch: u64,
    slice: LiveWorker,
    assembly: edgelet_exec::PlanAssembly,
    collector: Arc<CollectorTransport>,
    network: edgelet_sim::NetworkModel,
    classifier: Option<edgelet_live::PayloadClassifier>,
    trace_enabled: bool,
    device_count: usize,
    worker_index: usize,
    worker_count: usize,
    fault_mode: bool,
    /// Envelopes staged for the next window (daemon relays + own-lane
    /// stash-backs).
    staging: Mutex<Vec<Envelope>>,
    /// Always empty — `run_round` requires a mailbox; the socket path
    /// has no barrier spills.
    mailbox: Mutex<Vec<Envelope>>,
    /// Recycled round report, same as the in-process barrier slots.
    reuse: Option<RoundReport>,
}

impl EpochState {
    /// Builds the world for `epoch` and keeps slice `worker_index`.
    fn build(
        builder: &dyn WorldBuilder,
        spec: &[u8],
        epoch: u64,
        worker_count: usize,
        worker_index: usize,
        fault_mode: bool,
    ) -> Result<EpochState> {
        if worker_index >= worker_count {
            return Err(Error::InvalidConfig(format!(
                "worker index {worker_index} out of range for {worker_count} workers"
            )));
        }
        let PreparedQuery {
            plan: _,
            engine,
            assembly,
        } = builder.build(spec, epoch, worker_count)?;
        let parts = engine.into_parts();
        if parts.workers.len() != worker_count {
            return Err(Error::InvalidConfig(format!(
                "world built {} slices, daemon expects {worker_count}",
                parts.workers.len()
            )));
        }
        let slice = parts
            .workers
            .into_iter()
            .nth(worker_index)
            .expect("index checked above");
        Ok(EpochState {
            epoch,
            slice,
            assembly,
            collector: Arc::new(CollectorTransport::new(worker_count)),
            network: parts.config.network.clone(),
            classifier: parts.classifier,
            trace_enabled: parts.config.trace_capacity > 0,
            device_count: parts.device_count,
            worker_index,
            worker_count,
            fault_mode,
            staging: Mutex::new(Vec::new()),
            mailbox: Mutex::new(Vec::new()),
            reuse: None,
        })
    }

    /// Runs one window and assembles the wire round.
    fn run_window(&mut self, window_end_us: u64, clip_us: u64, budget: u64) -> WireRound {
        let env = LiveEnv {
            network: &self.network,
            classifier: self.classifier,
            need_kind: self.classifier.is_some() && self.trace_enabled,
            trace_enabled: self.trace_enabled,
            device_count: self.device_count,
            epoch: self.epoch,
            transport: self.collector.as_ref(),
        };
        let mut report = self.slice.run_round(
            &env,
            &self.mailbox,
            &self.staging,
            window_end_us,
            clip_us,
            budget,
            self.reuse.take(),
        );
        debug_assert!(
            report.out.parked.is_empty(),
            "collector never backpressures"
        );
        // Partition the window's sends: own lane stays local (staged
        // for the next window — the lookahead guarantees nothing in it
        // is due before `window_end_us`), other lanes ship to the
        // daemon. Fault mode ships everything so the relay proxy sees
        // every envelope.
        let mut outgoing: Vec<Envelope> = Vec::new();
        let mut stash_min: Option<u64> = None;
        for (lane, envs) in self.collector.take_lanes() {
            if lane == self.worker_index && !self.fault_mode {
                let mut staging = lock(&self.staging);
                for e in envs {
                    stash_min = fold_min(stash_min, Some(e.deliver_at_us));
                    staging.push(e);
                }
            } else {
                outgoing.extend(envs);
            }
        }
        let pending_min = fold_min(report.heap_min, stash_min);
        let journal = report
            .out
            .journal
            .iter()
            .map(WireJEntry::from_entry)
            .collect();
        let round = WireRound {
            deltas: WireDeltas::from_deltas(&report.out.deltas),
            pending_min,
            hit_budget: report.hit_budget,
            journal,
            outgoing,
        };
        report.out.reset();
        self.reuse = Some(report);
        round
    }

    /// The final partials for `QueryDone`.
    fn finish(&self) -> (Vec<u8>, Option<WireRecord>) {
        let ledger = edgelet_wire::to_bytes(&*lock(&self.assembly.ledger));
        let querier_owner = (self.device_count - 1) % self.worker_count;
        let record = (querier_owner == self.worker_index).then(|| {
            let rec = lock(&self.assembly.record);
            WireRecord {
                payload: rec.payload.clone(),
                completed_at_us: rec.completed_at.map(|t| t.as_micros()),
                partitions_merged: rec.partitions_merged,
                partitions_complete: rec.partitions_complete,
                winning_replica: rec.winning_replica,
                results_received: rec.results_received,
            }
        });
        (ledger, record)
    }
}

/// Runs the worker process loop: connect (with backoff), handshake,
/// serve epochs, reconnect on failure — until `stop` is raised.
///
/// Returns the terminal session end when the daemon *rejected* the
/// handshake (version mismatch — retrying cannot help) or `Ok(())`
/// when stopped.
pub fn run_worker(
    cfg: &WorkerConfig,
    builder: Arc<dyn WorldBuilder>,
    stop: &AtomicBool,
) -> std::result::Result<(), SessionEnd> {
    let mut backoff = Backoff::new(cfg.backoff_initial, cfg.backoff_max);
    let mut timers: TimerHeap<()> = TimerHeap::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match connect_session(cfg, builder.as_ref(), stop) {
            Ok(()) => return Ok(()),
            Err(SessionEnd::Rejected(reason)) => return Err(SessionEnd::Rejected(reason)),
            Err(SessionEnd::Disconnected(_)) => {
                // Reconnect after the backoff delay, paced through the
                // timer heap so the wait is interruptible by `stop`.
                let token = timers.push(Instant::now() + backoff.delay(), ());
                loop {
                    if stop.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    if !timers.pop_due(Instant::now()).is_empty() {
                        break;
                    }
                    let nap = timers
                        .next_deadline()
                        .map(|d| d.saturating_duration_since(Instant::now()))
                        .unwrap_or_default()
                        .min(Duration::from_millis(50));
                    std::thread::sleep(nap.max(Duration::from_millis(1)));
                }
                timers.cancel(token);
            }
        }
    }
}

/// One connection session: handshake then serve until disconnect.
fn connect_session(
    cfg: &WorkerConfig,
    builder: &dyn WorldBuilder,
    stop: &AtomicBool,
) -> std::result::Result<(), SessionEnd> {
    let disc = |what: String| SessionEnd::Disconnected(what);
    let stream = Stream::connect(&cfg.connect).map_err(|e| disc(format!("connect: {e:?}")))?;
    let mut ms = MsgStream::new(stream);
    ms.send(&NetMsg::hello(Role::Worker))
        .map_err(|e| disc(format!("hello: {e:?}")))?;
    match ms.recv(Some(cfg.handshake_timeout)) {
        Ok(NetMsg::Welcome { .. }) => {}
        Ok(NetMsg::Reject { reason }) => return Err(SessionEnd::Rejected(reason)),
        Ok(other) => return Err(disc(format!("expected Welcome, got {other:?}"))),
        Err(e) => return Err(disc(format!("handshake: {e:?}"))),
    }

    let mut epoch: Option<EpochState> = None;
    loop {
        if stop.load(Ordering::Acquire) {
            ms.shutdown();
            return Ok(());
        }
        // Poll-style receive so `stop` is observed between messages.
        let msg = match ms.recv(Some(Duration::from_millis(500))) {
            Ok(m) => m,
            Err(e) => {
                let s = format!("{e:?}");
                if s.contains("timeout") {
                    continue;
                }
                return Err(disc(format!("recv: {s}")));
            }
        };
        match msg {
            NetMsg::Ping { nonce } => {
                ms.send(&NetMsg::Pong { nonce })
                    .map_err(|e| disc(format!("pong: {e:?}")))?;
            }
            NetMsg::Prepare {
                epoch: ep,
                spec,
                worker_count,
                worker_index,
                fault_mode,
            } => {
                match EpochState::build(
                    builder,
                    &spec,
                    ep,
                    worker_count as usize,
                    worker_index as usize,
                    fault_mode,
                ) {
                    Ok(state) => {
                        epoch = Some(state);
                        ms.send(&NetMsg::Ready { epoch: ep })
                            .map_err(|e| disc(format!("ready: {e:?}")))?;
                    }
                    Err(e) => {
                        ms.send(&NetMsg::Reject {
                            reason: format!("prepare failed: {e:?}"),
                        })
                        .ok();
                        return Err(disc(format!("prepare failed: {e:?}")));
                    }
                }
            }
            NetMsg::Envelopes { epoch: ep, batch } => {
                let Some(state) = epoch.as_ref().filter(|s| s.epoch == ep) else {
                    return Err(disc(format!("envelopes for unprepared epoch {ep}")));
                };
                lock(&state.staging).extend(batch);
            }
            NetMsg::OpenWindow {
                epoch: ep,
                window_end_us,
                clip_us,
                budget,
            } => {
                let Some(state) = epoch.as_mut().filter(|s| s.epoch == ep) else {
                    return Err(disc(format!("window for unprepared epoch {ep}")));
                };
                let round = state.run_window(window_end_us, clip_us, budget);
                ms.send(&NetMsg::RoundDone { epoch: ep, round })
                    .map_err(|e| disc(format!("round done: {e:?}")))?;
            }
            NetMsg::Finish { epoch: ep } | NetMsg::Abort { epoch: ep } => {
                let Some(state) = epoch.take().filter(|s| s.epoch == ep) else {
                    return Err(disc(format!("finish for unprepared epoch {ep}")));
                };
                let (ledger, record) = state.finish();
                ms.send(&NetMsg::QueryDone {
                    epoch: ep,
                    ledger,
                    record,
                })
                .map_err(|e| disc(format!("query done: {e:?}")))?;
            }
            other => {
                return Err(disc(format!("unexpected message {other:?}")));
            }
        }
    }
}
