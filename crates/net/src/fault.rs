//! [`NetFaultProxy`] — the simulator's fault-injection DSL applied at
//! the socket relay.
//!
//! The daemon relays every cross-worker envelope between rounds; the
//! proxy sits on that path and evaluates the *same*
//! [`edgelet_sim::FaultPlan`] rules with the same
//! first-firing-rule-wins semantics as the sim engine
//! ([`edgelet_sim::evaluate_plan`] is shared code, not a re-
//! implementation). Determinism argument:
//!
//! * Only [window-safe](FaultPlan::is_window_safe) plans are accepted —
//!   every rule's decision is a pure function of the message itself
//!   (kind, endpoints, virtual time), never of cross-message counters.
//!   Relay arrival order therefore cannot change any verdict.
//! * Actions are limited to the *stateless envelope* subset: `Drop`,
//!   `Delay`, `Duplicate`. `Reorder` holds state between matches and
//!   `CrashSender`/`CrashReceiver` mutate device state the daemon does
//!   not own — those plans must run on the sim engine.
//! * A duplicated copy gets `max(extra_delay, 1µs)` added so its
//!   intrinsic event key `(deliver_at, origin, seq)` differs from the
//!   original's — two identical keys would make the heap order between
//!   them undefined.
//!
//! Fault runs are checked by *verdict parity* (the chaos oracles),
//! not byte parity: the sim engine re-draws latency for duplicates and
//! records `FaultInjected` trace events from inside the round, which a
//! relay-side proxy deliberately does not forge.

use edgelet_live::PayloadClassifier;
use edgelet_sim::{evaluate_plan, FaultAction, FaultCounters, FaultPlan, MatchPoint, SimTime};
use edgelet_util::{Error, Result};
use edgelet_wire::Envelope;

/// What the proxy decided for one relayed envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultVerdict {
    /// No rule fired; relay unchanged.
    Pass(Envelope),
    /// A `Drop` rule fired; the envelope vanishes.
    Drop {
        /// Index of the firing rule.
        rule: u32,
    },
    /// A `Delay` rule fired; relay with a pushed-back delivery time.
    Delayed {
        /// Index of the firing rule.
        rule: u32,
        /// The envelope with `deliver_at_us` advanced.
        env: Envelope,
    },
    /// A `Duplicate` rule fired; relay both copies.
    Duplicated {
        /// Index of the firing rule.
        rule: u32,
        /// Original plus the delayed copy.
        envs: [Envelope; 2],
    },
}

/// A deterministic fault injector on the daemon's envelope relay path.
pub struct NetFaultProxy {
    plan: FaultPlan,
    counters: FaultCounters,
}

impl NetFaultProxy {
    /// Builds a proxy for `plan`, rejecting plans whose decisions or
    /// actions cannot be carried deterministically at the relay (see
    /// module docs).
    pub fn new(plan: FaultPlan) -> Result<NetFaultProxy> {
        if !plan.is_window_safe() {
            return Err(Error::InvalidConfig(
                "net fault proxy requires a window-safe plan (no skip/limit/reorder)".into(),
            ));
        }
        for (i, rule) in plan.rules.iter().enumerate() {
            match rule.action {
                FaultAction::Drop | FaultAction::Delay(_) | FaultAction::Duplicate { .. } => {}
                FaultAction::Reorder | FaultAction::CrashSender | FaultAction::CrashReceiver => {
                    return Err(Error::InvalidConfig(format!(
                        "net fault proxy rule {i}: action {:?} needs engine state; \
                         only Drop/Delay/Duplicate run at the relay",
                        rule.action.kind()
                    )));
                }
            }
        }
        let counters = FaultCounters::for_plan(&plan);
        Ok(NetFaultProxy { plan, counters })
    }

    /// Evaluates the plan against one relayed envelope.
    pub fn apply(&mut self, env: Envelope, classifier: Option<PayloadClassifier>) -> FaultVerdict {
        let kind = classifier.and_then(|f| f(env.payload.as_slice()));
        let fired = evaluate_plan(
            &self.plan,
            &mut self.counters,
            MatchPoint::Send,
            kind,
            env.from,
            env.to,
            SimTime::from_micros(env.sent_at_us),
        );
        match fired {
            None => FaultVerdict::Pass(env),
            Some((rule, FaultAction::Drop)) => FaultVerdict::Drop { rule },
            Some((rule, FaultAction::Delay(extra))) => {
                let mut env = env;
                env.deliver_at_us += extra.as_micros();
                FaultVerdict::Delayed { rule, env }
            }
            Some((rule, FaultAction::Duplicate { extra_delay })) => {
                let mut copy = env.clone();
                // At least 1µs so the copy's intrinsic key differs.
                copy.deliver_at_us += extra_delay.as_micros().max(1);
                FaultVerdict::Duplicated {
                    rule,
                    envs: [env, copy],
                }
            }
            // Constructor rejects everything else.
            Some((_, other)) => unreachable!("unreachable relay action {:?}", other.kind()),
        }
    }

    /// Per-rule occurrence counters accumulated so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// The plan this proxy carries.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgelet_sim::{Duration, FaultRule, MsgMatch};
    use edgelet_util::ids::DeviceId;
    use edgelet_util::Payload;

    fn env(from: u64, to: u64, sent_at_us: u64) -> Envelope {
        Envelope {
            epoch: 1,
            from: DeviceId::new(from),
            to: DeviceId::new(to),
            seq: 9,
            sent_at_us,
            deliver_at_us: sent_at_us + 5_000,
            payload: Payload::from(vec![1u8, 2, 3]),
        }
    }

    #[test]
    fn rejects_stateful_plans() {
        let mut rule = FaultRule::new(FaultAction::Drop);
        rule.skip = 1;
        assert!(NetFaultProxy::new(FaultPlan::new().rule(rule)).is_err());

        let mut rule = FaultRule::new(FaultAction::Drop);
        rule.limit = Some(3);
        assert!(NetFaultProxy::new(FaultPlan::new().rule(rule)).is_err());

        for action in [
            FaultAction::Reorder,
            FaultAction::CrashSender,
            FaultAction::CrashReceiver,
        ] {
            assert!(NetFaultProxy::new(FaultPlan::new().rule(FaultRule::new(action))).is_err());
        }
    }

    #[test]
    fn drop_delay_duplicate_fire_and_count() {
        let plan = FaultPlan::new()
            .rule(FaultRule {
                matcher: MsgMatch {
                    from: Some(vec![DeviceId::new(1)]),
                    ..Default::default()
                },
                action: FaultAction::Drop,
                skip: 0,
                limit: None,
            })
            .rule(FaultRule {
                matcher: MsgMatch {
                    from: Some(vec![DeviceId::new(2)]),
                    ..Default::default()
                },
                action: FaultAction::Delay(Duration::from_millis(2)),
                skip: 0,
                limit: None,
            })
            .rule(FaultRule {
                matcher: MsgMatch {
                    from: Some(vec![DeviceId::new(3)]),
                    ..Default::default()
                },
                action: FaultAction::Duplicate {
                    extra_delay: Duration::ZERO,
                },
                skip: 0,
                limit: None,
            });
        let mut proxy = NetFaultProxy::new(plan).unwrap();

        assert_eq!(
            proxy.apply(env(1, 9, 100), None),
            FaultVerdict::Drop { rule: 0 }
        );

        match proxy.apply(env(2, 9, 100), None) {
            FaultVerdict::Delayed { rule: 1, env } => {
                assert_eq!(env.deliver_at_us, 100 + 5_000 + 2_000);
            }
            other => panic!("expected delay, got {other:?}"),
        }

        match proxy.apply(env(3, 9, 100), None) {
            FaultVerdict::Duplicated { rule: 2, envs } => {
                assert_eq!(envs[0].deliver_at_us, 5_100);
                // Zero extra delay still floors at 1µs for a distinct key.
                assert_eq!(envs[1].deliver_at_us, 5_101);
            }
            other => panic!("expected duplicate, got {other:?}"),
        }

        match proxy.apply(env(4, 9, 100), None) {
            FaultVerdict::Pass(env) => assert_eq!(env.from, DeviceId::new(4)),
            other => panic!("expected pass, got {other:?}"),
        }

        assert_eq!(proxy.counters().fired, vec![1, 1, 1]);
    }

    #[test]
    fn window_rules_use_virtual_send_time() {
        let plan = FaultPlan::new().rule(FaultRule {
            matcher: MsgMatch {
                after: Some(SimTime::from_micros(1_000)),
                until: Some(SimTime::from_micros(2_000)),
                ..Default::default()
            },
            action: FaultAction::Drop,
            skip: 0,
            limit: None,
        });
        let mut proxy = NetFaultProxy::new(plan).unwrap();
        assert!(matches!(
            proxy.apply(env(1, 2, 500), None),
            FaultVerdict::Pass(_)
        ));
        assert!(matches!(
            proxy.apply(env(1, 2, 1_500), None),
            FaultVerdict::Drop { .. }
        ));
        assert!(matches!(
            proxy.apply(env(1, 2, 2_000), None),
            FaultVerdict::Pass(_)
        ));
    }

    #[test]
    fn verdicts_are_arrival_order_independent() {
        let plan = FaultPlan::new().rule(FaultRule {
            matcher: MsgMatch {
                from: Some(vec![DeviceId::new(1)]),
                ..Default::default()
            },
            action: FaultAction::Drop,
            skip: 0,
            limit: None,
        });
        let envs: Vec<Envelope> = (0..6).map(|i| env(i % 3, 9, 100 * i)).collect();
        let verdict_of = |order: &[usize]| -> Vec<(usize, bool)> {
            let mut proxy = NetFaultProxy::new(plan.clone()).unwrap();
            let mut out: Vec<(usize, bool)> = order
                .iter()
                .map(|&i| {
                    let dropped = matches!(
                        proxy.apply(envs[i].clone(), None),
                        FaultVerdict::Drop { .. }
                    );
                    (i, dropped)
                })
                .collect();
            out.sort_unstable();
            out
        };
        let forward: Vec<usize> = (0..6).collect();
        let reverse: Vec<usize> = (0..6).rev().collect();
        assert_eq!(verdict_of(&forward), verdict_of(&reverse));
    }
}
