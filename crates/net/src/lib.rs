//! `edgelet-net` — socket-backed transport and multi-process worker
//! deployment for the live runtime.
//!
//! The live runtime (`edgelet-live`) proved the protocol runs
//! bit-identically to the simulator inside one process; this crate
//! takes the remaining step of the paper's edge deployment story: the
//! same conservative-window execution spread across *processes*, over
//! real sockets — Unix domain sockets on one device, TCP across
//! devices — with the same bar: byte-identical result payloads,
//! ledgers, and state CRCs (`tests/net_parity.rs`).
//!
//! * [`framing`] — length-prefixed CRC-trailed frames over a byte
//!   stream; the push decoder is total and deterministic under any
//!   chunking (property-tested);
//! * [`proto`] — the versioned control protocol: handshake, client
//!   submissions, and the daemon↔worker window coordination messages,
//!   all exact integer encodings of the runtime's round state;
//! * [`conn`] — blocking UDS/TCP listeners and streams, framed message
//!   streams, reconnect [`conn::Backoff`], and the real-time
//!   [`conn::TimerHeap`] behind handshake deadlines and reconnect
//!   pacing;
//! * [`transport`] — [`transport::SocketTransport`], the
//!   [`edgelet_wire::Transport`] impl over a connected socket, plus the
//!   worker-side [`transport::CollectorTransport`] and the
//!   world-construction [`transport::SinkTransport`];
//! * [`daemon`] — the `edgelet serve` side: accept loop, worker
//!   registry with half-open detection, and the window coordinator
//!   that plugs into [`edgelet_live::QueryService`] as its
//!   [`edgelet_live::RemoteExecutor`] (socket failure → deterministic
//!   in-process fallback);
//! * [`worker`] — the `edgelet worker` side: backoff reconnect loop,
//!   versioned handshake, and the per-window round server;
//! * [`fault`] — [`fault::NetFaultProxy`]: the simulator's fault DSL
//!   evaluated on the daemon's relay path, restricted to the
//!   order-independent subset so verdicts stay deterministic.
//!
//! Protocol and determinism model: `docs/NET.md`, `docs/PROTOCOL.md`
//! §8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod daemon;
pub mod fault;
pub mod framing;
pub mod proto;
pub mod transport;
pub mod worker;

pub use conn::{Addr, Backoff, Listener, MsgStream, Stream, TimerHeap};
pub use daemon::{Daemon, NetConfig, Submission, WorldBuilder};
pub use fault::{FaultVerdict, NetFaultProxy};
pub use framing::{encode_frame, FrameDecoder, FRAME_OVERHEAD, MAX_FRAME_LEN, NET_MAGIC};
pub use proto::{NetMsg, Role, WireRecord, WireRound, PROTO_VERSION};
pub use transport::{CollectorTransport, SinkTransport, SocketTransport};
pub use worker::{run_worker, SessionEnd, WorkerConfig};
