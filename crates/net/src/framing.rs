//! Socket frame boundary: length-prefixed, CRC-trailed frames over a
//! byte stream.
//!
//! The in-process wire format ([`edgelet_wire::frame`]) assumes the
//! decoder holds one complete message; a socket hands us an arbitrary
//! byte *stream* — partial length prefixes, coalesced back-to-back
//! frames, a CRC split across two reads. [`NetFrame`] adds the missing
//! boundary:
//!
//! ```text
//! +----+----+----------------+------------------+--------------+
//! | 'E'| 'N'| length: u32 LE | body: len bytes  | crc32: u32 LE|
//! +----+----+----------------+------------------+--------------+
//! ```
//!
//! The CRC (same from-scratch CRC-32 as the frame layer,
//! [`edgelet_wire::crc::crc32`]) covers magic + length + body, so a
//! flipped bit anywhere before the trailer is caught. The body is an
//! ordinary wire-encoded protocol message ([`crate::proto::NetMsg`]) —
//! the socket layer never re-encodes protocol content, it only frames
//! it.
//!
//! [`FrameDecoder`] is a *push* decoder: feed it whatever the socket
//! produced, pull zero or more complete frames. It is deterministic and
//! total — any byte sequence yields a well-defined sequence of frames
//! and/or one terminal error, never a panic, never an unbounded
//! allocation (`MAX_FRAME_LEN` caps the length prefix before any buffer
//! grows). A stream error is **terminal**: a transport that delivered
//! garbage cannot be trusted about subsequent boundaries either, so the
//! connection is torn down and re-established (the reconnect path) —
//! resynchronization by rejection, the deterministic option.

use edgelet_util::{Error, Result};
use edgelet_wire::crc::crc32;

/// Magic prefix of every socket frame ("EN", for envelope-over-network).
pub const NET_MAGIC: [u8; 2] = *b"EN";

/// Hard cap on one frame's body length. Generous for the protocol's
/// largest message (a whole window's relayed envelope batch), tight
/// enough that a corrupt length prefix cannot drive allocation.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Byte overhead added around a body: magic + length + CRC.
pub const FRAME_OVERHEAD: usize = 2 + 4 + 4;

/// Encodes one frame around `body`.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_FRAME_LEN, "frame body over MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(body.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&NET_MAGIC);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Incremental frame decoder over an arbitrary chunking of the stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames; compacted
    /// lazily so a burst of coalesced frames costs one copy, not one
    /// per frame.
    consumed: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A fresh decoder at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends bytes read from the socket.
    ///
    /// After a decode error the decoder is poisoned and further input
    /// is ignored — the caller must drop the connection (see module
    /// docs on deterministic resynchronization).
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pulls the next complete frame body, `Ok(None)` if more input is
    /// needed, or a terminal error (bad magic, oversized length, CRC
    /// mismatch) after which the decoder stays poisoned.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.poisoned {
            return Err(Error::Decode("frame stream poisoned".into()));
        }
        let avail = &self.buf[self.consumed..];
        if avail.len() < 2 {
            // With one byte in hand we can still reject a wrong magic
            // prefix early; a lone correct first byte waits for more.
            if avail.len() == 1 && avail[0] != NET_MAGIC[0] {
                return self.poison("bad frame magic");
            }
            return Ok(None);
        }
        if avail[..2] != NET_MAGIC {
            return self.poison("bad frame magic");
        }
        if avail.len() < 6 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[2], avail[3], avail[4], avail[5]]) as usize;
        if len > MAX_FRAME_LEN {
            return self.poison("frame length over limit");
        }
        let total = FRAME_OVERHEAD + len;
        if avail.len() < total {
            return Ok(None);
        }
        let crc_off = 6 + len;
        let expect = crc32(&avail[..crc_off]);
        let got = u32::from_le_bytes([
            avail[crc_off],
            avail[crc_off + 1],
            avail[crc_off + 2],
            avail[crc_off + 3],
        ]);
        if expect != got {
            return self.poison("frame crc mismatch");
        }
        let body = avail[6..crc_off].to_vec();
        self.consumed += total;
        Ok(Some(body))
    }

    /// Drains every complete frame currently buffered.
    pub fn drain_frames(&mut self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(body) = self.next_frame()? {
            out.push(body);
        }
        Ok(out)
    }

    /// True once a decode error occurred; the connection must be torn
    /// down.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Bytes buffered but not yet yielded (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    fn poison(&mut self, what: &str) -> Result<Option<Vec<u8>>> {
        self.poisoned = true;
        self.buf.clear();
        self.consumed = 0;
        Err(Error::Decode(format!("net frame: {what}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_single_frame() {
        let body = b"hello edgelet".to_vec();
        let wire = encode_frame(&body);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame().unwrap(), Some(body));
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn empty_body_roundtrips() {
        let wire = encode_frame(&[]);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame().unwrap(), Some(Vec::new()));
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let body: Vec<u8> = (0u8..200).collect();
        let wire = encode_frame(&body);
        let mut dec = FrameDecoder::new();
        for &b in &wire[..wire.len() - 1] {
            dec.push(&[b]);
            assert_eq!(dec.next_frame().unwrap(), None, "frame yielded early");
        }
        dec.push(&wire[wire.len() - 1..]);
        assert_eq!(dec.next_frame().unwrap(), Some(body));
    }

    #[test]
    fn coalesced_back_to_back_frames() {
        let mut wire = Vec::new();
        let bodies: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; i * 7]).collect();
        for b in &bodies {
            wire.extend_from_slice(&encode_frame(b));
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.drain_frames().unwrap(), bodies);
    }

    #[test]
    fn corrupt_crc_poisons() {
        let mut wire = encode_frame(b"payload");
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(dec.next_frame().is_err());
        assert!(dec.is_poisoned());
        // Poisoned decoders stay poisoned: a valid frame after the
        // corruption is not trusted.
        dec.push(&encode_frame(b"valid"));
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn corrupt_body_bit_is_caught() {
        let mut wire = encode_frame(b"payload-bytes");
        wire[8] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn wrong_magic_rejected_immediately() {
        let mut dec = FrameDecoder::new();
        dec.push(b"XY");
        assert!(dec.next_frame().is_err());
        let mut dec = FrameDecoder::new();
        dec.push(b"Q");
        assert!(dec.next_frame().is_err(), "wrong first byte rejects early");
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&NET_MAGIC);
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(dec.next_frame().is_err());
    }

    proptest! {
        /// Frame-boundary torture (ISSUE satellite): any split or
        /// coalescing of a valid framed stream yields exactly the
        /// original bodies, in order, with no error.
        #[test]
        fn prop_arbitrary_chunking_preserves_frames(
            bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 0..8),
            cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..16),
        ) {
            let mut wire = Vec::new();
            for b in &bodies {
                wire.extend_from_slice(&encode_frame(b));
            }
            let mut offsets: Vec<usize> = cuts.iter().map(|i| i.index(wire.len() + 1)).collect();
            offsets.push(0);
            offsets.push(wire.len());
            offsets.sort_unstable();
            offsets.dedup();
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for pair in offsets.windows(2) {
                dec.push(&wire[pair[0]..pair[1]]);
                while let Some(body) = dec.next_frame().unwrap() {
                    got.push(body);
                }
            }
            prop_assert_eq!(got, bodies);
        }

        /// Any byte garbage: the decoder never panics, and whatever
        /// frames it does yield carry a valid CRC by construction.
        #[test]
        fn prop_random_bytes_never_panic(
            chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
        ) {
            let mut dec = FrameDecoder::new();
            for c in &chunks {
                dec.push(c);
                loop {
                    match dec.next_frame() {
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                        Err(_) => {
                            prop_assert!(dec.is_poisoned());
                            break;
                        }
                    }
                }
            }
        }

        /// A single flipped bit anywhere in a framed stream either
        /// leaves earlier (untouched) frames intact and then errors, or
        /// errors immediately — it never yields a corrupted body.
        #[test]
        fn prop_bitflip_never_yields_corrupt_body(
            bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..4),
            flip_byte in any::<prop::sample::Index>(),
            flip_bit in 0u8..8,
        ) {
            let mut wire = Vec::new();
            for b in &bodies {
                wire.extend_from_slice(&encode_frame(b));
            }
            let pos = flip_byte.index(wire.len());
            wire[pos] ^= 1 << flip_bit;
            let mut dec = FrameDecoder::new();
            dec.push(&wire);
            let mut yielded = Vec::new();
            loop {
                match dec.next_frame() {
                    Ok(Some(b)) => yielded.push(b),
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
            // Every yielded body must be one of the originals (a prefix
            // of the stream before the flip), byte for byte.
            prop_assert!(yielded.len() <= bodies.len());
            for (got, want) in yielded.iter().zip(&bodies) {
                prop_assert_eq!(got, want);
            }
        }
    }
}
