//! The `edgelet` command-line tool.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match edgelet_cli::run_cli_with_status(&argv) {
        Ok((text, status)) => {
            print!("{text}");
            std::process::exit(status);
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `edgelet help` for usage");
            std::process::exit(1);
        }
    }
}
