//! The `edgelet` command-line tool.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match edgelet_cli::run_cli(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `edgelet help` for usage");
            std::process::exit(1);
        }
    }
}
