//! Implementation of the `edgelet` command-line tool.
//!
//! Subcommands mirror the two parts of the demonstration (§3.2):
//!
//! * `edgelet plan …` — Part 1: configure privacy/resiliency knobs and
//!   inspect the resulting QEP (and its predicted cost) without running;
//! * `edgelet run …` — Part 2: execute on a simulated crowd and report
//!   completion, validity, accuracy and liability;
//! * `edgelet analyze …` — run the static plan/config analyzer and report
//!   diagnostics (text or `--format json`), exiting nonzero on errors;
//! * `edgelet dataset …` — emit the synthetic health data as CSV;
//! * `edgelet experiments` — list the figure-regeneration binaries.
//!
//! The argument parser is hand-rolled (no external dependency) and unit
//! tested here; `main.rs` is a thin shell around [`run_cli`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub(crate) mod net;

use edgelet_util::Result;

/// Entry point: parses `argv` (without the program name) and executes.
/// Returns the text to print on success.
pub fn run_cli(argv: &[String]) -> Result<String> {
    run_cli_with_status(argv).map(|(text, _)| text)
}

/// Like [`run_cli`], but also returns the process exit status the tool
/// should use: nonzero when `analyze` found `Error`-severity diagnostics.
pub fn run_cli_with_status(argv: &[String]) -> Result<(String, i32)> {
    let cmd = args::parse(argv)?;
    commands::execute_with_status(cmd)
}

pub use edgelet_core as core_api;
use edgelet_core::util as edgelet_util;
