//! Hand-rolled argument parsing for the `edgelet` tool.

use edgelet_core::util::{Error, Result};
use std::collections::BTreeMap;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `edgelet plan …`
    Plan(QueryArgs),
    /// `edgelet run …`
    Run(QueryArgs),
    /// `edgelet analyze …`
    Analyze {
        /// Scenario whose plan is analyzed.
        query: QueryArgs,
        /// Emit a JSON array instead of compiler-style text.
        json: bool,
        /// Run the Layer-3 concurrency pass over the workspace sources.
        concurrency: bool,
        /// Workspace to scan for the source layers (needs a `crates/`
        /// directory; silently skipped otherwise).
        workspace_root: String,
    },
    /// `edgelet dataset --rows N [--seed S]`
    Dataset {
        /// Rows to generate.
        rows: usize,
        /// Generator seed.
        seed: u64,
    },
    /// `edgelet experiments`
    Experiments,
    /// `edgelet chaos …`
    Chaos(ChaosArgs),
    /// `edgelet bench …`
    Bench(BenchArgs),
    /// `edgelet serve …` — live runtime, concurrent self-driving demo
    /// (or, with `--listen`, a socket daemon serving remote workers and
    /// client submissions).
    Serve(ServeArgs),
    /// `edgelet submit …` — live runtime, one query with a verdict
    /// (or, with `--connect`, a client submission to a daemon).
    Submit(ServeArgs),
    /// `edgelet worker --connect <addr>` — a worker process serving a
    /// daemon's epochs over a socket.
    Worker(WorkerArgs),
    /// `edgelet help` (or `--help`)
    Help,
}

/// Options for the live runtime (`serve` and `submit`).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// World and query shape (same flags as `run`).
    pub query: QueryArgs,
    /// Worker threads hosting the device population per query.
    pub workers: usize,
    /// Queries to drive through the service (`serve` only).
    pub queries: usize,
    /// Admission-control concurrency limit.
    pub max_concurrent: usize,
    /// Per-lane transport mailbox capacity (envelopes).
    pub mailbox_cap: usize,
    /// Wall-clock deadline per query, milliseconds (`None` = unbounded).
    pub wall_deadline_ms: Option<u64>,
    /// Emit a JSON verdict instead of human text (`submit` only).
    pub json: bool,
    /// Anchor service state in a WAL + checkpoint on disk.
    pub durable: bool,
    /// Directory holding the WAL and checkpoint (with `--durable`).
    pub wal_dir: Option<String>,
    /// Completions per checkpoint; 0 = never checkpoint.
    pub checkpoint_every: u64,
    /// Group-commit window in milliseconds; 0 = sync immediately.
    pub commit_window_ms: u64,
    /// WAL segment rotation threshold in bytes; 0 = never rotate.
    pub segment_bytes: u64,
    /// Scripted crash point (`after-admit` | `mid-query` |
    /// `before-checkpoint`): abort the process there, for restart
    /// drills. Requires `--durable`.
    pub crash_at: Option<String>,
    /// Daemon mode (`serve` only): bind this address (`uds:<path>` |
    /// `tcp:<host>:<port>`) and serve remote workers + submissions.
    pub listen: Option<String>,
    /// Client mode (`submit` only): send the query to a daemon at this
    /// address instead of running in-process.
    pub connect: Option<String>,
    /// Declared transport (`uds` | `tcp`); must match the address
    /// scheme (E150) — purely a guard against config drift.
    pub transport: Option<String>,
    /// Worker *processes* the daemon coordinates per epoch (`--listen`
    /// only; distinct from `--workers`, the in-process thread count
    /// used when no remote fleet is available).
    pub expected_workers: usize,
    /// Relay fault plan DSL (`--listen` only); see docs/NET.md.
    pub net_fault_plan: Option<String>,
    /// Handshake completion deadline, milliseconds (`--listen` only).
    pub handshake_timeout_ms: u64,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            query: QueryArgs::default(),
            workers: 4,
            queries: 3,
            max_concurrent: 4,
            mailbox_cap: 4096,
            wall_deadline_ms: None,
            json: false,
            durable: false,
            wal_dir: None,
            checkpoint_every: 8,
            commit_window_ms: 0,
            segment_bytes: 4 << 20,
            crash_at: None,
            listen: None,
            connect: None,
            transport: None,
            expected_workers: 2,
            net_fault_plan: None,
            handshake_timeout_ms: 10_000,
        }
    }
}

/// Options for the `worker` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerArgs {
    /// The daemon's address (`uds:<path>` | `tcp:<host>:<port>`).
    pub connect: String,
    /// First reconnect delay, milliseconds (`None` = default 50).
    pub backoff_initial_ms: Option<u64>,
    /// Reconnect delay cap, milliseconds (`None` = default 2000).
    pub backoff_max_ms: Option<u64>,
}

/// Options for the `bench` regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Baseline report to compare against (`None` = measure only).
    pub compare: Option<String>,
    /// Regression threshold in percent: exit nonzero when any suite's
    /// median slows down by more than this versus the baseline.
    pub fail_over: f64,
    /// Write the fresh report to this path.
    pub out: Option<String>,
    /// Only run suites whose name starts with this prefix (`None` = all).
    pub suite: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            compare: None,
            fail_over: 10.0,
            out: None,
            suite: None,
        }
    }
}

/// Options for the `chaos` campaign runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosArgs {
    /// Seeds `0..seeds` to sweep.
    pub seeds: u64,
    /// Restrict to one scenario (`grouping` | `kmeans`); `None` = all.
    pub scenario: Option<String>,
    /// Write shrunk failing repros as corpus entries into this directory.
    pub emit_corpus: Option<String>,
    /// Replay the corpus entries in this directory instead of sweeping.
    pub replay: Option<String>,
    /// Skip shrinking failing plans.
    pub no_shrink: bool,
    /// Simulator shard count for every run (verdicts are identical for
    /// every value; >1 exercises the parallel engine).
    pub shards: usize,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        Self {
            seeds: 64,
            scenario: None,
            emit_corpus: None,
            replay: None,
            no_shrink: false,
            shards: 1,
        }
    }
}

/// Options shared by `plan` and `run`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// World seed.
    pub seed: u64,
    /// Data contributors in the crowd.
    pub contributors: usize,
    /// Volunteer processors in the crowd.
    pub processors: usize,
    /// Snapshot cardinality C.
    pub cardinality: usize,
    /// Horizontal cap (max raw tuples per edgelet).
    pub cap: Option<usize>,
    /// Attribute pairs to separate, as `a:b`.
    pub separate: Vec<(String, String)>,
    /// Fault presumption rate.
    pub failure_p: f64,
    /// Strategy name: `overcollection` | `backup` | `naive`.
    pub strategy: String,
    /// Network: `reliable` | `internet` | `lossy:<p>` | `oppnet:<median_s>,<p>`.
    pub network: String,
    /// Actual crash probability injected on processors.
    pub crash_p: f64,
    /// Run K-Means instead of the survey query: `k,heartbeats`.
    pub kmeans: Option<(usize, usize)>,
    /// Emit Graphviz DOT instead of ASCII (plan only).
    pub dot: bool,
    /// Simulator shard count (results are bit-identical for every
    /// value; >1 runs event windows on worker threads).
    pub shards: usize,
}

impl Default for QueryArgs {
    fn default() -> Self {
        Self {
            seed: 7,
            contributors: 2_000,
            processors: 150,
            cardinality: 300,
            cap: Some(75),
            separate: Vec::new(),
            failure_p: 0.1,
            strategy: "overcollection".into(),
            network: "lossy:0.05".into(),
            crash_p: 0.0,
            kmeans: None,
            dot: false,
            shards: 1,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
edgelet — resilient, privacy-preserving queries on personal devices

USAGE:
    edgelet plan  [OPTIONS]   inspect the QEP a configuration produces
    edgelet run   [OPTIONS]   execute on a simulated crowd
    edgelet analyze [OPTIONS] statically check the plan; exits nonzero on errors
    edgelet dataset --rows N [--seed S]   print synthetic health data (CSV)
    edgelet chaos   [OPTIONS] deterministic fault-injection campaign
    edgelet bench   [OPTIONS] measure suites; gate on a committed baseline
    edgelet serve   [OPTIONS] live runtime: N concurrent queries, one device pool
                              (with --listen: socket daemon for remote workers)
    edgelet submit  [OPTIONS] live runtime: one query; exit nonzero on a miss
                              (with --connect: submit to a daemon over a socket)
    edgelet worker --connect ADDR   worker process serving a daemon's epochs
    edgelet experiments       list the figure-regeneration binaries
    edgelet help              this text

OPTIONS (plan/run/analyze):
    --seed N            world seed                       [default: 7]
    --contributors N    data contributors                [default: 2000]
    --processors N      volunteer processors             [default: 150]
    --cardinality C     snapshot cardinality             [default: 300]
    --cap N             max raw tuples per edgelet       [default: 75]
    --separate a:b      vertical separation (repeatable)
    --failure-p F       fault presumption rate           [default: 0.1]
    --strategy S        overcollection|backup|naive      [default: overcollection]
    --network NET       reliable|internet|lossy:<p>|oppnet:<median_s>,<p>
                                                         [default: lossy:0.05]
    --crash-p F         injected processor crash rate    [default: 0]
    --kmeans K,H        K-Means with K clusters, H heartbeats
    --shards N          simulator shards (identical results; >1 = parallel)
                                                         [default: 1]
    --dot               print Graphviz DOT (plan only)
    --format F          diagnostic output, human|json (analyze only)
                                                         [default: human]
    --workspace-root P  workspace to source-scan (analyze only; skipped
                        when P has no crates/ directory)  [default: .]
    --no-concurrency    skip the Layer-3 concurrency pass (analyze only)

OPTIONS (chaos):
    --seeds N           sweep seeds 0..N                 [default: 64]
    --scenario S        grouping|kmeans                  [default: all]
    --emit-corpus DIR   write shrunk failing repros as corpus entries
    --replay DIR        replay corpus entries instead of sweeping
    --no-shrink         keep failing plans unshrunk (fastest sweep)
    --shards N          simulator shards for every run   [default: 1]

OPTIONS (bench):
    --compare PATH      baseline report (e.g. BENCH_baseline.json)
    --fail-over PCT     regression threshold, percent    [default: 10]
    --out PATH          also write the fresh report here
    --suite PREFIX      only run suites whose name starts with PREFIX
                        (e.g. sim/broadcast, live/)      [default: all]

OPTIONS (serve/submit — plus all plan/run world options):
    --workers N         worker threads per query         [default: 4]
    --queries N         concurrent queries to drive (serve only)
                                                         [default: 3]
    --max-concurrent N  admission-control limit          [default: 4]
    --mailbox-cap N     transport lane capacity          [default: 4096]
    --wall-deadline-ms N  per-query wall-clock budget    [default: none]
    --format F          verdict output, human|json (submit only)
                                                         [default: human]
    --durable           anchor ledgers/epochs in a WAL + checkpoint
    --wal-dir DIR       directory for the WAL (required with --durable)
    --checkpoint-every N  completions per checkpoint; 0 = never
                                                         [default: 8]
    --commit-window-ms N  group-commit coalescing window, ms; 0 = sync
                        each batch immediately           [default: 0]
    --segment-bytes N   WAL segment rotation threshold; 0 = one
                        unbounded segment          [default: 4194304]
    --crash-at POINT    abort at a scripted point for restart drills:
                        after-admit|mid-query|before-checkpoint
                        (requires --durable)

OPTIONS (multi-process deployment; addresses are uds:<path> | tcp:<host>:<port>):
    --listen ADDR       serve only: bind a daemon socket; epochs run on
                        remote worker processes when the fleet is full,
                        in-process otherwise
    --connect ADDR      submit: send the query to a daemon
                        worker: the daemon to serve
    --transport T       declared transport, uds|tcp; must match the
                        address scheme (E150 guard)
    --expected-workers N  worker processes per epoch (serve --listen)
                                                         [default: 2]
    --handshake-timeout-ms N  handshake deadline        [default: 10000]
    --net-fault-plan P  relay fault rules, e.g.
                        `drop,from=3;dup,extra-ms=1,after-s=0.5`
                        (see docs/NET.md)
    --backoff-initial-ms N  worker reconnect delay       [default: 50]
    --backoff-max-ms N      worker reconnect delay cap   [default: 2000]

Exit status is nonzero when the campaign found failing triples, a
replayed corpus entry's oracle verdict changed, a bench suite
regressed past --fail-over, or a live query missed its deadline or was
refused admission. See docs/FAULTS.md, docs/PERF.md, docs/RUNTIME.md.
";

/// Parses argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command> {
    let Some((sub, rest)) = argv.split_first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "experiments" => Ok(Command::Experiments),
        "dataset" => {
            let flags = collect_flags(rest)?;
            let rows = flag_parse(&flags, "rows", 100usize)?;
            let seed = flag_parse(&flags, "seed", 7u64)?;
            Ok(Command::Dataset { rows, seed })
        }
        "chaos" => {
            let flags = collect_flags(rest)?;
            let mut c = ChaosArgs {
                seeds: flag_parse(&flags, "seeds", 64u64)?,
                no_shrink: flags.contains_key("no-shrink"),
                shards: shards_flag(&flags)?,
                ..ChaosArgs::default()
            };
            if let Some(values) = flags.get("scenario") {
                let s = single(values, "scenario")?;
                if !["grouping", "kmeans"].contains(&s.as_str()) {
                    return Err(Error::InvalidConfig(format!(
                        "--scenario expects grouping|kmeans, got `{s}`"
                    )));
                }
                c.scenario = Some(s.clone());
            }
            if let Some(values) = flags.get("emit-corpus") {
                c.emit_corpus = Some(single(values, "emit-corpus")?.clone());
            }
            if let Some(values) = flags.get("replay") {
                c.replay = Some(single(values, "replay")?.clone());
            }
            Ok(Command::Chaos(c))
        }
        "bench" => {
            let flags = collect_flags(rest)?;
            let mut b = BenchArgs {
                fail_over: flag_parse(&flags, "fail-over", 10.0f64)?,
                ..BenchArgs::default()
            };
            if let Some(values) = flags.get("compare") {
                b.compare = Some(single(values, "compare")?.clone());
            }
            if let Some(values) = flags.get("out") {
                b.out = Some(single(values, "out")?.clone());
            }
            if let Some(values) = flags.get("suite") {
                b.suite = Some(single(values, "suite")?.clone());
            }
            Ok(Command::Bench(b))
        }
        "serve" | "submit" => {
            let flags = collect_flags(rest)?;
            let mut s = ServeArgs {
                query: query_args(&flags)?,
                workers: flag_parse(&flags, "workers", 4usize)?,
                queries: flag_parse(&flags, "queries", 3usize)?,
                max_concurrent: flag_parse(&flags, "max-concurrent", 4usize)?,
                mailbox_cap: flag_parse(&flags, "mailbox-cap", 4096usize)?,
                durable: flags.contains_key("durable"),
                checkpoint_every: flag_parse(&flags, "checkpoint-every", 8u64)?,
                commit_window_ms: flag_parse(&flags, "commit-window-ms", 0u64)?,
                segment_bytes: flag_parse(&flags, "segment-bytes", 4u64 << 20)?,
                ..ServeArgs::default()
            };
            if let Some(values) = flags.get("wal-dir") {
                s.wal_dir = Some(single(values, "wal-dir")?.clone());
            }
            if let Some(values) = flags.get("crash-at") {
                let p = single(values, "crash-at")?;
                if !["after-admit", "mid-query", "before-checkpoint"].contains(&p.as_str()) {
                    return Err(Error::InvalidConfig(format!(
                        "--crash-at expects after-admit|mid-query|before-checkpoint, got `{p}`"
                    )));
                }
                s.crash_at = Some(p.clone());
            }
            if let Some(values) = flags.get("wall-deadline-ms") {
                s.wall_deadline_ms = Some(parse_value(
                    single(values, "wall-deadline-ms")?,
                    "wall-deadline-ms",
                )?);
            }
            if let Some(values) = flags.get("format") {
                s.json = match single(values, "format")?.as_str() {
                    "json" => true,
                    "human" => false,
                    other => {
                        return Err(Error::InvalidConfig(format!(
                            "--format expects json|human, got `{other}`"
                        )))
                    }
                };
            }
            if let Some(values) = flags.get("listen") {
                s.listen = Some(single(values, "listen")?.clone());
            }
            if let Some(values) = flags.get("connect") {
                s.connect = Some(single(values, "connect")?.clone());
            }
            if let Some(values) = flags.get("transport") {
                let t = single(values, "transport")?;
                if !["uds", "tcp"].contains(&t.as_str()) {
                    return Err(Error::InvalidConfig(format!(
                        "--transport expects uds|tcp, got `{t}`"
                    )));
                }
                s.transport = Some(t.clone());
            }
            s.expected_workers = flag_parse(&flags, "expected-workers", 2usize)?;
            s.handshake_timeout_ms = flag_parse(&flags, "handshake-timeout-ms", 10_000u64)?;
            if let Some(values) = flags.get("net-fault-plan") {
                s.net_fault_plan = Some(single(values, "net-fault-plan")?.clone());
            }
            if sub == "serve" {
                if s.connect.is_some() {
                    return Err(Error::InvalidConfig(
                        "--connect is for `submit` and `worker`; a daemon listens (--listen)"
                            .into(),
                    ));
                }
            } else if s.listen.is_some() {
                return Err(Error::InvalidConfig(
                    "--listen is for `serve`; a client connects (--connect)".into(),
                ));
            }
            if sub == "serve" {
                Ok(Command::Serve(s))
            } else {
                Ok(Command::Submit(s))
            }
        }
        "worker" => {
            let flags = collect_flags(rest)?;
            let connect = flags
                .get("connect")
                .map(|v| single(v, "connect").cloned())
                .transpose()?
                .ok_or_else(|| Error::InvalidConfig("worker requires --connect <addr>".into()))?;
            let backoff_initial_ms = flags
                .get("backoff-initial-ms")
                .map(|v| parse_value(single(v, "backoff-initial-ms")?, "backoff-initial-ms"))
                .transpose()?;
            let backoff_max_ms = flags
                .get("backoff-max-ms")
                .map(|v| parse_value(single(v, "backoff-max-ms")?, "backoff-max-ms"))
                .transpose()?;
            Ok(Command::Worker(WorkerArgs {
                connect,
                backoff_initial_ms,
                backoff_max_ms,
            }))
        }
        "plan" | "run" | "analyze" => {
            let flags = collect_flags(rest)?;
            let q = query_args(&flags)?;
            match sub.as_str() {
                "plan" => Ok(Command::Plan(q)),
                "run" => Ok(Command::Run(q)),
                _ => {
                    let json = match flags.get("format") {
                        None => false,
                        Some(values) => match single(values, "format")?.as_str() {
                            "json" => true,
                            "human" => false,
                            other => {
                                return Err(Error::InvalidConfig(format!(
                                    "--format expects json|human, got `{other}`"
                                )))
                            }
                        },
                    };
                    let concurrency = !flags.contains_key("no-concurrency");
                    let workspace_root = flags
                        .get("workspace-root")
                        .map(|v| single(v, "workspace-root").cloned())
                        .transpose()?
                        .unwrap_or_else(|| ".".to_string());
                    Ok(Command::Analyze {
                        query: q,
                        json,
                        concurrency,
                        workspace_root,
                    })
                }
            }
        }
        other => Err(Error::InvalidConfig(format!(
            "unknown subcommand `{other}` (try `edgelet help`)"
        ))),
    }
}

/// Builds [`QueryArgs`] from the collected `plan`/`run`/`analyze` flags.
fn query_args(flags: &BTreeMap<String, Vec<String>>) -> Result<QueryArgs> {
    let mut q = QueryArgs {
        seed: flag_parse(flags, "seed", 7u64)?,
        contributors: flag_parse(flags, "contributors", 2_000usize)?,
        processors: flag_parse(flags, "processors", 150usize)?,
        cardinality: flag_parse(flags, "cardinality", 300usize)?,
        failure_p: flag_parse(flags, "failure-p", 0.1f64)?,
        crash_p: flag_parse(flags, "crash-p", 0.0f64)?,
        shards: shards_flag(flags)?,
        ..QueryArgs::default()
    };
    if let Some(values) = flags.get("cap") {
        let raw = single(values, "cap")?;
        q.cap = if raw == "none" {
            None
        } else {
            Some(parse_value(raw, "cap")?)
        };
    }
    if let Some(values) = flags.get("strategy") {
        let s = single(values, "strategy")?;
        if !["overcollection", "backup", "naive"].contains(&s.as_str()) {
            return Err(Error::InvalidConfig(format!("unknown strategy `{s}`")));
        }
        q.strategy = s.clone();
    }
    if let Some(values) = flags.get("network") {
        q.network = single(values, "network")?.clone();
    }
    if let Some(values) = flags.get("separate") {
        for v in values {
            let (a, b) = v.split_once(':').ok_or_else(|| {
                Error::InvalidConfig(format!("--separate expects a:b, got `{v}`"))
            })?;
            q.separate.push((a.to_string(), b.to_string()));
        }
    }
    if let Some(values) = flags.get("kmeans") {
        let v = single(values, "kmeans")?;
        let (k, h) = v
            .split_once(',')
            .ok_or_else(|| Error::InvalidConfig(format!("--kmeans expects K,H, got `{v}`")))?;
        q.kmeans = Some((parse_value(k, "kmeans K")?, parse_value(h, "kmeans H")?));
    }
    q.dot = flags.contains_key("dot");
    Ok(q)
}

/// Collects `--flag value` and bare `--flag` pairs; flags may repeat.
fn collect_flags(args: &[String]) -> Result<BTreeMap<String, Vec<String>>> {
    const BARE: &[&str] = &[
        "dot",
        "no-shrink",
        "concurrency",
        "no-concurrency",
        "durable",
    ];
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(Error::InvalidConfig(format!(
                "expected a --flag, got `{arg}`"
            )));
        };
        if BARE.contains(&name) {
            out.entry(name.to_string()).or_default();
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(Error::InvalidConfig(format!("--{name} needs a value")));
        };
        out.entry(name.to_string()).or_default().push(value.clone());
        i += 2;
    }
    Ok(out)
}

fn single<'a>(values: &'a [String], name: &str) -> Result<&'a String> {
    match values {
        [one] => Ok(one),
        _ => Err(Error::InvalidConfig(format!(
            "--{name} given {} times, expected once",
            values.len()
        ))),
    }
}

/// Parses `--shards` (shared by `plan`/`run`/`analyze`/`chaos`),
/// rejecting 0 — the engine treats 0 as 1, but the CLI insists on an
/// honest value.
fn shards_flag(flags: &BTreeMap<String, Vec<String>>) -> Result<usize> {
    let shards = flag_parse(flags, "shards", 1usize)?;
    if shards == 0 {
        return Err(Error::InvalidConfig(
            "--shards must be at least 1".to_string(),
        ));
    }
    Ok(shards)
}

fn parse_value<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T> {
    raw.parse()
        .map_err(|_| Error::InvalidConfig(format!("cannot parse `{raw}` for {what}")))
}

fn flag_parse<T: std::str::FromStr + Copy>(
    flags: &BTreeMap<String, Vec<String>>,
    name: &str,
    default: T,
) -> Result<T> {
    match flags.get(name) {
        None => Ok(default),
        Some(values) => parse_value(single(values, name)?, name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("experiments")).unwrap(), Command::Experiments);
    }

    #[test]
    fn plan_with_options() {
        let cmd = parse(&argv(
            "plan --cardinality 500 --cap 100 --separate bmi:systolic_bp \
             --separate age:region --strategy backup --dot",
        ))
        .unwrap();
        let Command::Plan(q) = cmd else { panic!() };
        assert_eq!(q.cardinality, 500);
        assert_eq!(q.cap, Some(100));
        assert_eq!(q.separate.len(), 2);
        assert_eq!(q.separate[0], ("bmi".into(), "systolic_bp".into()));
        assert_eq!(q.strategy, "backup");
        assert!(q.dot);
    }

    #[test]
    fn run_with_kmeans_and_network() {
        let cmd = parse(&argv(
            "run --kmeans 3,6 --network oppnet:600,0.05 --crash-p 0.2 --cap none",
        ))
        .unwrap();
        let Command::Run(q) = cmd else { panic!() };
        assert_eq!(q.kmeans, Some((3, 6)));
        assert_eq!(q.network, "oppnet:600,0.05");
        assert_eq!(q.crash_p, 0.2);
        assert_eq!(q.cap, None);
        assert_eq!(q.shards, 1);
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        let Command::Run(q) = parse(&argv("run --shards 4")).unwrap() else {
            panic!()
        };
        assert_eq!(q.shards, 4);
        let Command::Chaos(c) = parse(&argv("chaos --shards 2")).unwrap() else {
            panic!()
        };
        assert_eq!(c.shards, 2);
        assert!(parse(&argv("run --shards 0")).is_err());
        assert!(parse(&argv("chaos --shards 0")).is_err());
    }

    #[test]
    fn bench_args() {
        let cmd = parse(&argv("bench")).unwrap();
        assert_eq!(cmd, Command::Bench(BenchArgs::default()));
        let cmd = parse(&argv(
            "bench --compare BENCH_baseline.json --fail-over 5 --out BENCH_current.json",
        ))
        .unwrap();
        let Command::Bench(b) = cmd else { panic!() };
        assert_eq!(b.compare.as_deref(), Some("BENCH_baseline.json"));
        assert_eq!(b.fail_over, 5.0);
        assert_eq!(b.out.as_deref(), Some("BENCH_current.json"));
        assert_eq!(b.suite, None);
        let Command::Bench(b) = parse(&argv("bench --suite sim/broadcast")).unwrap() else {
            panic!()
        };
        assert_eq!(b.suite.as_deref(), Some("sim/broadcast"));
        assert!(parse(&argv("bench --fail-over lots")).is_err());
    }

    #[test]
    fn analyze_with_format() {
        let cmd = parse(&argv("analyze --cardinality 500 --format json")).unwrap();
        let Command::Analyze {
            query,
            json,
            concurrency,
            workspace_root,
        } = cmd
        else {
            panic!()
        };
        assert_eq!(query.cardinality, 500);
        assert!(json);
        assert!(concurrency);
        assert_eq!(workspace_root, ".");
        let cmd = parse(&argv("analyze")).unwrap();
        let Command::Analyze { json, .. } = cmd else {
            panic!()
        };
        assert!(!json);
        assert!(parse(&argv("analyze --format yaml")).is_err());
    }

    #[test]
    fn analyze_source_pass_flags() {
        let cmd = parse(&argv("analyze --no-concurrency --workspace-root /tmp/ws")).unwrap();
        let Command::Analyze {
            concurrency,
            workspace_root,
            ..
        } = cmd
        else {
            panic!()
        };
        assert!(!concurrency);
        assert_eq!(workspace_root, "/tmp/ws");
    }

    #[test]
    fn dataset_args() {
        let cmd = parse(&argv("dataset --rows 50 --seed 9")).unwrap();
        assert_eq!(cmd, Command::Dataset { rows: 50, seed: 9 });
    }

    #[test]
    fn chaos_args() {
        let cmd = parse(&argv("chaos")).unwrap();
        assert_eq!(cmd, Command::Chaos(ChaosArgs::default()));
        let cmd = parse(&argv(
            "chaos --seeds 16 --scenario kmeans --no-shrink --emit-corpus out/",
        ))
        .unwrap();
        let Command::Chaos(c) = cmd else { panic!() };
        assert_eq!(c.seeds, 16);
        assert_eq!(c.scenario.as_deref(), Some("kmeans"));
        assert_eq!(c.emit_corpus.as_deref(), Some("out/"));
        assert!(c.no_shrink);
        let cmd = parse(&argv("chaos --replay tests/chaos_corpus")).unwrap();
        let Command::Chaos(c) = cmd else { panic!() };
        assert_eq!(c.replay.as_deref(), Some("tests/chaos_corpus"));
        assert!(parse(&argv("chaos --scenario warp")).is_err());
        assert!(parse(&argv("chaos --seeds abc")).is_err());
    }

    #[test]
    fn serve_and_submit_args() {
        let cmd = parse(&argv("serve")).unwrap();
        assert_eq!(cmd, Command::Serve(ServeArgs::default()));
        let cmd = parse(&argv(
            "serve --queries 5 --workers 2 --max-concurrent 3 --mailbox-cap 128 \
             --contributors 600 --network reliable",
        ))
        .unwrap();
        let Command::Serve(s) = cmd else { panic!() };
        assert_eq!(s.queries, 5);
        assert_eq!(s.workers, 2);
        assert_eq!(s.max_concurrent, 3);
        assert_eq!(s.mailbox_cap, 128);
        assert_eq!(s.query.contributors, 600);
        let cmd = parse(&argv("submit --wall-deadline-ms 5000 --format json")).unwrap();
        let Command::Submit(s) = cmd else { panic!() };
        assert_eq!(s.wall_deadline_ms, Some(5000));
        assert!(s.json);
        assert!(parse(&argv("submit --format yaml")).is_err());
        // workers=0 parses; the E120 preflight rejects it at execution.
        let Command::Serve(s) = parse(&argv("serve --workers 0")).unwrap() else {
            panic!()
        };
        assert_eq!(s.workers, 0);
    }

    #[test]
    fn durability_args() {
        let Command::Submit(s) = parse(&argv("submit")).unwrap() else {
            panic!()
        };
        assert!(!s.durable && s.wal_dir.is_none() && s.crash_at.is_none());
        assert_eq!(s.checkpoint_every, 8);
        let Command::Submit(s) = parse(&argv(
            "submit --durable --wal-dir /tmp/wal --checkpoint-every 2 --crash-at mid-query",
        ))
        .unwrap() else {
            panic!()
        };
        assert!(s.durable);
        assert_eq!(s.wal_dir.as_deref(), Some("/tmp/wal"));
        assert_eq!(s.checkpoint_every, 2);
        assert_eq!(s.crash_at.as_deref(), Some("mid-query"));
        assert!(parse(&argv("submit --crash-at later")).is_err());
        // --crash-at without --durable parses; execution rejects it.
        let Command::Serve(s) = parse(&argv("serve --crash-at after-admit")).unwrap() else {
            panic!()
        };
        assert!(!s.durable && s.crash_at.is_some());
    }

    #[test]
    fn net_args() {
        // serve --listen with the daemon knobs.
        let Command::Serve(s) = parse(&argv(
            "serve --listen uds:/tmp/edgelet.sock --expected-workers 3 \
             --handshake-timeout-ms 500 --transport uds --net-fault-plan drop,from=3",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.listen.as_deref(), Some("uds:/tmp/edgelet.sock"));
        assert_eq!(s.expected_workers, 3);
        assert_eq!(s.handshake_timeout_ms, 500);
        assert_eq!(s.transport.as_deref(), Some("uds"));
        assert_eq!(s.net_fault_plan.as_deref(), Some("drop,from=3"));
        // submit --connect as a socket client.
        let Command::Submit(s) = parse(&argv("submit --connect tcp:127.0.0.1:7000")).unwrap()
        else {
            panic!()
        };
        assert_eq!(s.connect.as_deref(), Some("tcp:127.0.0.1:7000"));
        // Defaults stay compatible with the in-process mode.
        let Command::Serve(s) = parse(&argv("serve")).unwrap() else {
            panic!()
        };
        assert!(s.listen.is_none() && s.connect.is_none());
        assert_eq!(s.expected_workers, 2);
        // The wrong-direction flags are rejected at parse time.
        assert!(parse(&argv("serve --connect uds:/tmp/a.sock")).is_err());
        assert!(parse(&argv("submit --listen uds:/tmp/a.sock")).is_err());
        assert!(parse(&argv("serve --transport carrier-pigeon")).is_err());
    }

    #[test]
    fn worker_args() {
        let Command::Worker(w) = parse(&argv("worker --connect uds:/tmp/edgelet.sock")).unwrap()
        else {
            panic!()
        };
        assert_eq!(w.connect, "uds:/tmp/edgelet.sock");
        assert!(w.backoff_initial_ms.is_none() && w.backoff_max_ms.is_none());
        let Command::Worker(w) = parse(&argv(
            "worker --connect tcp:10.0.0.2:7000 --backoff-initial-ms 20 --backoff-max-ms 400",
        ))
        .unwrap() else {
            panic!()
        };
        assert_eq!(w.backoff_initial_ms, Some(20));
        assert_eq!(w.backoff_max_ms, Some(400));
        assert!(parse(&argv("worker")).is_err());
        assert!(parse(&argv("worker --connect a --backoff-max-ms soon")).is_err());
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("plan --cap")).is_err());
        assert!(parse(&argv("plan cap 5")).is_err());
        assert!(parse(&argv("plan --strategy wat")).is_err());
        assert!(parse(&argv("plan --separate nope")).is_err());
        assert!(parse(&argv("run --kmeans 3")).is_err());
        assert!(parse(&argv("plan --cardinality abc")).is_err());
        assert!(parse(&argv("plan --seed 1 --seed 2")).is_err());
    }
}
