//! Command execution for the `edgelet` tool.

use crate::args::{BenchArgs, ChaosArgs, Command, QueryArgs, ServeArgs, USAGE};
use edgelet_core::prelude::*;
use edgelet_core::query::{estimate, QueryPlan};
use edgelet_core::store::{csv, synth};
use edgelet_core::util::rng::DetRng;
use edgelet_core::util::{Error, Result};
use std::fmt::Write as _;

/// Executes one parsed command, returning the output text.
pub fn execute(cmd: Command) -> Result<String> {
    execute_with_status(cmd).map(|(text, _)| text)
}

/// Executes one parsed command, returning the output text and the process
/// exit status the tool should use: nonzero when `analyze` found
/// `Error`-severity diagnostics, zero otherwise.
pub fn execute_with_status(cmd: Command) -> Result<(String, i32)> {
    if let Command::Analyze {
        query,
        json,
        concurrency,
        workspace_root,
    } = cmd
    {
        return analyze_command(&query, json, concurrency, &workspace_root);
    }
    if let Command::Chaos(args) = cmd {
        return chaos_command(&args);
    }
    if let Command::Bench(args) = cmd {
        return bench_command(&args);
    }
    if let Command::Serve(args) = cmd {
        // `--listen` switches to daemon mode: same service, plus a
        // socket front-end for remote workers and submissions.
        if args.listen.is_some() {
            return crate::net::serve_listen(&args);
        }
        return serve_command(&args);
    }
    if let Command::Submit(args) = cmd {
        // `--connect` sends the query to a daemon instead of running
        // it in-process.
        if args.connect.is_some() {
            return crate::net::submit_connect(&args);
        }
        return submit_command(&args);
    }
    if let Command::Worker(args) = cmd {
        return crate::net::worker_command(&args);
    }
    let text = match cmd {
        Command::Analyze { .. }
        | Command::Chaos(_)
        | Command::Bench(_)
        | Command::Serve(_)
        | Command::Submit(_)
        | Command::Worker(_) => {
            unreachable!("handled above")
        }
        Command::Help => USAGE.to_string(),
        Command::Experiments => experiments_text(),
        Command::Dataset { rows, seed } => {
            let mut rng = DetRng::new(seed);
            let store = synth::health_store(rows, &mut rng);
            csv::to_csv(&store)
        }
        Command::Plan(q) => {
            let (platform, spec, privacy, resilience) = build_world(&q)?;
            let plan = platform.plan_query(&spec, &privacy, &resilience)?;
            let mut out = String::new();
            if q.dot {
                out.push_str(&platform.render_plan_dot(&plan));
            } else {
                out.push_str(&platform.render_plan(&plan));
                let cost = estimate(&plan);
                let _ = writeln!(
                    out,
                    "predicted cost: <= {} messages ({} contribution round trips)",
                    cost.total_messages_max(),
                    cost.contribute_requests
                );
                for w in &plan.warnings {
                    let _ = writeln!(out, "warning: {w}");
                }
            }
            out
        }
        Command::Run(q) => {
            let (mut platform, spec, privacy, resilience) = build_world(&q)?;
            let run = platform.run_query(&spec, &privacy, &resilience)?;
            render_run(&run.plan, &run.report)
        }
    };
    Ok((text, 0))
}

/// `edgelet analyze`: plans the configured query and runs every semantic
/// pass over the result, then the source layers (lint + concurrency +
/// suppression audit) over the workspace named by `--workspace-root`.
/// Planner failures surface as an `E000` diagnostic rather than a hard
/// error, so the output shape is uniform.
fn analyze_command(
    q: &QueryArgs,
    json: bool,
    concurrency: bool,
    workspace_root: &str,
) -> Result<(String, i32)> {
    use edgelet_analyze::{analyze, AnalyzeOptions, Diagnostic};

    let (platform, spec, privacy, resilience) = build_world(q)?;
    let mut diagnostics = match platform.plan_query(&spec, &privacy, &resilience) {
        Ok(plan) => analyze(&plan, &privacy, &resilience, &AnalyzeOptions::default()),
        Err(e) => vec![Diagnostic::error(
            edgelet_analyze::diagnostic::codes::PLANNING_FAILED,
            "planner",
            format!("no plan satisfies this configuration: {e}"),
        )
        .with_help("relax the cap, deadline, or resiliency target, or enroll more processors")],
    };
    // Simulator-configuration checks (W110): a zero minimum latency
    // empties the sharded engine's lookahead window.
    let min_latency_us = parse_network(&q.network)?
        .to_model()
        .min_latency()
        .as_micros();
    diagnostics.extend(edgelet_analyze::check_sim_config(min_latency_us, q.shards));
    // Source layers: only meaningful when the root actually holds a
    // workspace to scan (running from an arbitrary cwd skips them).
    let root = std::path::Path::new(workspace_root);
    if root.join("crates").is_dir() {
        diagnostics.extend(edgelet_analyze::analyze_sources_with(
            root,
            edgelet_analyze::SourcePassOptions { concurrency },
        ));
    }
    edgelet_analyze::sort_diagnostics(&mut diagnostics);
    let text = if json {
        edgelet_analyze::render_json(&diagnostics)
    } else {
        edgelet_analyze::render_human(&diagnostics)
    };
    let status = i32::from(edgelet_analyze::has_errors(&diagnostics));
    Ok((text, status))
}

/// `edgelet chaos`: replays a corpus directory, or sweeps seeds × fault
/// plans through the trace oracles and reports failing triples.
fn chaos_command(args: &ChaosArgs) -> Result<(String, i32)> {
    use edgelet_chaos::{
        catalog, load_dir, run_campaign, CampaignConfig, ChaosScenario, FaultPlan,
    };

    let scenarios: Vec<ChaosScenario> = match &args.scenario {
        None => ChaosScenario::ALL.to_vec(),
        Some(name) => vec![ChaosScenario::from_name(name)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown chaos scenario `{name}`")))?],
    };
    let mut out = String::new();

    // Replay mode: re-run every shipped repro and diff the oracle verdict.
    if let Some(dir) = &args.replay {
        let entries = load_dir(std::path::Path::new(dir))?;
        if entries.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "no *.chaos entries under `{dir}`"
            )));
        }
        let mut mismatches = 0usize;
        for (name, entry) in &entries {
            let report = entry.replay_with_shards(args.shards)?;
            if report.matches {
                let _ = writeln!(
                    out,
                    "OK       {name} (digest {:#018x})",
                    report.trace_digest
                );
            } else {
                mismatches += 1;
                let _ = writeln!(
                    out,
                    "MISMATCH {name}: expected [{}], got [{}]",
                    entry.expect.join(","),
                    report.oracles.join(",")
                );
            }
        }
        let _ = writeln!(
            out,
            "corpus replay: {} entries, {mismatches} mismatching",
            entries.len()
        );
        return Ok((out, i32::from(mismatches > 0)));
    }

    // Pre-flight: lint the seed-0 plan catalog. A rule that cannot fire
    // silently tests nothing, so an infeasible plan fails the sweep
    // before any seed is spent.
    let mut lint = Vec::new();
    for &scenario in &scenarios {
        let session = scenario.open(0, FaultPlan::new());
        let (devices, deadline) = (session.device_count(), session.deadline_secs());
        for named in catalog(scenario, 0)? {
            for mut d in edgelet_analyze::check_fault_plan(&named.plan, devices, deadline) {
                d.location = format!("{}::{}: {}", scenario.name(), named.name, d.location);
                lint.push(d);
            }
        }
    }
    if !lint.is_empty() {
        out.push_str(&edgelet_analyze::render_human(&lint));
        if edgelet_analyze::has_errors(&lint) {
            return Ok((out, 1));
        }
    }

    let report = run_campaign(&CampaignConfig {
        seeds: args.seeds,
        scenarios,
        shrink: !args.no_shrink,
        shards: args.shards,
    })?;
    out.push_str(&report.summary());

    if let Some(dir) = &args.emit_corpus {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::InvalidConfig(format!("cannot create {}: {e}", dir.display())))?;
        for f in &report.failures {
            let path = dir.join(format!(
                "{}-seed{}-{}.chaos",
                f.scenario, f.seed, f.plan_name
            ));
            std::fs::write(&path, f.to_corpus_entry().to_text()).map_err(|e| {
                Error::InvalidConfig(format!("cannot write {}: {e}", path.display()))
            })?;
        }
        let _ = writeln!(
            out,
            "wrote {} corpus entries to {}",
            report.failures.len(),
            dir.display()
        );
    }
    Ok((out, i32::from(!report.failures.is_empty())))
}

/// `edgelet bench`: measures every suite (or the `--suite` prefix
/// selection) and, with `--compare`, gates on a committed baseline
/// report.
fn bench_command(args: &BenchArgs) -> Result<(String, i32)> {
    use edgelet_bench::report;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench: median of {} samples per suite, rev {}, {} logical cpus",
        report::SAMPLES,
        report::git_revision(),
        report::available_parallelism()
    );
    if report::low_parallelism() {
        eprintln!(
            "bench: note: only {} logical cpu(s) < {}; parallel suites cannot run at \
             their nominal width and the report is flagged low_parallelism",
            report::available_parallelism(),
            report::LOW_PARALLELISM_CPUS
        );
    }
    let results = match &args.suite {
        Some(prefix) => {
            let selected = report::run_matching(prefix);
            if selected.is_empty() {
                let known: Vec<&str> = report::suites().iter().map(|s| s.name).collect();
                return Err(Error::InvalidConfig(format!(
                    "--suite {prefix} matches no suite; known suites: {}",
                    known.join(", ")
                )));
            }
            selected
        }
        None => report::run_all(),
    };
    for r in &results {
        let _ = writeln!(
            out,
            "{:<52} median {:>14.1} ns  shards {}  workers {}  {} {:.1}",
            r.name, r.median_ns, r.shards, r.workers, r.throughput.0, r.throughput.1
        );
    }
    if let Some(path) = &args.out {
        std::fs::write(path, report::to_json(&results))
            .map_err(|e| Error::InvalidConfig(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    }
    let mut status = 0;
    if let Some(path) = &args.compare {
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| Error::InvalidConfig(format!("cannot read {path}: {e}")))?;
        let regressions = report::compare(&results, &baseline, args.fail_over);
        if baseline.contains("\"low_parallelism\": true") || report::low_parallelism() {
            let _ = writeln!(
                out,
                "bench gate note: low-parallelism run (baseline flagged: {}, this machine: {}) \
                 -- parallel-suite deltas under-report",
                baseline.contains("\"low_parallelism\": true"),
                report::low_parallelism()
            );
        }
        for reg in &regressions {
            let _ = writeln!(
                out,
                "REGRESSION {}: {:.1} ns -> {:.1} ns ({:+.1}% > {:.1}% threshold)",
                reg.suite, reg.baseline_ns, reg.current_ns, reg.delta_pct, args.fail_over
            );
        }
        let _ = writeln!(
            out,
            "bench gate vs {path}: {} suites compared, {} regressing",
            results.len(),
            regressions.len()
        );
        status = i32::from(!regressions.is_empty());
    }
    Ok((out, status))
}

/// `edgelet serve`: self-driving live-runtime demo. Builds one world,
/// starts an admission-controlled [`edgelet_live::QueryService`] over
/// it, drives `--queries` concurrent submissions from as many threads,
/// then drains gracefully. Exits nonzero if any query misses.
fn serve_command(args: &ServeArgs) -> Result<(String, i32)> {
    use edgelet_live::SubmitError;

    let mut preamble = String::new();
    if let Some(verdict) = live_preflight(args, false, &mut preamble) {
        return Ok(verdict);
    }
    let (service, spec, privacy, resilience, recovery) = live_service(args)?;
    if let Some(line) = recovery.as_ref().and_then(recovery_line) {
        preamble.push_str(&line);
    }
    let wall = args.wall_deadline_ms.map(std::time::Duration::from_millis);
    let mut results: Vec<(
        usize,
        std::result::Result<edgelet_live::SubmitOutcome, SubmitError>,
    )> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.queries)
            .map(|i| {
                let (service, spec, privacy, resilience) = (&service, &spec, &privacy, &resilience);
                scope.spawn(move || loop {
                    match service.submit(spec, privacy, resilience, wall) {
                        // The gate is full: this demo re-queues
                        // instead of failing, so every query runs.
                        Err(SubmitError::AtCapacity { .. }) => std::thread::yield_now(),
                        other => return (i, other),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    results.sort_by_key(|(i, _)| *i);

    let mut out = preamble;
    let mut failed = 0usize;
    for (i, result) in &results {
        match result {
            Ok(o) => {
                let ok = o.succeeded();
                failed += usize::from(!ok);
                let _ = writeln!(
                    out,
                    "query {i}: epoch={} {} completed={} valid={} t={}s",
                    o.epoch,
                    if ok { "ok" } else { "MISS" },
                    o.run.report.completed,
                    o.run.report.valid,
                    o.run
                        .report
                        .completion_secs
                        .map(|t| format!("{t:.2}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            Err(e) => {
                failed += 1;
                let _ = writeln!(out, "query {i}: FAILED {e}");
            }
        }
    }
    let rejected = service.transport().rejected_unknown_epoch();
    service.shutdown();
    let _ = writeln!(
        out,
        "serve: {} queries over {} workers (max {} concurrent), {failed} failed, \
         {rejected} cross-epoch envelopes rejected; shut down cleanly",
        args.queries, args.workers, args.max_concurrent
    );
    Ok((out, i32::from(failed > 0)))
}

/// `edgelet submit`: one query through the live runtime, with a
/// human or JSON verdict. Exits nonzero when the query misses its
/// deadline, is cut off by `--wall-deadline-ms`, or is refused
/// admission.
fn submit_command(args: &ServeArgs) -> Result<(String, i32)> {
    use edgelet_live::SubmitError;

    let mut preamble = String::new();
    if let Some(verdict) = live_preflight(args, args.json, &mut preamble) {
        return Ok(verdict);
    }
    let (service, spec, privacy, resilience, recovery) = live_service(args)?;
    if !args.json {
        if let Some(line) = recovery.as_ref().and_then(recovery_line) {
            preamble.push_str(&line);
        }
    }
    let wall = args.wall_deadline_ms.map(std::time::Duration::from_millis);
    let outcome = service.submit(&spec, &privacy, &resilience, wall);
    let (out, status) = match &outcome {
        Ok(o) => {
            let r = &o.run.report;
            let text = if args.json {
                // Durable runs carry their recovery provenance and a
                // state CRC so restart drills can diff verdicts.
                let durable_fields = if args.durable {
                    format!(
                        ",\"recovered\":{},\"state_crc\":{}",
                        o.recovered,
                        edgelet_live::state_crc(&o.run)
                    )
                } else {
                    String::new()
                };
                format!(
                    "{{\"verdict\":\"{}\",\"epoch\":{},\"completed\":{},\"valid\":{},\
                     \"wall_aborted\":{},\"completion_secs\":{},\"messages_sent\":{},\
                     \"bytes_sent\":{},\"workers\":{}{durable_fields}}}\n",
                    if o.succeeded() { "ok" } else { "miss" },
                    o.epoch,
                    r.completed,
                    r.valid,
                    o.wall_aborted,
                    r.completion_secs
                        .map(|t| format!("{t}"))
                        .unwrap_or_else(|| "null".into()),
                    r.messages_sent,
                    r.bytes_sent,
                    args.workers,
                )
            } else {
                let mut text = render_run(&o.run.plan, &o.run.report);
                let _ = writeln!(
                    text,
                    "live: epoch {} over {} workers, verdict {}{}",
                    o.epoch,
                    args.workers,
                    if o.succeeded() { "ok" } else { "miss" },
                    if o.recovered {
                        " (recovered intent, original epoch)"
                    } else {
                        ""
                    },
                );
                text
            };
            (text, i32::from(!o.succeeded()))
        }
        Err(SubmitError::Failed(e)) => {
            return Err(Error::InvalidConfig(format!("live query failed: {e}")))
        }
        Err(SubmitError::ShuttingDown) => {
            // A graceful drain in progress: distinct from read-only so
            // a client knows to retry elsewhere rather than give up on
            // this daemon's durable state.
            let text = if args.json {
                "{\"verdict\":\"rejected_draining\",\"reason\":\"service shutting down\"}\n"
                    .to_string()
            } else {
                "rejected (draining): service shutting down\n".to_string()
            };
            (text, 1)
        }
        Err(SubmitError::ReadOnly { reason }) => {
            // Drained mode: a distinct verdict so operators (and the
            // restart-smoke CI job) can tell "media is read-only" from
            // a capacity rejection. See docs/RUNTIME.md.
            let text = if args.json {
                format!("{{\"verdict\":\"rejected_readonly\",\"reason\":\"{reason}\"}}\n")
            } else {
                format!("rejected (read-only): {reason}\n")
            };
            (text, 1)
        }
        Err(e) => {
            let text = if args.json {
                format!("{{\"verdict\":\"rejected\",\"reason\":\"{e}\"}}\n")
            } else {
                format!("rejected: {e}\n")
            };
            (text, 1)
        }
    };
    service.shutdown();
    Ok((format!("{preamble}{out}"), status))
}

/// `E120`/`W121` plus `E140`/`W141`/`W142` preflight shared by `serve`
/// and `submit`: lints the live-runtime and durable-storage knobs
/// before any thread spawns. Error-severity diagnostics terminate with
/// a nonzero status; warnings render into `preamble` and the run
/// proceeds.
pub(crate) fn live_preflight(
    args: &ServeArgs,
    json: bool,
    preamble: &mut String,
) -> Option<(String, i32)> {
    let mut lint =
        edgelet_analyze::check_live_config(args.workers, args.wall_deadline_ms, args.mailbox_cap);
    let crash_risk = args.query.crash_p > 0.0 || args.crash_at.is_some();
    lint.extend(edgelet_analyze::check_storage_config(
        args.durable,
        args.wal_dir.as_deref().map(std::path::Path::new),
        args.checkpoint_every,
        crash_risk,
        args.commit_window_ms,
        args.wall_deadline_ms,
        args.segment_bytes,
    ));
    if lint.is_empty() {
        return None;
    }
    let text = if json {
        edgelet_analyze::render_json(&lint)
    } else {
        edgelet_analyze::render_human(&lint)
    };
    if edgelet_analyze::has_errors(&lint) {
        return Some((text, 1));
    }
    preamble.push_str(&text);
    None
}

/// Builds the live service `serve`/`submit` share: the same world
/// construction as `run`, handed to a [`edgelet_live::QueryService`] —
/// volatile by default, WAL-anchored with `--durable` (in which case
/// the recovery report of the startup replay is returned too).
pub(crate) fn live_service(
    args: &ServeArgs,
) -> Result<(
    edgelet_live::QueryService,
    QuerySpec,
    PrivacyConfig,
    ResilienceConfig,
    Option<edgelet_live::RecoveryReport>,
)> {
    let (platform, spec, privacy, resilience) = build_world(&args.query)?;
    let config = edgelet_live::ServiceConfig {
        workers: args.workers,
        max_concurrent: args.max_concurrent,
        mailbox_capacity: args.mailbox_cap,
    };
    if !args.durable {
        if args.crash_at.is_some() {
            return Err(Error::InvalidConfig(
                "--crash-at requires --durable: a volatile service cannot \
                 recover what the scripted crash destroys"
                    .into(),
            ));
        }
        let service = edgelet_live::QueryService::new(platform, config);
        return Ok((service, spec, privacy, resilience, None));
    }
    let dir = args.wal_dir.as_ref().ok_or_else(|| {
        Error::InvalidConfig("--durable requires --wal-dir <dir> (see docs/STORAGE.md)".into())
    })?;
    let backend = edgelet_core::store::FileBackend::open(dir)
        .map_err(|e| Error::InvalidConfig(format!("cannot open WAL directory: {}", e.message())))?;
    let crash_at = match &args.crash_at {
        None => None,
        Some(name) => Some(
            edgelet_live::CrashPoint::parse(name)
                .ok_or_else(|| Error::InvalidConfig(format!("unknown crash point `{name}`")))?,
        ),
    };
    // The scripted crash is a *process* death, not a Rust panic: abort
    // so restart drills observe the same thing a power cut produces.
    let crash_handler: Option<edgelet_live::CrashHandler> = crash_at
        .map(|_| std::sync::Arc::new(|_point| std::process::abort()) as edgelet_live::CrashHandler);
    let (service, report) = edgelet_live::QueryService::with_durability(
        platform,
        config,
        std::sync::Arc::new(backend),
        edgelet_live::DurabilityConfig {
            checkpoint_every: args.checkpoint_every,
            commit_window: std::time::Duration::from_millis(args.commit_window_ms),
            segment_bytes: args.segment_bytes,
            crash_at,
            crash_handler,
        },
    );
    Ok((service, spec, privacy, resilience, Some(report)))
}

/// Renders a one-line summary of what startup recovery found, for the
/// human-facing preamble of a durable `serve`/`submit`.
fn recovery_line(report: &edgelet_live::RecoveryReport) -> Option<String> {
    if report.drained.is_some() || !report.recovered_anything() {
        return None;
    }
    Some(format!(
        "durable: recovered checkpoint={} wal_records={} repaired_tail={} pending_intents={}\n",
        report.checkpoint_loaded,
        report.records_replayed,
        report.repaired_tail.is_some(),
        report.pending.len(),
    ))
}

pub(crate) fn build_world(
    q: &QueryArgs,
) -> Result<(Platform, QuerySpec, PrivacyConfig, ResilienceConfig)> {
    let network = parse_network(&q.network)?;
    let mut platform = Platform::build(PlatformConfig {
        seed: q.seed,
        contributors: q.contributors,
        processors: q.processors,
        network,
        processor_crash_probability: q.crash_p,
        crash_at_start: q.crash_p > 0.0,
        shards: q.shards,
        ..PlatformConfig::default()
    });

    let spec = match q.kmeans {
        None => platform.grouping_query(
            Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            q.cardinality,
            &[&["sex"], &["gir"], &[]],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggKind::Avg, "bmi"),
                AggSpec::over(AggKind::Avg, "systolic_bp"),
            ],
        ),
        Some((k, heartbeats)) => platform.kmeans_query(
            Predicate::cmp("age", CmpOp::Gt, Value::Int(65)),
            q.cardinality,
            k,
            &["age", "bmi", "systolic_bp"],
            heartbeats,
            vec![AggSpec::count_star(), AggSpec::over(AggKind::Avg, "gir")],
        ),
    };

    let mut privacy = PrivacyConfig::none();
    if let Some(cap) = q.cap {
        privacy = privacy.with_max_tuples(cap);
    }
    for (a, b) in &q.separate {
        privacy = privacy.separate(a, b);
    }

    let strategy = match q.strategy.as_str() {
        "overcollection" => Strategy::Overcollection,
        "backup" => Strategy::Backup,
        "naive" => Strategy::Naive,
        other => return Err(Error::InvalidConfig(format!("unknown strategy `{other}`"))),
    };
    let resilience = ResilienceConfig {
        strategy,
        failure_probability: q.failure_p,
        ..ResilienceConfig::default()
    };
    Ok((platform, spec, privacy, resilience))
}

fn parse_network(raw: &str) -> Result<NetworkProfile> {
    match raw {
        "reliable" => Ok(NetworkProfile::Reliable),
        "internet" => Ok(NetworkProfile::Internet),
        _ => {
            if let Some(p) = raw.strip_prefix("lossy:") {
                let p: f64 = p.parse().map_err(|_| {
                    Error::InvalidConfig(format!("bad loss probability in `{raw}`"))
                })?;
                return Ok(NetworkProfile::Lossy {
                    drop_probability: p,
                });
            }
            if let Some(rest) = raw.strip_prefix("oppnet:") {
                let (median, p) = rest.split_once(',').ok_or_else(|| {
                    Error::InvalidConfig(format!(
                        "oppnet expects `oppnet:<median_s>,<p>`, got `{raw}`"
                    ))
                })?;
                return Ok(NetworkProfile::Opportunistic {
                    median_delay_secs: median
                        .parse()
                        .map_err(|_| Error::InvalidConfig(format!("bad median in `{raw}`")))?,
                    drop_probability: p
                        .parse()
                        .map_err(|_| Error::InvalidConfig(format!("bad loss in `{raw}`")))?,
                });
            }
            Err(Error::InvalidConfig(format!("unknown network `{raw}`")))
        }
    }
}

fn render_run(plan: &QueryPlan, r: &edgelet_core::exec::ExecutionReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan: n={} m={} backup_degree={} | {} operators | strategy {}",
        plan.n,
        plan.m,
        plan.backup_degree,
        plan.operators.len(),
        plan.strategy.name()
    );
    for w in &plan.warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    let _ = writeln!(
        out,
        "completed={} valid={} t={}s | partitions {}/{} complete | replica {} won",
        r.completed,
        r.valid,
        r.completion_secs
            .map(|t| format!("{t:.2}"))
            .unwrap_or_else(|| "-".into()),
        r.partitions_complete,
        r.partitions_merged,
        r.winning_replica,
    );
    let _ = writeln!(
        out,
        "network: {} msgs, {} bytes, {} dropped, {} deferred | {} crashes, {} disconnections",
        r.messages_sent,
        r.bytes_sent,
        r.messages_dropped,
        r.messages_deferred,
        r.crashes,
        r.disconnections,
    );
    let _ = writeln!(
        out,
        "liability: max {} raw tuples/device, processor gini {:.3}",
        r.ledger.max_raw_tuples(),
        r.ledger.processor_gini(),
    );
    match &r.outcome {
        Some(QueryOutcome::Grouping(table)) => {
            let _ = writeln!(out, "\n{table}");
        }
        Some(QueryOutcome::KMeans {
            centroids,
            per_cluster,
        }) => {
            let _ = writeln!(out, "\ncentroids (age, bmi, systolic_bp):");
            for (i, (c, w)) in centroids
                .centroids
                .rows()
                .zip(&centroids.weights)
                .enumerate()
            {
                let coords: Vec<String> = c.iter().map(|x| format!("{x:.1}")).collect();
                let _ = writeln!(out, "  cluster {i}: [{}] weight {w:.0}", coords.join(", "));
            }
            if let Some(t) = per_cluster {
                let _ = writeln!(out, "\n{t}");
            }
        }
        None => {
            let _ = writeln!(out, "\n(no result before the deadline)");
        }
    }
    out
}

fn experiments_text() -> String {
    let rows = [
        ("fig2_qep", "Figure 2: QEP shape vs privacy knobs"),
        ("fig3_overcollection", "Figure 3: overcollection degree"),
        ("exp_resiliency", "E3: completion/validity vs crash rate"),
        ("exp_heartbeats", "E4: K-Means accuracy vs heartbeats"),
        ("exp_scalability", "E5: crowd-size scaling"),
        ("exp_privacy", "E6: sealed-glass compromise trials"),
        ("exp_validity", "E7: validity edge at m lost partitions"),
        ("exp_heterogeneity", "E8: PC vs phone vs home-box mixes"),
        ("exp_active_backup", "E9: combiner Active Backup ablation"),
        ("exp_strategies", "E10: Backup vs Overcollection"),
        ("exp_minibatch", "E11: fixed partition vs resampling"),
        ("exp_retries", "E12: collection retry rounds"),
        ("exp_liability", "E13: crowd-liability spread"),
        (
            "exp_failure_detector",
            "E14: Backup suspicion-timeout sweep",
        ),
    ];
    let mut out = String::from("figure-regeneration binaries (run with --release):\n");
    for (name, desc) in rows {
        let _ = writeln!(
            out,
            "  cargo run --release -p edgelet-bench --bin {name:<22} # {desc}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    fn run_cli_text(s: &str) -> String {
        execute(parse(&argv(s)).unwrap()).unwrap()
    }

    #[test]
    fn help_and_experiments_render() {
        assert!(run_cli_text("help").contains("USAGE"));
        assert!(run_cli_text("experiments").contains("fig2_qep"));
    }

    #[test]
    fn dataset_emits_csv() {
        let text = run_cli_text("dataset --rows 5 --seed 3");
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "age,sex,bmi,systolic_bp,gir,region,diabetic"
        );
        assert_eq!(lines.count(), 5);
        // Deterministic.
        assert_eq!(text, run_cli_text("dataset --rows 5 --seed 3"));
    }

    #[test]
    fn plan_renders_qep_and_cost() {
        let text =
            run_cli_text("plan --contributors 800 --processors 120 --cardinality 200 --cap 50");
        assert!(text.contains("QEP"), "{text}");
        assert!(text.contains("predicted cost"), "{text}");
        let dot = run_cli_text(
            "plan --contributors 800 --processors 120 --cardinality 200 --cap 50 --dot",
        );
        assert!(dot.starts_with("digraph"), "{dot}");
    }

    #[test]
    fn run_executes_grouping_query() {
        let text = run_cli_text(
            "run --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --network reliable",
        );
        assert!(text.contains("completed=true"), "{text}");
        assert!(text.contains("valid=true"), "{text}");
        assert!(text.contains("COUNT(*)=200"), "{text}");
    }

    #[test]
    fn run_output_is_shard_invariant() {
        let seq = run_cli_text(
            "run --contributors 600 --processors 80 --cardinality 120 --cap 40 \
             --network lossy:0.05 --shards 1",
        );
        let par = run_cli_text(
            "run --contributors 600 --processors 80 --cardinality 120 --cap 40 \
             --network lossy:0.05 --shards 4",
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn run_executes_kmeans_query() {
        let text = run_cli_text(
            "run --contributors 1500 --processors 80 --cardinality 150 --cap 50 \
             --network reliable --kmeans 3,3",
        );
        assert!(text.contains("centroids"), "{text}");
        assert!(text.contains("cluster 0"), "{text}");
    }

    fn run_cli_status(s: &str) -> (String, i32) {
        execute_with_status(parse(&argv(s)).unwrap()).unwrap()
    }

    #[test]
    fn analyze_clean_configuration_exits_zero() {
        let (text, status) = run_cli_status(
            "analyze --contributors 1500 --processors 120 --cardinality 200 --cap 50",
        );
        assert_eq!(status, 0, "{text}");
        assert!(text.contains("analysis: 0 errors"), "{text}");
    }

    #[test]
    fn analyze_warns_on_naive_under_faults() {
        let (text, status) = run_cli_status(
            "analyze --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --strategy naive --failure-p 0.2",
        );
        assert_eq!(status, 0, "{text}");
        assert!(text.contains("warning[W021]"), "{text}");
    }

    #[test]
    fn analyze_unplannable_configuration_exits_nonzero() {
        // A cap of 1 needs one partition per tuple: far more processors
        // than the crowd has, so planning fails and E000 is reported.
        let (text, status) =
            run_cli_status("analyze --contributors 1500 --processors 20 --cardinality 200 --cap 1");
        assert_eq!(status, 1, "{text}");
        assert!(text.contains("E000"), "{text}");
        let (json, status) = run_cli_status(
            "analyze --contributors 1500 --processors 20 --cardinality 200 --cap 1 \
             --format json",
        );
        assert_eq!(status, 1, "{json}");
        assert!(json.contains("\"code\":\"E000\""), "{json}");
        assert!(json.trim_start().starts_with('['), "{json}");
    }

    #[test]
    fn submit_runs_live_and_matches_run() {
        let world = "--contributors 1500 --processors 120 --cardinality 200 --cap 50 \
                     --network reliable";
        let (text, status) = run_cli_status(&format!("submit {world} --workers 2"));
        assert_eq!(status, 0, "{text}");
        assert!(text.contains("completed=true"), "{text}");
        assert!(text.contains("verdict ok"), "{text}");
        // The live verdict describes the exact run the simulator produces.
        let sim = run_cli_text(&format!("run {world}"));
        let sim_result = sim.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(
            text.contains(&sim_result),
            "live output must embed the simulator-identical report\n\
             live:\n{text}\nsim:\n{sim}"
        );
    }

    #[test]
    fn submit_emits_json_verdict() {
        let (text, status) = run_cli_status(
            "submit --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --network reliable --workers 2 --format json",
        );
        assert_eq!(status, 0, "{text}");
        assert!(text.trim_start().starts_with('{'), "{text}");
        assert!(text.contains("\"verdict\":\"ok\""), "{text}");
        assert!(text.contains("\"completed\":true"), "{text}");
    }

    #[test]
    fn serve_drives_concurrent_queries() {
        let (text, status) = run_cli_status(
            "serve --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --network reliable --workers 2 --queries 3 --max-concurrent 2",
        );
        assert_eq!(status, 0, "{text}");
        assert!(text.contains("query 0: epoch="), "{text}");
        assert!(text.contains("3 queries"), "{text}");
        assert!(text.contains("0 failed"), "{text}");
        assert!(text.contains("0 cross-epoch envelopes rejected"), "{text}");
        assert!(text.contains("shut down cleanly"), "{text}");
    }

    #[test]
    fn live_preflight_reports_e120_and_w121() {
        // workers=0 and a sub-floor wall deadline are E120: no run starts.
        let (text, status) = run_cli_status("submit --workers 0");
        assert_eq!(status, 1, "{text}");
        assert!(text.contains("error[E120]"), "{text}");
        let (text, status) = run_cli_status("serve --wall-deadline-ms 0");
        assert_eq!(status, 1, "{text}");
        assert!(text.contains("error[E120]"), "{text}");
        let (json, status) = run_cli_status("submit --workers 0 --format json");
        assert_eq!(status, 1, "{json}");
        assert!(json.contains("\"code\":\"E120\""), "{json}");
        // An unbounded mailbox is W121: warn, then run anyway.
        let (text, status) = run_cli_status(
            "serve --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --network reliable --workers 2 --queries 1 --mailbox-cap 1048576",
        );
        assert_eq!(status, 0, "{text}");
        assert!(text.contains("warning[W121]"), "{text}");
        assert!(text.contains("0 failed"), "{text}");
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("edgelet-cli-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_submit_persists_and_restarts_byte_identically() {
        let dir = temp_wal("roundtrip");
        let world = format!(
            "submit --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --network reliable --workers 2 --format json --durable --checkpoint-every 2 \
             --wal-dir {}",
            dir.display()
        );
        let (first, status) = run_cli_status(&world);
        assert_eq!(status, 0, "{first}");
        assert!(first.contains("\"verdict\":\"ok\""), "{first}");
        assert!(first.contains("\"recovered\":false"), "{first}");
        assert!(first.contains("\"state_crc\":"), "{first}");
        assert!(
            dir.join("wal.0000.log").is_file(),
            "the first WAL segment must be on disk"
        );
        // A second process over the same media replays the WAL and runs
        // a fresh epoch; the world is seed-deterministic, so the state
        // CRC (payload + ledger + trace digest) must be identical.
        let (second, status) = run_cli_status(&world);
        assert_eq!(status, 0, "{second}");
        let crc = |s: &str| {
            let tail = &s[s.find("\"state_crc\":").expect("crc field") + 12..];
            tail[..tail.find([',', '}']).expect("delimiter")].to_string()
        };
        assert_eq!(crc(&first), crc(&second), "{first}\n{second}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_flags_are_validated() {
        // --durable without --wal-dir is the E140 preflight.
        let (text, status) = run_cli_status("submit --workers 2 --durable");
        assert_eq!(status, 1, "{text}");
        assert!(text.contains("error[E140]"), "{text}");
        // --crash-at without --durable warns (W142), then hard-errors.
        let cmd = parse(&argv("submit --workers 2 --crash-at mid-query")).unwrap();
        let err = execute(cmd).expect_err("crash-at needs durability");
        assert!(err.to_string().contains("--durable"), "{err}");
        // A zero checkpoint interval warns but runs.
        let dir = temp_wal("nockpt");
        let (text, status) = run_cli_status(&format!(
            "submit --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --network reliable --workers 2 --durable --checkpoint-every 0 --wal-dir {}",
            dir.display()
        ));
        assert_eq!(status, 0, "{text}");
        assert!(text.contains("warning[W141]"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_wal_drains_submit_to_the_readonly_verdict() {
        use edgelet_core::store::{DurableBackend, FaultyBackend, FileBackend};
        use edgelet_core::store::{DurableLog, RetryPolicy, StorageFaultAction, StorageFaultPlan};
        use std::sync::Arc;

        let dir = temp_wal("corrupt");
        {
            // Silently truncate the first record while a second lands
            // intact: unrepairable mid-log damage on disk.
            let file = FileBackend::open(&dir).expect("open WAL dir");
            let faulty: Arc<dyn DurableBackend> = Arc::new(FaultyBackend::new(
                file,
                StorageFaultPlan::new().with(1, StorageFaultAction::TruncatedRecord { keep: 4 }),
            ));
            let log = DurableLog::new(faulty, RetryPolicy::immediate(2));
            log.append(b"cut-short").expect("silent fault");
            log.append(b"acknowledged-after").expect("lands intact");
        }
        let (text, status) = run_cli_status(&format!(
            "submit --contributors 1500 --processors 120 --cardinality 200 --cap 50 \
             --network reliable --workers 2 --format json --durable --wal-dir {}",
            dir.display()
        ));
        assert_eq!(status, 1, "{text}");
        assert!(text.contains("\"verdict\":\"rejected_readonly\""), "{text}");
        assert!(text.contains("refusing to replay"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_network_is_rejected() {
        let err = execute(parse(&argv("run --network warp")).unwrap());
        assert!(err.is_err());
        assert!(parse_network("lossy:abc").is_err());
        assert!(parse_network("oppnet:60").is_err());
        assert!(parse_network("oppnet:60,0.1").is_ok());
    }
}
